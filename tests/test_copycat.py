"""Tests for CopyCat construction (paper Section IV-E1)."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.compiler.nativization import extract_cnot_sites
from repro.core.copycat import build_copycat
from repro.exceptions import CircuitError
from repro.programs import ghz_n4, vqe_n4


class TestStructurePreservation:
    def test_cnot_skeleton_identical(self):
        source = vqe_n4()
        copycat = build_copycat(source)
        src_sites = extract_cnot_sites(source)
        cc_sites = extract_cnot_sites(copycat.circuit)
        assert [(s.control, s.target) for s in src_sites] == [
            (s.control, s.target) for s in cc_sites
        ]

    def test_measurements_preserved(self):
        source = ghz_n4()
        copycat = build_copycat(source)
        assert copycat.circuit.measured_qubits() == source.measured_qubits()

    def test_clifford_program_unchanged(self):
        source = ghz_n4()
        copycat = build_copycat(source)
        assert copycat.replaced == ()
        assert copycat.total_replacement_distance == 0.0
        assert copycat.is_pure_clifford

    def test_name_tagged(self):
        assert build_copycat(ghz_n4()).circuit.name == "GHZ_n4_copycat"


class TestReplacement:
    def test_non_clifford_gates_replaced(self):
        source = QuantumCircuit(2).cnot(0, 1).t(1).rz(0.3, 0).measure_all()
        copycat = build_copycat(source, max_non_clifford=0)
        assert copycat.circuit.is_clifford()
        assert len(copycat.replaced) == 2
        assert copycat.total_replacement_distance > 0

    def test_initial_layer_retention(self):
        # First-moment rotations are kept (up to budget); later ones not.
        source = (
            QuantumCircuit(2)
            .ry(0.7, 0)
            .ry(0.7, 1)
            .cnot(0, 1)
            .ry(0.7, 1)
            .measure_all()
        )
        copycat = build_copycat(source, max_non_clifford=20)
        assert len(copycat.retained_non_clifford) == 2
        assert not copycat.is_pure_clifford
        # Only the trailing rotation was replaced.
        assert len(copycat.replaced) == 1

    def test_budget_limits_retention(self):
        source = QuantumCircuit(3)
        for qubit in range(3):
            source.ry(0.5, qubit)
        source.cnot(0, 1).measure_all()
        copycat = build_copycat(source, max_non_clifford=1)
        assert len(copycat.retained_non_clifford) == 1
        assert len(copycat.replaced) == 2

    def test_clifford_only_mode(self):
        source = vqe_n4()
        copycat = build_copycat(source, max_non_clifford=0)
        assert copycat.circuit.is_clifford()
        assert copycat.retained_non_clifford == ()

    def test_fixed_replacement(self):
        source = QuantumCircuit(2).ry(0.7, 0).cnot(0, 1).measure_all()
        for name in ("x", "z", "s"):
            copycat = build_copycat(source, fixed_replacement=name)
            replaced_names = {
                g.name for _, _, repl in copycat.replaced for g in repl
            }
            assert replaced_names == {name}

    def test_negative_budget_rejected(self):
        with pytest.raises(CircuitError):
            build_copycat(ghz_n4(), max_non_clifford=-1)

    def test_two_qubit_snap(self):
        source = QuantumCircuit(2).cphase(2.8, 0, 1).xy(0.2, 0, 1).measure_all()
        copycat = build_copycat(source)
        gates = [g for g in copycat.circuit.gates()]
        # cphase(2.8) is near pi -> CZ-equivalent; xy(0.2) near 0.
        assert gates[0].name == "cphase"
        assert abs(abs(gates[0].params[0]) - math.pi) < 1e-9
        assert gates[1].params[0] == 0.0
        assert copycat.circuit.is_clifford()


class TestIdealDistribution:
    def test_pure_clifford_uses_stabilizer_keys(self):
        copycat = build_copycat(ghz_n4())
        dist = copycat.ideal_distribution()
        assert dist["0000"] == pytest.approx(0.5)
        assert dist["1111"] == pytest.approx(0.5)

    def test_retained_non_clifford_distribution(self):
        source = QuantumCircuit(2).ry(math.pi / 3, 0).cnot(0, 1).measure_all()
        copycat = build_copycat(source)
        dist = copycat.ideal_distribution()
        # RY(pi/3): P(0) = cos^2(pi/6) = 3/4, correlated across the CNOT.
        assert dist["00"] == pytest.approx(0.75, abs=1e-9)
        assert dist["11"] == pytest.approx(0.25, abs=1e-9)

    def test_wide_clifford_copycat_simulable(self):
        # 30-qubit GHZ: stabilizer path must handle it.
        wide = QuantumCircuit(30).h(0)
        for i in range(29):
            wide.cnot(i, i + 1)
        wide.measure_all()
        dist = build_copycat(wide).ideal_distribution()
        assert dist["0" * 30] == pytest.approx(0.5)

    def test_hadamard_exclusion_affects_replacements(self):
        # A rotation close to H: with exclusion the CopyCat avoids an
        # H-like replacement, keeping the output distribution structured.
        source = (
            QuantumCircuit(2)
            .cnot(0, 1)
            .u3(math.pi / 2 + 0.05, 0.0, math.pi, 0)
            .measure_all()
        )
        with_h = build_copycat(
            source, max_non_clifford=0, exclude_hadamard_like=False
        )
        without_h = build_copycat(
            source, max_non_clifford=0, exclude_hadamard_like=True
        )
        dist_with = with_h.ideal_distribution()
        dist_without = without_h.ideal_distribution()
        # Including H: near-uniform on the first bit; excluding: peaked.
        assert max(dist_with.values()) == pytest.approx(0.5, abs=1e-9)
        assert max(dist_without.values()) == pytest.approx(1.0, abs=1e-9)
