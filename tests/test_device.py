"""Tests for the simulated Aspen device executor."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.device import (
    NOISELESS_PROFILE,
    RigettiAspenDevice,
    aspen11,
    aspen_m1,
    build_device,
    small_test_device,
)
from repro.device.native_gates import cnot_decomposition, hadamard_native
from repro.device.topology import linear_topology
from repro.exceptions import DeviceError


def _bell_native(qubit_a, qubit_b, native="cz"):
    qc = QuantumCircuit(max(qubit_a, qubit_b) + 1, name="bell")
    for gate in hadamard_native(qubit_a):
        qc.append(gate)
    for gate in cnot_decomposition(native, qubit_a, qubit_b):
        qc.append(gate)
    qc.measure(qubit_a)
    qc.measure(qubit_b)
    return qc


@pytest.fixture(scope="module")
def device():
    return small_test_device(5, seed=2)


class TestPresets:
    def test_aspen11_shape(self):
        dev = aspen11()
        assert dev.topology.num_qubits == 38
        assert dev.name == "aspen-11"

    def test_aspen_m1_matches_paper_link_count(self):
        dev = aspen_m1()
        assert dev.topology.num_qubits == 80
        assert dev.topology.num_links == 103

    def test_deterministic_construction(self):
        a = small_test_device(4, seed=9)
        b = small_test_device(4, seed=9)
        link = a.topology.links[0]
        for gate in a.supported_gates(*link):
            assert a.true_pulse_fidelity(link, gate) == pytest.approx(
                b.true_pulse_fidelity(link, gate)
            )

    def test_some_links_missing_gates_on_aspen(self):
        dev = aspen_m1(seed=5)
        availability = [
            len(dev.supported_gates(*link)) for link in dev.topology.links
        ]
        assert min(availability) >= 1
        assert any(count < 3 for count in availability)


class TestValidation:
    def test_rejects_unmeasured_circuit(self, device):
        qc = QuantumCircuit(2).rz(0.3, 0)
        with pytest.raises(DeviceError, match="no measurements"):
            device.run(qc, 10)

    def test_rejects_non_native_gate(self, device):
        qc = QuantumCircuit(2).h(0).measure(0)
        with pytest.raises(DeviceError, match="not native"):
            device.run(qc, 10)

    def test_rejects_off_link_two_qubit_gate(self, device):
        qc = QuantumCircuit(5).cz(0, 4).measure(0)
        with pytest.raises(DeviceError, match="not on a device link"):
            device.run(qc, 10)

    def test_rejects_unknown_qubit(self, device):
        qc = QuantumCircuit(50).rz(0.1, 45).measure(45)
        with pytest.raises(DeviceError, match="inactive"):
            device.run(qc, 10)

    def test_rejects_zero_shots(self, device):
        qc = _bell_native(0, 1)
        with pytest.raises(DeviceError):
            device.run(qc, 0)

    def test_rejects_unsupported_gate_on_link(self):
        dev = small_test_device(3, seed=1)
        # Remove cphase support from link (0, 1) by deleting its params.
        del dev.gate_params[((0, 1), "cphase")]
        qc = QuantumCircuit(2)
        qc.cphase(math.pi / 2, 0, 1)
        qc.measure(0)
        with pytest.raises(DeviceError, match="does not support"):
            dev.run(qc, 10)


class TestExecution:
    def test_counts_total_shots(self, device):
        counts = device.run(_bell_native(0, 1), 500, seed=0)
        assert sum(counts.values()) == 500

    def test_noiseless_device_is_exact(self):
        dev = build_device(linear_topology(3), seed=0, profile=NOISELESS_PROFILE)
        counts = dev.run(_bell_native(0, 1), 4000, seed=1)
        assert set(counts) == {"00", "11"}
        assert abs(counts["00"] - 2000) < 150

    def test_noisy_device_leaks_probability(self, device):
        counts = device.run(_bell_native(0, 1), 4000, seed=2)
        wrong = sum(v for k, v in counts.items() if k in ("01", "10"))
        assert wrong > 0

    def test_all_native_gates_executable(self, device):
        for native in ("xy", "cz", "cphase"):
            counts = device.run(_bell_native(1, 2, native), 200, seed=3)
            assert sum(counts.values()) == 200

    def test_seeded_runs_reproducible(self):
        dev_a = small_test_device(4, seed=6)
        dev_b = small_test_device(4, seed=6)
        counts_a = dev_a.run(_bell_native(0, 1), 300, seed=9)
        counts_b = dev_b.run(_bell_native(0, 1), 300, seed=9)
        assert counts_a == counts_b

    def test_bit_order_matches_measurement_order(self, device):
        # Measure (1, 0) with qubit 0 excited -> key "01".
        qc = QuantumCircuit(2).rx(math.pi, 0).measure(1).measure(0)
        counts = device.run(qc, 300, seed=4)
        assert max(counts, key=counts.get) == "01"


class TestClockAndDrift:
    def test_clock_advances_with_execution(self):
        dev = small_test_device(3, seed=4)
        start = dev.clock_us
        dev.run(_bell_native(0, 1), 100, seed=0)
        assert dev.clock_us > start
        assert len(dev.execution_log) == 1

    def test_parameters_drift_over_time(self):
        dev = small_test_device(3, seed=4)
        link = (0, 1)
        before = dev.true_pulse_fidelity(link, "cz")
        dev.advance_time(48 * 3_600e6)  # two days
        after = dev.true_pulse_fidelity(link, "cz")
        assert before != pytest.approx(after, abs=1e-6)

    def test_noiseless_profile_does_not_drift(self):
        dev = build_device(linear_topology(3), seed=0, profile=NOISELESS_PROFILE)
        before = dev.true_pulse_fidelity((0, 1), "cz")
        dev.advance_time(48 * 3_600e6)
        assert dev.true_pulse_fidelity((0, 1), "cz") == pytest.approx(before)

    def test_negative_time_rejected(self):
        dev = small_test_device(3, seed=4)
        with pytest.raises(DeviceError):
            dev.advance_time(-1.0)

    def test_circuit_duration_counts_critical_path(self, device):
        qc = _bell_native(0, 1)
        duration = device.circuit_duration_us(qc)
        assert duration > 0


class TestTrueFidelity:
    def test_noiseless_fidelity_is_one(self):
        dev = build_device(linear_topology(3), seed=0, profile=NOISELESS_PROFILE)
        for gate in ("xy", "cz", "cphase"):
            assert dev.true_pulse_fidelity((0, 1), gate) == pytest.approx(
                1.0, abs=1e-6
            )

    def test_noisy_fidelity_below_one(self, device):
        for gate in device.supported_gates(0, 1):
            fid = device.true_pulse_fidelity((0, 1), gate)
            assert 0.5 < fid < 1.0

    def test_unknown_link_gate_rejected(self, device):
        with pytest.raises(DeviceError):
            device.true_pulse_fidelity((0, 4), "cz")

    def test_rx_fidelity(self, device):
        fid = device.true_rx_fidelity(0)
        assert 0.9 < fid <= 1.0
