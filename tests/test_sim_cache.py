"""Simulation cache hierarchy: A/B equivalence, drift, eviction pressure."""

import numpy as np
import pytest

from repro.compiler import transpile
from repro.compiler.nativization import nativize
from repro.core.sequence import NativeGateSequence
from repro.device import small_test_device
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.programs.ghz import ghz
from repro.programs.qaoa import qaoa_n5
from repro.sim import CircuitCompiler, PrefixStateCache, SimulationCache
from repro.sim.circuit_compiler import circuit_fingerprint


def _native(device, program, gate="cz"):
    compiled = transpile(program, device)
    sequence = NativeGateSequence.uniform(compiled.sites, gate)
    return nativize(
        compiled.scheduled, sequence.as_site_map(), device.native_gates
    )


def _pair(program, seed=9, **kwargs):
    """Identically-seeded devices with the hierarchy on and off."""
    dev_on = small_test_device(5, seed=seed, sim_cache=True, **kwargs)
    dev_off = small_test_device(5, seed=seed, sim_cache=False, **kwargs)
    return dev_on, dev_off, _native(dev_on, program)


class TestLayerFusion:
    def test_fusion_reduces_contraction_count(self):
        device = small_test_device(5, seed=9)
        circuit = _native(device, ghz(5))
        used = device._used_qubits(circuit)
        compact, _ = device._compact_circuit(circuit, used)
        compiler = CircuitCompiler(
            device._operation_compiler_factory(used),
            device._noise_callback_factory(used),
        )
        lowered = compiler.lower(compact)
        assert lowered.raw_op_count > len(lowered.operations)
        # Every fused op still acts on at most two qubits.
        assert all(len(op.qubits) <= 2 for op in lowered.operations)

    def test_unfused_stream_matches_op_count(self):
        device = small_test_device(5, seed=9)
        circuit = _native(device, ghz(5))
        used = device._used_qubits(circuit)
        compact, _ = device._compact_circuit(circuit, used)
        compiler = CircuitCompiler(
            device._operation_compiler_factory(used), fuse=False
        )
        lowered = compiler.lower(compact)
        assert len(lowered.operations) == lowered.raw_op_count

    def test_prefix_hashes_diverge_with_content(self):
        device = small_test_device(5, seed=9)
        circ_cz = _native(device, ghz(5), gate="cz")
        circ_xy = _native(device, ghz(5), gate="xy")
        used = device._used_qubits(circ_cz)
        compact_cz, _ = device._compact_circuit(circ_cz, used)
        compact_xy, _ = device._compact_circuit(circ_xy, used)
        compiler = CircuitCompiler(
            device._operation_compiler_factory(used)
        )
        hashes_cz = compiler.lower(compact_cz).prefix_hashes
        hashes_xy = compiler.lower(compact_xy).prefix_hashes
        assert hashes_cz != hashes_xy
        # Same circuit twice: identical chain (stable, content-based).
        assert hashes_cz == compiler.lower(compact_cz).prefix_hashes

    def test_fingerprint_ignores_name_keeps_content(self):
        device = small_test_device(5, seed=9)
        a = _native(device, ghz(5))
        b = _native(device, ghz(5))
        b.name = "renamed_probe_copy"
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        c = _native(device, ghz(5), gate="xy")
        assert circuit_fingerprint(a) != circuit_fingerprint(c)


class TestBitIdenticalOnVsOff:
    @pytest.mark.parametrize(
        "program", [ghz(5), qaoa_n5()], ids=["ghz5", "qaoa5"]
    )
    def test_counts_identical_hierarchy_on_vs_off(self, program):
        dev_on, dev_off, _ = _pair(program)
        circuit_on = _native(dev_on, program)
        circuit_off = _native(dev_off, program)
        for seed in (7, 8, 9):
            counts_on = dev_on.run(circuit_on, 1500, seed=seed)
            counts_off = dev_off.run(circuit_off, 1500, seed=seed)
            assert counts_on == counts_off
        assert dev_on.clock_us == dev_off.clock_us

    @pytest.mark.parametrize(
        "program", [ghz(5), qaoa_n5()], ids=["ghz5", "qaoa5"]
    )
    def test_distributions_match_hierarchy_on_vs_off(self, program):
        dev_on, dev_off, circuit = _pair(program)
        dist_on = dev_on.noisy_distribution(circuit)
        dist_off = dev_off.noisy_distribution(circuit)
        assert set(dist_on) == set(dist_off)
        for key in dist_off:
            assert dist_on[key] == pytest.approx(dist_off[key], abs=1e-12)

    def test_counts_identical_across_drift_boundary(self):
        """advance_time mid-sequence: both paths see the same new physics."""
        dev_on, dev_off, _ = _pair(ghz(5))
        circuit_on = _native(dev_on, ghz(5))
        circuit_off = _native(dev_off, ghz(5))
        assert dev_on.run(circuit_on, 1000, seed=3) == dev_off.run(
            circuit_off, 1000, seed=3
        )
        dev_on.advance_time(6 * 3600e6)
        dev_off.advance_time(6 * 3600e6)
        assert dev_on.run(circuit_on, 1000, seed=3) == dev_off.run(
            circuit_off, 1000, seed=3
        )

    def test_counts_identical_under_eviction_pressure(self):
        """A starving byte budget degrades speed, never correctness."""
        dev_on, dev_off, _ = _pair(ghz(5))
        # 40 KB: roughly two 5-qubit snapshots (16 KB each).
        dev_on.sim_cache = SimulationCache(prefix_bytes=40 * 1024)
        for gate in ("cz", "xy", "cphase"):
            circuit_on = _native(dev_on, ghz(5), gate=gate)
            circuit_off = _native(dev_off, ghz(5), gate=gate)
            assert dev_on.run(circuit_on, 800, seed=5) == dev_off.run(
                circuit_off, 800, seed=5
            )
        assert dev_on.sim_cache.prefix.bytes <= 40 * 1024


class TestDriftInvalidation:
    def test_every_level_flushes_on_epoch_bump(self):
        device = small_test_device(5, seed=9)
        circuit = _native(device, ghz(5))
        device.noisy_distribution(circuit)
        stats = device.sim_cache.stats()
        assert stats["dist_entries"] == 1
        assert stats["prefix_entries"] > 0
        device.advance_time(3600e6)
        stats = device.sim_cache.stats()
        assert stats["dist_entries"] == 0
        assert stats["prefix_entries"] == 0
        assert stats["prefix_bytes"] == 0
        assert stats["sim_epoch"] == device.drift_epoch
        assert len(device.sim_cache._lowered) == 0

    def test_no_stale_distribution_after_mid_batch_drift(self):
        """Time advanced mid-batch: no cache level serves pre-drift data.

        The batch-snapshot path computes all distributions at one epoch;
        an advance_time between two batches must force the second batch
        to recompute against the new parameters, matching a fresh
        uncached device that drifted identically.
        """
        dev_on, dev_off, _ = _pair(ghz(5))
        backend_on = LocalBackend(dev_on)
        backend_off = LocalBackend(dev_off)
        jobs_on = [
            Job(_native(dev_on, ghz(5)), 500, seed=s, tag="probe")
            for s in (1, 2, 3)
        ]
        jobs_off = [
            Job(_native(dev_off, ghz(5)), 500, seed=s, tag="probe")
            for s in (1, 2, 3)
        ]
        first_on = backend_on.submit_batch(
            jobs_on, parallel=True, max_workers=1
        )
        first_off = backend_off.submit_batch(
            jobs_off, parallel=True, max_workers=1
        )
        assert [r.counts for r in first_on] == [r.counts for r in first_off]
        # Identical probes in one snapshot batch: the batched engine
        # dedups them in-batch (simulated once, fanned out).
        assert dev_on.sim_cache.stats()["batch_dedup_hits"] >= 2

        dev_on.advance_time(12 * 3600e6)
        dev_off.advance_time(12 * 3600e6)
        second_on = backend_on.submit_batch(
            jobs_on, parallel=True, max_workers=1
        )
        second_off = backend_off.submit_batch(
            jobs_off, parallel=True, max_workers=1
        )
        # Stale service would reproduce the uncached *pre-drift* counts;
        # instead both paths agree on the *post-drift* physics.
        assert [r.counts for r in second_on] == [
            r.counts for r in second_off
        ]
        assert [r.counts for r in second_on] != [
            r.counts for r in first_on
        ]

    def test_no_stale_prefix_snapshot_after_drift(self):
        """A prefix snapshot never survives into the next epoch."""
        device = small_test_device(5, seed=9)
        circuit = _native(device, ghz(5))
        device.noisy_distribution(circuit)
        stores_before = device.sim_cache.prefix.stores
        assert stores_before > 0
        device.advance_time(3600e6)
        # Post-drift lookup cannot hit: the cache is empty, so the
        # distribution is recomputed from scratch (a prefix miss).
        misses_before = device.sim_cache.prefix.misses
        device.noisy_distribution(circuit)
        assert device.sim_cache.prefix.misses == misses_before + 1
        assert device.sim_cache.prefix.hits == 0


class TestPrefixStateCache:
    def test_longest_prefix_picks_deepest_key(self):
        cache = PrefixStateCache(max_bytes=1 << 20)
        tensors = [np.full((2, 2), i, dtype=complex) for i in range(3)]
        keys = [bytes([i]) * 4 for i in range(3)]
        for key, tensor in zip(keys[:2], tensors[:2]):
            cache.put(key, tensor)
        depth, tensor = cache.longest_prefix(keys)
        assert depth == 2
        assert np.array_equal(tensor, tensors[1])
        assert cache.hits == 1

    def test_byte_budget_evicts_lru(self):
        tensor = np.zeros((8, 8), dtype=complex)  # 1 KB each
        cache = PrefixStateCache(max_bytes=3 * tensor.nbytes)
        for name in (b"a", b"b", b"c"):
            cache.put(name, tensor)
        # Touch "a" so "b" becomes least recently used.
        assert cache.longest_prefix([b"a"])[0] == 1
        cache.put(b"d", tensor)
        assert b"b" not in cache
        assert b"a" in cache and b"c" in cache and b"d" in cache
        assert cache.evictions == 1
        assert cache.bytes == 3 * tensor.nbytes

    def test_oversized_snapshot_not_stored(self):
        cache = PrefixStateCache(max_bytes=64)
        cache.put(b"big", np.zeros((8, 8), dtype=complex))
        assert len(cache) == 0
        assert cache.bytes == 0

    def test_stored_tensor_is_isolated_copy(self):
        cache = PrefixStateCache(max_bytes=1 << 20)
        tensor = np.zeros((2, 2), dtype=complex)
        cache.put(b"k", tensor)
        tensor[0, 0] = 99.0
        _, cached = cache.longest_prefix([b"k"])
        assert cached[0, 0] == 0.0


class TestExecutorStatsPlumbing:
    def test_sim_counters_flow_into_executor_stats(self):
        device = small_test_device(5, seed=9)
        executor = BatchExecutor(
            LocalBackend(device), mode="parallel", max_workers=1
        )
        circuit = _native(device, ghz(5))
        jobs = [Job(circuit, 200, seed=s, tag="probe") for s in (1, 2, 3)]
        executor.submit_batch(jobs)
        stats = executor.stats
        assert stats.sim_dist_misses >= 1
        # Identical probes are deduped in-batch by the batched engine
        # (the memo serves repeats only across batches now).
        assert stats.batch_dedup_hits >= 2
        assert stats.sim_prefix_misses >= 1
        # The gauge reads post-batch: the end-of-batch clock advance has
        # already invalidated the snapshots, so residency is back to 0.
        assert stats.sim_prefix_bytes == 0
        snapshot = stats.snapshot()
        assert snapshot["sim_dist_hits"] == stats.sim_dist_hits
        assert snapshot["sim_prefix_bytes"] == stats.sim_prefix_bytes
        assert "sim cache:" in stats.to_text()

    def test_no_sim_cache_backend_reports_zero(self):
        device = small_test_device(5, seed=9, sim_cache=False)
        backend = LocalBackend(device)
        stats = backend.cache_stats()
        assert "dist_hits" not in stats  # hierarchy absent, not zeroed
        executor = BatchExecutor(backend)
        circuit = _native(device, ghz(5))
        executor.submit(Job(circuit, 100, seed=1))
        assert executor.stats.sim_dist_hits == 0
        assert executor.stats.sim_dist_misses == 0
        assert "sim cache:" not in executor.stats.to_text()


class TestDistributionCacheSkipsSimulation:
    def test_identical_probes_skip_recompute(self):
        device = small_test_device(5, seed=9)
        circuit = _native(device, ghz(5))
        device.noisy_distribution(circuit)
        replayed_after_first = device.sim_cache.ops_replayed
        device.noisy_distribution(circuit)
        # Second call: distribution memo hit, zero operator replays.
        assert device.sim_cache.ops_replayed == replayed_after_first
        assert device.sim_cache.dist_hits == 1

    def test_shared_prefix_replayed_once(self):
        """Probe variants replay only their divergent suffix.

        The localized-search shape: a candidate differs from the
        baseline only at one (late) link's sites, so its lowered stream
        shares the leading fused operators with the baseline's.
        """
        device = small_test_device(5, seed=9)
        compiled = transpile(ghz(5), device)
        baseline_seq = NativeGateSequence.uniform(compiled.sites, "cz")
        gates = list(baseline_seq.gates)
        gates[-1] = "xy"  # diverge at the last site only
        variant_seq = NativeGateSequence(compiled.sites, tuple(gates))
        baseline = nativize(
            compiled.scheduled,
            baseline_seq.as_site_map(),
            device.native_gates,
        )
        variant = nativize(
            compiled.scheduled,
            variant_seq.as_site_map(),
            device.native_gates,
        )
        device.noisy_distribution(baseline)
        replayed_baseline = device.sim_cache.ops_replayed
        device.noisy_distribution(variant)
        replayed_variant = (
            device.sim_cache.ops_replayed - replayed_baseline
        )
        assert device.sim_cache.ops_skipped > 0
        assert replayed_variant < replayed_baseline

    def test_placement_is_part_of_the_key(self):
        """Equal compact circuits on different physical qubits must not
        share cache entries (their noise differs)."""
        device = small_test_device(5, seed=9)

        def two_qubit_bell(a, b):
            from repro.circuit.circuit import QuantumCircuit

            circuit = QuantumCircuit(5, name=f"bell_{a}{b}")
            circuit.rz(np.pi / 2, a)
            circuit.rx(np.pi / 2, a)
            circuit.cz(a, b)
            circuit.measure(a)
            circuit.measure(b)
            return circuit

        dist_01 = device.noisy_distribution(two_qubit_bell(0, 1))
        dist_34 = device.noisy_distribution(two_qubit_bell(3, 4))
        assert device.sim_cache.dist_hits == 0  # distinct placements
        plain = small_test_device(5, seed=9, sim_cache=False)
        ref_34 = plain.noisy_distribution(two_qubit_bell(3, 4))
        for key in ref_34:
            assert dist_34[key] == pytest.approx(ref_34[key], abs=1e-12)
        assert dist_01 != dist_34
