"""Tests for the localized search with synthetic probe objectives."""

import pytest

from repro.compiler.nativization import CnotSite
from repro.core.search import localized_search
from repro.core.sequence import NativeGateSequence
from repro.exceptions import SearchError


def _sites():
    return (
        CnotSite(0, 0, 1),
        CnotSite(1, 1, 2),
        CnotSite(2, 0, 1),
    )


OPTIONS = {
    (0, 1): ("xy", "cz", "cphase"),
    (1, 2): ("xy", "cz", "cphase"),
}


def _scoring(per_link_scores):
    """A deterministic probe: sum of per-(link, gate) values."""

    def probe(sequence):
        total = 0.0
        for link in sequence.links_used():
            gate = sequence.gates_on_link(link)[0]
            total += per_link_scores[(link, gate)]
        return total

    return probe


class TestSearchBehaviour:
    def test_finds_separable_optimum(self):
        scores = {
            ((0, 1), "xy"): 0.1,
            ((0, 1), "cz"): 0.5,
            ((0, 1), "cphase"): 0.3,
            ((1, 2), "xy"): 0.4,
            ((1, 2), "cz"): 0.1,
            ((1, 2), "cphase"): 0.2,
        }
        initial = NativeGateSequence.uniform(_sites(), "cphase")
        best, trace = localized_search(
            _scoring(scores), initial, OPTIONS
        )
        assert best.gates_on_link((0, 1))[0] == "cz"
        assert best.gates_on_link((1, 2))[0] == "xy"

    def test_probe_budget_is_one_plus_two_per_link(self):
        scores = {
            (link, gate): 0.5 for link in OPTIONS for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        _, trace = localized_search(_scoring(scores), initial, OPTIONS)
        # 1 reference + 2 links x 2 alternatives = 5 (Table II's 1+2L).
        assert trace.num_probes == 5

    def test_reference_retained_when_best(self):
        scores = {
            (link, gate): (0.9 if gate == "cz" else 0.1)
            for link in OPTIONS
            for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        best, trace = localized_search(_scoring(scores), initial, OPTIONS)
        assert best.gates == initial.gates
        assert trace.num_updates == 0

    def test_continuous_update_reflected_in_history(self):
        scores = {
            ((0, 1), "xy"): 0.9,
            ((0, 1), "cz"): 0.1,
            ((0, 1), "cphase"): 0.2,
            ((1, 2), "xy"): 0.5,
            ((1, 2), "cz"): 0.1,
            ((1, 2), "cphase"): 0.9,
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        best, trace = localized_search(_scoring(scores), initial, OPTIONS)
        # Two improvements: link (0,1) -> xy, then link (1,2) -> cphase.
        assert trace.num_updates == 2
        assert len(trace.reference_history) == 3
        assert best.gates_on_link((0, 1))[0] == "xy"
        assert best.gates_on_link((1, 2))[0] == "cphase"

    def test_mass_replacement_ties_sites_on_same_link(self):
        scores = {
            (link, gate): 0.3 for link in OPTIONS for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        seen = []

        def probe(sequence):
            seen.append(sequence)
            return 0.0

        localized_search(probe, initial, OPTIONS)
        for sequence in seen:
            # Sites 0 and 2 share link (0,1): always identical gates.
            assert sequence.gates[0] == sequence.gates[2]

    def test_custom_link_order(self):
        order_seen = []
        initial = NativeGateSequence.uniform(_sites(), "cz")

        def probe(sequence):
            order_seen.append(sequence.gates)
            return 0.0

        localized_search(
            probe, initial, OPTIONS, link_order=[(1, 2), (0, 1)]
        )
        # After the reference, the first candidates touch link (1, 2).
        assert order_seen[1][1] != "cz"
        assert order_seen[1][0] == "cz"

    def test_best_probe_recorded(self):
        scores = {
            (link, gate): (0.8 if gate == "xy" else 0.2)
            for link in OPTIONS
            for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        _, trace = localized_search(_scoring(scores), initial, OPTIONS)
        assert trace.best().success_rate == pytest.approx(1.6)


class TestSearchValidation:
    def test_non_uniform_initial_rejected(self):
        mixed = NativeGateSequence(_sites(), ("xy", "cz", "cz"))
        with pytest.raises(SearchError, match="one gate per link"):
            localized_search(lambda s: 0.0, mixed, OPTIONS)

    def test_foreign_link_in_order_rejected(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        with pytest.raises(SearchError):
            localized_search(
                lambda s: 0.0, initial, OPTIONS, link_order=[(5, 6)]
            )

    def test_empty_trace_best_raises(self):
        from repro.core.search import SearchTrace

        with pytest.raises(SearchError):
            SearchTrace().best()
