"""Tests for the localized search with synthetic probe objectives."""

import pytest

from repro.compiler.nativization import CnotSite
from repro.core.search import localized_search
from repro.core.sequence import NativeGateSequence
from repro.exceptions import SearchError


def _sites():
    return (
        CnotSite(0, 0, 1),
        CnotSite(1, 1, 2),
        CnotSite(2, 0, 1),
    )


OPTIONS = {
    (0, 1): ("xy", "cz", "cphase"),
    (1, 2): ("xy", "cz", "cphase"),
}


def _scoring(per_link_scores):
    """A deterministic probe: sum of per-(link, gate) values."""

    def probe(sequence):
        total = 0.0
        for link in sequence.links_used():
            gate = sequence.gates_on_link(link)[0]
            total += per_link_scores[(link, gate)]
        return total

    return probe


class TestSearchBehaviour:
    def test_finds_separable_optimum(self):
        scores = {
            ((0, 1), "xy"): 0.1,
            ((0, 1), "cz"): 0.5,
            ((0, 1), "cphase"): 0.3,
            ((1, 2), "xy"): 0.4,
            ((1, 2), "cz"): 0.1,
            ((1, 2), "cphase"): 0.2,
        }
        initial = NativeGateSequence.uniform(_sites(), "cphase")
        best, trace = localized_search(
            _scoring(scores), initial, OPTIONS
        )
        assert best.gates_on_link((0, 1))[0] == "cz"
        assert best.gates_on_link((1, 2))[0] == "xy"

    def test_probe_budget_is_one_plus_two_per_link(self):
        scores = {
            (link, gate): 0.5 for link in OPTIONS for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        _, trace = localized_search(_scoring(scores), initial, OPTIONS)
        # 1 reference + 2 links x 2 alternatives = 5 (Table II's 1+2L).
        assert trace.num_probes == 5

    def test_reference_retained_when_best(self):
        scores = {
            (link, gate): (0.9 if gate == "cz" else 0.1)
            for link in OPTIONS
            for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        best, trace = localized_search(_scoring(scores), initial, OPTIONS)
        assert best.gates == initial.gates
        assert trace.num_updates == 0

    def test_continuous_update_reflected_in_history(self):
        scores = {
            ((0, 1), "xy"): 0.9,
            ((0, 1), "cz"): 0.1,
            ((0, 1), "cphase"): 0.2,
            ((1, 2), "xy"): 0.5,
            ((1, 2), "cz"): 0.1,
            ((1, 2), "cphase"): 0.9,
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        best, trace = localized_search(_scoring(scores), initial, OPTIONS)
        # Two improvements: link (0,1) -> xy, then link (1,2) -> cphase.
        assert trace.num_updates == 2
        assert len(trace.reference_history) == 3
        assert best.gates_on_link((0, 1))[0] == "xy"
        assert best.gates_on_link((1, 2))[0] == "cphase"

    def test_mass_replacement_ties_sites_on_same_link(self):
        scores = {
            (link, gate): 0.3 for link in OPTIONS for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        seen = []

        def probe(sequence):
            seen.append(sequence)
            return 0.0

        localized_search(probe, initial, OPTIONS)
        for sequence in seen:
            # Sites 0 and 2 share link (0,1): always identical gates.
            assert sequence.gates[0] == sequence.gates[2]

    def test_custom_link_order(self):
        order_seen = []
        initial = NativeGateSequence.uniform(_sites(), "cz")

        def probe(sequence):
            order_seen.append(sequence.gates)
            return 0.0

        localized_search(
            probe, initial, OPTIONS, link_order=[(1, 2), (0, 1)]
        )
        # After the reference, the first candidates touch link (1, 2).
        assert order_seen[1][1] != "cz"
        assert order_seen[1][0] == "cz"

    def test_best_probe_recorded(self):
        scores = {
            (link, gate): (0.8 if gate == "xy" else 0.2)
            for link in OPTIONS
            for gate in OPTIONS[link]
        }
        initial = NativeGateSequence.uniform(_sites(), "cz")
        _, trace = localized_search(_scoring(scores), initial, OPTIONS)
        assert trace.best().success_rate == pytest.approx(1.6)


class TestSearchValidation:
    def test_non_uniform_initial_rejected(self):
        mixed = NativeGateSequence(_sites(), ("xy", "cz", "cz"))
        with pytest.raises(SearchError, match="one gate per link"):
            localized_search(lambda s: 0.0, mixed, OPTIONS)

    def test_foreign_link_in_order_rejected(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        with pytest.raises(SearchError):
            localized_search(
                lambda s: 0.0, initial, OPTIONS, link_order=[(5, 6)]
            )

    def test_empty_trace_best_raises(self):
        from repro.core.search import SearchTrace

        with pytest.raises(SearchError):
            SearchTrace().best()


def _failing_batch(per_link_scores, fail_when):
    """A batch probe returning ``None`` when ``fail_when(sequence)``."""
    score = _scoring(per_link_scores)

    def batch(sequences):
        return [
            None if fail_when(s) else score(s) for s in sequences
        ]

    return batch


class TestFailedProbes:
    SCORES = {
        ((0, 1), "xy"): 0.9,
        ((0, 1), "cz"): 0.1,
        ((0, 1), "cphase"): 0.2,
        ((1, 2), "xy"): 0.8,
        ((1, 2), "cz"): 0.1,
        ((1, 2), "cphase"): 0.3,
    }

    def test_failed_candidate_cannot_win_its_link(self):
        """xy would win (0, 1), but its probe failed => cz stands."""
        initial = NativeGateSequence.uniform(_sites(), "cz")
        batch = _failing_batch(
            self.SCORES,
            lambda s: s.gates_on_link((0, 1))[0] == "xy",
        )
        best, trace = localized_search(
            None, initial, OPTIONS, batch_probe=batch
        )
        assert best.gates_on_link((0, 1))[0] != "xy"
        # The other alternative (cphase, 0.2 > 0.1) still wins fairly,
        # so the link is impaired but NOT degraded.
        assert best.gates_on_link((0, 1))[0] == "cphase"
        assert (0, 1) not in trace.degraded_links
        # The losing link's other candidates were unaffected.
        assert best.gates_on_link((1, 2))[0] == "xy"
        assert trace.num_failed == 1
        failed = [p for p in trace.probes if p.failed]
        assert len(failed) == 1
        assert failed[0].link == (0, 1)
        assert failed[0].success_rate != failed[0].success_rate  # NaN

    def test_all_alternatives_failed_degrades_link(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        batch = _failing_batch(
            self.SCORES,
            lambda s: s.gates_on_link((0, 1))[0] != "cz",
        )
        best, trace = localized_search(
            None, initial, OPTIONS, batch_probe=batch
        )
        # Degraded link keeps the reference (calibration-fidelity) gate.
        assert best.gates_on_link((0, 1))[0] == "cz"
        assert trace.degraded_links == [(0, 1)]
        assert trace.num_failed == 2
        # The healthy link still searched normally.
        assert best.gates_on_link((1, 2))[0] == "xy"
        # Budget spent identically: 1 + 2L probes submitted.
        assert trace.num_probes == 5

    def test_failed_reference_degrades_every_link(self):
        """An unmeasured reference means no adoption is possible."""
        initial = NativeGateSequence.uniform(_sites(), "cz")
        calls = {"n": 0}

        def batch(sequences):
            calls["n"] += 1
            if calls["n"] == 1:  # the reference probe
                return [None] * len(sequences)
            return [_scoring(self.SCORES)(s) for s in sequences]

        best, trace = localized_search(
            None, initial, OPTIONS, batch_probe=batch
        )
        assert best.gates == initial.gates
        assert set(trace.degraded_links) == set(OPTIONS)
        assert trace.num_updates == 0
        assert trace.probes[0].failed
        # best() skips failed probes even when the reference failed.
        assert not trace.best().failed

    def test_all_probes_failed_best_raises(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        batch = _failing_batch(self.SCORES, lambda s: True)
        best, trace = localized_search(
            None, initial, OPTIONS, batch_probe=batch
        )
        assert best.gates == initial.gates
        assert trace.num_failed == trace.num_probes == 5
        with pytest.raises(SearchError):
            trace.best()

    def test_degraded_links_not_duplicated_across_passes(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        scores = dict(self.SCORES)
        batch = _failing_batch(
            scores, lambda s: s.gates_on_link((0, 1))[0] != "cz"
        )
        _, trace = localized_search(
            None, initial, OPTIONS, batch_probe=batch, max_passes=3
        )
        assert trace.degraded_links.count((0, 1)) == 1

    def test_batch_length_mismatch_raises(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        # One rate satisfies the reference probe, then mismatches the
        # two-candidate batch for the first link.
        with pytest.raises(SearchError, match="rates"):
            localized_search(
                None, initial, OPTIONS, batch_probe=lambda seqs: [0.5]
            )
