"""Tests for standard and interleaved randomized benchmarking."""

import numpy as np
import pytest

from repro.device import (
    NOISELESS_PROFILE,
    build_device,
    interleaved_rb_fidelity,
    small_test_device,
    standard_rb,
)
from repro.device.calibration import CalibrationService
from repro.device.rb import _rb_circuit
from repro.device.topology import linear_topology
from repro.sim.statevector import ideal_distribution


class TestRbCircuits:
    def test_sequence_inverts_to_identity(self):
        # Noise-free, any RB sequence must return |00> deterministically.
        rng = np.random.default_rng(0)
        for depth in (1, 3, 6):
            circuit = _rb_circuit((0, 1), depth, rng, None, "cz")
            compact, _ = circuit.compacted()
            dist = ideal_distribution(compact)
            assert dist["00"] == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("gate", ["cz", "xy", "cphase"])
    def test_interleaved_sequence_inverts(self, gate):
        rng = np.random.default_rng(1)
        circuit = _rb_circuit((0, 1), 4, rng, gate, "cz")
        compact, _ = circuit.compacted()
        dist = ideal_distribution(compact)
        assert dist["00"] == pytest.approx(1.0, abs=1e-9)

    def test_circuit_is_native(self):
        from repro.device.native_gates import RIGETTI_NATIVE_GATES

        rng = np.random.default_rng(2)
        circuit = _rb_circuit((0, 1), 3, rng, "xy", "cz")
        for gate in circuit:
            assert RIGETTI_NATIVE_GATES.is_native(gate), gate


class TestStandardRb:
    def test_noiseless_alpha_is_one(self):
        device = build_device(
            linear_topology(2), seed=0, profile=NOISELESS_PROFILE
        )
        result = standard_rb(
            device, (0, 1), depths=(1, 2, 4), shots=200,
            sequences_per_depth=2, rng=np.random.default_rng(0),
        )
        assert result.alpha == pytest.approx(1.0, abs=0.02)
        assert result.clifford_fidelity == pytest.approx(1.0, abs=0.02)

    def test_noisy_decay(self):
        device = small_test_device(2, seed=33)
        result = standard_rb(
            device, (0, 1), depths=(1, 2, 4, 8), shots=300,
            sequences_per_depth=2, rng=np.random.default_rng(0),
        )
        assert 0.3 < result.alpha < 1.0
        # Survival decreases with depth (allow shot-noise wiggle).
        assert result.survivals[0] > result.survivals[-1] - 0.05


class TestInterleavedRb:
    def test_noiseless_fidelity_is_one(self):
        device = build_device(
            linear_topology(2), seed=0, profile=NOISELESS_PROFILE
        )
        fidelity = interleaved_rb_fidelity(
            device, (0, 1), "cz", depths=(1, 2, 4), shots=200,
            sequences_per_depth=2, rng=np.random.default_rng(0),
        )
        assert fidelity == pytest.approx(1.0, abs=0.02)

    def test_noisy_estimate_in_plausible_band(self):
        device = small_test_device(2, seed=34)
        truth = device.true_pulse_fidelity((0, 1), "cz")
        estimate = interleaved_rb_fidelity(
            device, (0, 1), "cz", depths=(1, 2, 4, 8), shots=400,
            sequences_per_depth=3, rng=np.random.default_rng(5),
        )
        # IRB is a noisy estimator; it should land in the right band.
        assert estimate == pytest.approx(truth, abs=0.08)

    def test_irb_calibration_mode(self):
        device = small_test_device(2, seed=35)
        service = CalibrationService(
            device, mode="irb", mirror_shots=150, seed=0
        )
        count = service.calibrate_gate("cz")
        assert count == 1
        assert 0.25 <= service.data.two_qubit_fidelity((0, 1), "cz") <= 1.0
