"""Tests for calibration: benchmarking, cadence, staleness."""

import math

import numpy as np
import pytest

from repro.device import (
    CalibrationService,
    NOISELESS_PROFILE,
    build_device,
    mirror_benchmark_fidelity,
    small_test_device,
)
from repro.device.calibration import CalibrationData, CalibrationRecord
from repro.device.topology import linear_topology
from repro.exceptions import CalibrationError


@pytest.fixture()
def device():
    return small_test_device(4, seed=12)


class TestCalibrationData:
    def test_missing_record_raises(self):
        data = CalibrationData()
        with pytest.raises(CalibrationError):
            data.two_qubit_fidelity((0, 1), "cz")

    def test_best_native_gate(self):
        data = CalibrationData()
        data.two_qubit[((0, 1), "cz")] = CalibrationRecord(0.97, 0.0)
        data.two_qubit[((0, 1), "xy")] = CalibrationRecord(0.99, 0.0)
        assert data.best_native_gate((0, 1)) == "xy"

    def test_best_native_gate_tie_breaks_canonically(self):
        data = CalibrationData()
        data.two_qubit[((0, 1), "cz")] = CalibrationRecord(0.95, 0.0)
        data.two_qubit[((0, 1), "cphase")] = CalibrationRecord(0.95, 0.0)
        # xy < cz < cphase in canonical order; on a tie the earlier wins.
        assert data.best_native_gate((0, 1)) == "cz"

    def test_best_native_gate_no_records(self):
        with pytest.raises(CalibrationError):
            CalibrationData().best_native_gate((0, 1))

    def test_record_age(self):
        record = CalibrationRecord(0.99, timestamp_us=100.0)
        assert record.age_us(600.0) == 500.0

    def test_snapshot_is_independent(self):
        data = CalibrationData()
        data.two_qubit[((0, 1), "cz")] = CalibrationRecord(0.9, 0.0)
        snap = data.snapshot()
        data.two_qubit[((0, 1), "cz")] = CalibrationRecord(0.5, 1.0)
        assert snap.two_qubit_fidelity((0, 1), "cz") == 0.9


class TestCalibrationService:
    def test_full_calibration_covers_everything(self, device):
        service = CalibrationService(device, seed=0)
        service.full_calibration()
        for link in device.topology.links:
            for gate in device.supported_gates(*link):
                assert 0.25 <= service.data.two_qubit_fidelity(link, gate) <= 1.0
        for qubit in device.topology.qubits:
            assert service.data.single_qubit_fidelity(qubit) > 0.9
            assert service.data.readout_fidelity(qubit) > 0.5

    def test_analytic_estimate_near_truth(self, device):
        service = CalibrationService(device, estimation_noise_std=1e-4, seed=0)
        service.calibrate_gate("cz")
        link = device.topology.links[0]
        truth = device.true_pulse_fidelity(link, "cz")
        assert service.data.two_qubit_fidelity(link, "cz") == pytest.approx(
            truth, abs=5e-3
        )

    def test_calibration_costs_time(self, device):
        service = CalibrationService(device, seed=0)
        start = device.clock_us
        service.calibrate_gate("cz")
        assert device.clock_us > start

    def test_cadence_staleness(self, device):
        service = CalibrationService(
            device,
            refresh_period_us={"cz": 1e6, "xy": 1e6, "cphase": 1e12},
            seed=0,
        )
        service.full_calibration()
        device.advance_time(1e9)  # well past cz/xy cadence, not cphase
        refreshed = service.maybe_recalibrate()
        assert "cz" in refreshed and "xy" in refreshed
        assert "cphase" not in refreshed

    def test_staleness_query(self, device):
        service = CalibrationService(device, seed=0)
        assert service.staleness_us("cz") == math.inf
        service.calibrate_gate("cz")
        device.advance_time(123.0)
        assert service.staleness_us("cz") == pytest.approx(123.0)

    def test_stale_records_diverge_from_truth(self):
        device = small_test_device(3, seed=44)
        service = CalibrationService(device, estimation_noise_std=0.0, seed=0)
        service.calibrate_gate("cz")
        link = (0, 1)
        recorded = service.data.two_qubit_fidelity(link, "cz")
        device.advance_time(72 * 3_600e6)  # three days of drift
        truth_now = device.true_pulse_fidelity(link, "cz")
        # The published number no longer matches the device (Fig. 8).
        assert recorded != pytest.approx(truth_now, abs=1e-4)

    def test_invalid_mode_rejected(self, device):
        with pytest.raises(CalibrationError):
            CalibrationService(device, mode="oracle")


class TestMirrorBenchmarking:
    def test_noiseless_estimate_is_one(self):
        device = build_device(
            linear_topology(3), seed=0, profile=NOISELESS_PROFILE
        )
        fid = mirror_benchmark_fidelity(
            device, (0, 1), "cz", depths=(1, 2, 4), shots=400,
            rng=np.random.default_rng(0),
        )
        assert fid == pytest.approx(1.0, abs=0.02)

    def test_noisy_estimate_tracks_truth(self):
        device = small_test_device(3, seed=21)
        truth = device.true_pulse_fidelity((0, 1), "cz")
        fid = mirror_benchmark_fidelity(
            device, (0, 1), "cz", depths=(1, 2, 4, 8), shots=800,
            rng=np.random.default_rng(1),
        )
        # Mirror benchmarking is an estimator, not an oracle: allow a few
        # percent, which is the realism the paper's critique relies on.
        assert fid == pytest.approx(truth, abs=0.05)

    def test_mirror_mode_service(self):
        device = small_test_device(3, seed=22)
        service = CalibrationService(
            device, mode="mirror", mirror_shots=200, seed=0
        )
        count = service.calibrate_gate("xy")
        assert count == len(device.topology.links)
        for link in device.topology.links:
            assert 0.25 <= service.data.two_qubit_fidelity(link, "xy") <= 1.0
