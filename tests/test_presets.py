"""Tests for device preset sampling (NoiseProfile mechanics)."""

import math

import numpy as np
import pytest

from repro.device import (
    DEFAULT_PROFILE,
    NOISELESS_PROFILE,
    NoiseProfile,
    build_device,
    small_test_device,
)
from repro.device.topology import linear_topology


class TestProfileSampling:
    def test_qubit_parameters_within_ranges(self):
        device = build_device(linear_topology(6), seed=3)
        low, high = DEFAULT_PROFILE.t1_us_range
        for params in device.qubit_params.values():
            assert low <= params.t1_us.process.mean <= high
            assert params.t2_us.current <= 2 * params.t1_us.current + 1e-9
            assert 0 <= params.readout_p01.current <= 0.5

    def test_depolarizing_within_log_range(self):
        device = build_device(linear_topology(6), seed=3)
        log_low, log_high = DEFAULT_PROFILE.two_qubit_depolarizing_log_range
        for (link, gate), params in device.gate_params.items():
            scale = DEFAULT_PROFILE.depolarizing_scale[gate]
            value = params.depolarizing.process.mean / scale
            assert math.exp(log_low) - 1e-12 <= value <= math.exp(log_high) + 1e-12

    def test_pulse_durations_assigned(self):
        device = build_device(linear_topology(3), seed=1)
        for (link, gate), params in device.gate_params.items():
            assert params.duration_ns == DEFAULT_PROFILE.pulse_durations_ns[gate]

    def test_coherent_outliers_present(self):
        # With a 30% outlier fraction over many draws, the coherent error
        # magnitudes must be visibly heavy-tailed.
        device = build_device(linear_topology(30), seed=5)
        magnitudes = sorted(
            abs(p.over_rotation.process.mean)
            for p in device.gate_params.values()
        )
        bulk = np.median(magnitudes)
        assert magnitudes[-1] > 3 * bulk

    def test_missing_gate_fraction_zero_keeps_all(self):
        device = small_test_device(6, seed=2)
        for link in device.topology.links:
            assert len(device.supported_gates(*link)) == 3

    def test_missing_gate_fraction_one_drops_gate(self):
        profile = NoiseProfile(
            **{
                **DEFAULT_PROFILE.__dict__,
                "missing_gate_fraction": {"xy": 1.0, "cz": 0.0, "cphase": 1.0},
            }
        )
        device = build_device(linear_topology(5), seed=2, profile=profile)
        for link in device.topology.links:
            assert device.supported_gates(*link) == ("cz",)

    def test_noiseless_profile_fidelities(self):
        device = build_device(
            linear_topology(4), seed=0, profile=NOISELESS_PROFILE
        )
        for link in device.topology.links:
            for gate in device.supported_gates(*link):
                assert device.true_pulse_fidelity(link, gate) == pytest.approx(
                    1.0, abs=1e-6
                )

    def test_different_seeds_differ(self):
        a = build_device(linear_topology(3), seed=1)
        b = build_device(linear_topology(3), seed=2)
        fa = a.true_pulse_fidelity((0, 1), "cz")
        fb = b.true_pulse_fidelity((0, 1), "cz")
        assert fa != pytest.approx(fb, abs=1e-9)

    def test_physics_flags_forwarded(self):
        from repro.device import aspen11

        device = aspen11(seed=1, idle_noise=True, crosstalk_zz=0.07)
        assert device.idle_noise is True
        assert device.crosstalk_zz == pytest.approx(0.07)
