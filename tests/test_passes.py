"""Tests for the full transpile pipeline."""

import pytest

from repro.circuit import QuantumCircuit
from repro.compiler import transpile
from repro.core import NativeGateSequence
from repro.device import CalibrationService, small_test_device
from repro.exceptions import CompilationError
from repro.programs import bv_n4, ghz_n4, toffoli_n3
from repro.sim.statevector import ideal_distribution


@pytest.fixture(scope="module")
def env():
    device = small_test_device(6, seed=8)
    service = CalibrationService(device, seed=0)
    service.full_calibration()
    return device, service.data


class TestTranspile:
    def test_ghz_pipeline(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        assert compiled.num_cnot_sites == 3
        assert len(compiled.links_used()) == 3
        for link in compiled.links_used():
            assert device.topology.has_link(*link)

    def test_toffoli_grows_to_nine_sites_on_a_line(self, env):
        device, calibration = env
        compiled = transpile(toffoli_n3(), device, calibration)
        # 6 logical CNOTs + 1 routed SWAP (3 more) = 9 (paper VI-B).
        assert compiled.num_cnot_sites == 9
        origins = {s.origin for s in compiled.sites}
        assert origins == {"program", "swap"}

    def test_bv_site_growth(self, env):
        device, calibration = env
        compiled = transpile(bv_n4(), device, calibration)
        # 3 logical CNOTs; line routing adds SWAPs.
        assert compiled.num_cnot_sites > 3

    def test_gate_options_cover_used_links(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        options = compiled.gate_options()
        assert set(options) == set(compiled.links_used())
        for gates in options.values():
            assert gates  # every used link supports something

    def test_ideal_distribution_is_logical(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        ideal = compiled.ideal_distribution()
        assert ideal["0000"] == pytest.approx(0.5)
        assert ideal["1111"] == pytest.approx(0.5)

    def test_nativized_accepts_sequence_object(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        sequence = NativeGateSequence.uniform(compiled.sites, "cz")
        circuit = compiled.nativized(sequence, name_suffix="_test")
        assert circuit.name.endswith("_test")
        # Executable end to end.
        counts = device.run(circuit, 100, seed=0)
        assert sum(counts.values()) == 100

    def test_nativized_preserves_semantics(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        sequence = NativeGateSequence.uniform(compiled.sites, "xy")
        native = compiled.nativized(sequence)
        compact, _ = native.compacted()
        dist = ideal_distribution(compact)
        ideal = compiled.ideal_distribution()
        for key in set(ideal) | set(dist):
            assert ideal.get(key, 0.0) == pytest.approx(
                dist.get(key, 0.0), abs=1e-9
            )

    def test_structural_transpile_without_calibration(self, env):
        device, _ = env
        compiled = transpile(ghz_n4(), device)
        assert compiled.num_cnot_sites == 3

    def test_program_too_wide(self, env):
        device, calibration = env
        with pytest.raises(CompilationError):
            transpile(QuantumCircuit(20).h(0), device, calibration)
