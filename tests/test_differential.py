"""Seeded property-based differential simulator tests.

Three independent simulation backends cover overlapping circuit classes:

* Clifford circuits — :class:`StabilizerSimulator` (CHP tableau) vs the
  noiseless :class:`DensityMatrixSimulator`;
* Clifford CopyCats of random programs — the exact probe circuits ANGEL
  runs, same pair of backends;
* arbitrary noiseless circuits — :class:`StatevectorSimulator` vs
  :class:`DensityMatrixSimulator` (a pure state's density matrix must
  reproduce its statevector probabilities exactly).

Each case is a seeded random circuit, so the suite is a deterministic
~50-case property sweep per run. CI's nightly-style differential job
widens the sweep through ``REPRO_DIFFERENTIAL_SEEDS`` (a comma-separated
list of extra seeds applied to every class).
"""

import os

import numpy as np
import pytest

from repro.circuit.random_circuits import (
    random_circuit,
    random_clifford_circuit,
)
from repro.core.copycat import build_copycat
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.statevector import StatevectorSimulator

_ATOL = 1e-9


def _extra_seeds():
    raw = os.environ.get("REPRO_DIFFERENTIAL_SEEDS", "")
    return [int(token) for token in raw.split(",") if token.strip()]


def _seeds(base):
    return list(base) + _extra_seeds()


def _assert_distributions_match(left, right, atol=_ATOL):
    """Two exact distributions over the same register agree pointwise."""
    keys = set(left) | set(right)
    assert keys, "empty distributions"
    for key in keys:
        assert left.get(key, 0.0) == pytest.approx(
            right.get(key, 0.0), abs=atol
        ), f"outcome {key}: {left.get(key, 0.0)} != {right.get(key, 0.0)}"
    assert sum(left.values()) == pytest.approx(1.0, abs=1e-6)
    assert sum(right.values()) == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("seed", _seeds(range(15)))
def test_clifford_stabilizer_vs_density_matrix(seed):
    """Random Clifford circuits: tableau == noiseless density matrix."""
    rng = np.random.default_rng(1000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(5, 25))
    circuit = random_clifford_circuit(num_qubits, depth, rng)
    stab = StabilizerSimulator().distribution(circuit)
    dense = DensityMatrixSimulator().distribution(circuit)
    _assert_distributions_match(stab, dense)


@pytest.mark.parametrize("seed", _seeds(range(10)))
def test_clifford_copycat_stabilizer_vs_density_matrix(seed):
    """CopyCats with a zero non-Clifford budget are pure Clifford; the
    exact probe circuits ANGEL runs must agree across backends."""
    rng = np.random.default_rng(2000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(8, 30))
    program = random_circuit(num_qubits, depth, rng)
    copycat = build_copycat(program, max_non_clifford=0)
    circuit = copycat.circuit
    assert circuit.compacted()[0].is_clifford()
    stab = StabilizerSimulator().distribution(circuit)
    dense = DensityMatrixSimulator().distribution(circuit)
    _assert_distributions_match(stab, dense)
    # The CopyCat's own ideal_distribution (which picks the stabilizer
    # path for Clifford circuits) agrees too, modulo compaction.
    ideal = copycat.ideal_distribution()
    assert sum(ideal.values()) == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("seed", _seeds(range(25)))
def test_noiseless_statevector_vs_density_matrix(seed):
    """Arbitrary circuits, no noise: |psi><psi| probabilities == |psi|^2."""
    rng = np.random.default_rng(3000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(5, 25))
    circuit = random_circuit(num_qubits, depth, rng)
    vector = StatevectorSimulator().distribution(circuit)
    dense = DensityMatrixSimulator().distribution(circuit)
    _assert_distributions_match(vector, dense)


def test_sweep_covers_at_least_fifty_cases():
    """The default parametrization is a ~50-case property sweep."""
    total = len(_seeds(range(15))) + len(_seeds(range(10))) + len(
        _seeds(range(25))
    )
    assert total >= 50
