"""Seeded property-based differential simulator tests.

Three independent simulation backends cover overlapping circuit classes:

* Clifford circuits — :class:`StabilizerSimulator` (CHP tableau) vs the
  noiseless :class:`DensityMatrixSimulator`;
* Clifford CopyCats of random programs — the exact probe circuits ANGEL
  runs, same pair of backends;
* arbitrary noiseless circuits — :class:`StatevectorSimulator` vs
  :class:`DensityMatrixSimulator` (a pure state's density matrix must
  reproduce its statevector probabilities exactly).

Each case is a seeded random circuit, so the suite is a deterministic
~50-case property sweep per run. CI's nightly-style differential job
widens the sweep through ``REPRO_DIFFERENTIAL_SEEDS`` (a comma-separated
list of extra seeds applied to every class).
"""

import dataclasses
import math
import os

import numpy as np
import pytest

from repro.circuit.random_circuits import (
    random_circuit,
    random_clifford_circuit,
)
from repro.compiler import transpile
from repro.core.copycat import build_copycat
from repro.core.sequence import NativeGateSequence
from repro.device.presets import (
    DEFAULT_PROFILE,
    NOISELESS_PROFILE,
    small_test_device,
)
from repro.programs.ghz import ghz
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.statevector import StatevectorSimulator

_ATOL = 1e-9


def _extra_seeds():
    raw = os.environ.get("REPRO_DIFFERENTIAL_SEEDS", "")
    return [int(token) for token in raw.split(",") if token.strip()]


def _seeds(base):
    return list(base) + _extra_seeds()


def _assert_distributions_match(left, right, atol=_ATOL):
    """Two exact distributions over the same register agree pointwise."""
    keys = set(left) | set(right)
    assert keys, "empty distributions"
    for key in keys:
        assert left.get(key, 0.0) == pytest.approx(
            right.get(key, 0.0), abs=atol
        ), f"outcome {key}: {left.get(key, 0.0)} != {right.get(key, 0.0)}"
    assert sum(left.values()) == pytest.approx(1.0, abs=1e-6)
    assert sum(right.values()) == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("seed", _seeds(range(15)))
def test_clifford_stabilizer_vs_density_matrix(seed):
    """Random Clifford circuits: tableau == noiseless density matrix."""
    rng = np.random.default_rng(1000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(5, 25))
    circuit = random_clifford_circuit(num_qubits, depth, rng)
    stab = StabilizerSimulator().distribution(circuit)
    dense = DensityMatrixSimulator().distribution(circuit)
    _assert_distributions_match(stab, dense)


@pytest.mark.parametrize("seed", _seeds(range(10)))
def test_clifford_copycat_stabilizer_vs_density_matrix(seed):
    """CopyCats with a zero non-Clifford budget are pure Clifford; the
    exact probe circuits ANGEL runs must agree across backends."""
    rng = np.random.default_rng(2000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(8, 30))
    program = random_circuit(num_qubits, depth, rng)
    copycat = build_copycat(program, max_non_clifford=0)
    circuit = copycat.circuit
    assert circuit.compacted()[0].is_clifford()
    stab = StabilizerSimulator().distribution(circuit)
    dense = DensityMatrixSimulator().distribution(circuit)
    _assert_distributions_match(stab, dense)
    # The CopyCat's own ideal_distribution (which picks the stabilizer
    # path for Clifford circuits) agrees too, modulo compaction.
    ideal = copycat.ideal_distribution()
    assert sum(ideal.values()) == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("seed", _seeds(range(25)))
def test_noiseless_statevector_vs_density_matrix(seed):
    """Arbitrary circuits, no noise: |psi><psi| probabilities == |psi|^2."""
    rng = np.random.default_rng(3000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(5, 25))
    circuit = random_circuit(num_qubits, depth, rng)
    vector = StatevectorSimulator().distribution(circuit)
    dense = DensityMatrixSimulator().distribution(circuit)
    _assert_distributions_match(vector, dense)


# ----------------------------------------------------------------------
# Device-level Clifford fast path vs dense engine, per noise preset
# ----------------------------------------------------------------------

#: Purely stochastic noise (no coherent angles): the fast path's
#: white-noise survival model tracks the dense engine to a few percent
#: total variation; readout confusion is applied exactly on both paths.
_STOCHASTIC_PROFILE = dataclasses.replace(
    NOISELESS_PROFILE,
    t1_us_range=(150.0, 250.0),
    t2_over_t1_range=(1.0, 1.5),
    readout_p01_range=(0.01, 0.03),
    readout_p10_range=(0.005, 0.02),
    rx_depolarizing_range=(2e-4, 8e-4),
    two_qubit_depolarizing_log_range=(math.log(2e-3), math.log(6e-3)),
)

#: Stochastic noise plus coherent angles well inside the fast path's
#: exactness budget (0.02 rad): the realistic regime where the
#: stabilizer short-circuit is allowed to fire.
_WEAK_COHERENT_PROFILE = dataclasses.replace(
    _STOCHASTIC_PROFILE,
    rx_over_rotation_std=0.002,
    over_rotation_std=0.004,
    zz_error_std=0.003,
)

_CLIFFORD_PRESETS = {
    "noiseless": (NOISELESS_PROFILE, 1e-4, "hits"),
    "stochastic": (_STOCHASTIC_PROFILE, 0.08, "hits"),
    "weak_coherent": (_WEAK_COHERENT_PROFILE, 0.08, "hits"),
    # The default profile's coherent angles always exceed the budget:
    # the fast path must fall back on every probe, bit-identically.
    "default": (DEFAULT_PROFILE, 0.0, "fallbacks"),
}


def _total_variation(left, right):
    keys = set(left) | set(right)
    return 0.5 * sum(
        abs(left.get(k, 0.0) - right.get(k, 0.0)) for k in keys
    )


def _probe_circuits(device, num_qubits=4):
    """GHZ probe candidates in the localized-search shape: a uniform
    reference per available gate (cz and xy lower to Clifford ops,
    cphase does not)."""
    compiled = transpile(ghz(num_qubits), device)
    circuits = []
    for gate in ("cz", "xy", "cphase"):
        if any(
            gate not in options
            for options in compiled.gate_options().values()
        ):
            continue
        sequence = NativeGateSequence.uniform(compiled.sites, gate)
        circuits.append(
            compiled.nativized(sequence, name_suffix=f"_{gate}")
        )
    return circuits


@pytest.mark.parametrize("preset", sorted(_CLIFFORD_PRESETS))
def test_clifford_fast_path_vs_dense_engine(preset):
    """Device-level differential: clifford_fast_path on vs off, same
    chip-day, every noise preset. Where the fast path fires, its
    white-noise distribution stays within a total-variation budget of
    the dense engine; where it cannot guarantee that, it falls back
    and the distributions are identical dictionaries."""
    profile, budget, expectation = _CLIFFORD_PRESETS[preset]
    fast_dev = small_test_device(
        num_qubits=4, seed=19, profile=profile, clifford_fast_path=True
    )
    dense_dev = small_test_device(num_qubits=4, seed=19, profile=profile)
    for fast_circ, dense_circ in zip(
        _probe_circuits(fast_dev), _probe_circuits(dense_dev)
    ):
        fast = fast_dev.noisy_distribution(fast_circ)
        dense = dense_dev.noisy_distribution(dense_circ)
        if budget == 0.0:
            assert fast == dense
        else:
            tv = _total_variation(fast, dense)
            assert tv <= budget, f"{preset}: TV {tv:.4f} > {budget}"
    if expectation == "hits":
        assert fast_dev.clifford_fast_hits > 0
        # cphase probes are non-Clifford and must have fallen back.
        assert fast_dev.clifford_fallbacks > 0
    else:
        assert fast_dev.clifford_fast_hits == 0
        assert fast_dev.clifford_fallbacks > 0
    assert dense_dev.clifford_fast_hits == 0


@pytest.mark.parametrize("seed", _seeds(range(6)))
def test_clifford_fast_path_random_copycats(seed):
    """Pure-Clifford CopyCats of random programs through the device:
    fast path vs dense under the weak-coherent preset, TV-bounded."""
    rng = np.random.default_rng(4000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(8, 24))
    program = random_circuit(num_qubits, depth, rng)
    copycat = build_copycat(program, max_non_clifford=0)
    fast_dev = small_test_device(
        num_qubits=num_qubits,
        seed=41,
        profile=_WEAK_COHERENT_PROFILE,
        clifford_fast_path=True,
    )
    dense_dev = small_test_device(
        num_qubits=num_qubits, seed=41, profile=_WEAK_COHERENT_PROFILE
    )
    fast_compiled = transpile(copycat.circuit, fast_dev)
    dense_compiled = transpile(copycat.circuit, dense_dev)
    fast_circ = fast_compiled.nativized(
        NativeGateSequence.uniform(fast_compiled.sites, "cz")
    )
    dense_circ = dense_compiled.nativized(
        NativeGateSequence.uniform(dense_compiled.sites, "cz")
    )
    fast = fast_dev.noisy_distribution(fast_circ)
    dense = dense_dev.noisy_distribution(dense_circ)
    # Deeper random circuits accumulate more white-noise model error
    # than the structured GHZ probes, so this sweep gets a wider but
    # still-discriminating budget (a wrong gate or a dropped channel
    # shows up as TV well above 0.5).
    assert _total_variation(fast, dense) <= 0.12


def test_sweep_covers_at_least_fifty_cases():
    """The default parametrization is a ~50-case property sweep."""
    total = len(_seeds(range(15))) + len(_seeds(range(10))) + len(
        _seeds(range(25))
    )
    assert total >= 50
