"""Tests for device topologies."""

import networkx as nx
import pytest

from repro.device.topology import (
    Topology,
    aspen_topology,
    linear_topology,
    make_link,
)
from repro.exceptions import DeviceError


class TestMakeLink:
    def test_canonical_ordering(self):
        assert make_link(5, 2) == (2, 5)
        assert make_link(2, 5) == (2, 5)

    def test_self_link_rejected(self):
        with pytest.raises(DeviceError):
            make_link(3, 3)


class TestLinearTopology:
    def test_structure(self):
        topo = linear_topology(4)
        assert topo.num_qubits == 4
        assert topo.links == ((0, 1), (1, 2), (2, 3))

    def test_minimum_size(self):
        with pytest.raises(DeviceError):
            linear_topology(1)

    def test_neighbors_and_degree(self):
        topo = linear_topology(4)
        assert topo.neighbors(1) == [0, 2]
        assert topo.degree(0) == 1

    def test_shortest_path(self):
        topo = linear_topology(5)
        assert topo.shortest_path(0, 3) == [0, 1, 2, 3]
        assert topo.distance(0, 4) == 4

    def test_connected(self):
        assert linear_topology(6).is_connected()


class TestAspenTopology:
    def test_single_octagon(self):
        topo = aspen_topology(1, 1)
        assert topo.num_qubits == 8
        assert topo.num_links == 8  # a pure ring

    def test_horizontal_coupling(self):
        topo = aspen_topology(1, 2)
        assert topo.num_qubits == 16
        # 2 rings (16) + 2 inter-octagon links.
        assert topo.num_links == 18
        assert topo.has_link(1, 16)
        assert topo.has_link(2, 15)

    def test_vertical_coupling(self):
        topo = aspen_topology(2, 1)
        assert topo.has_link(0, 13)
        assert topo.has_link(7, 14)

    def test_aspen_m1_scale(self):
        topo = aspen_topology(2, 5)
        assert topo.num_qubits == 80
        # 10 rings (80) + 8 horizontal pairs (16) + 5 vertical pairs (10).
        assert topo.num_links == 106

    def test_dead_qubits_removed(self):
        topo = aspen_topology(1, 1, dead_qubits=(3,))
        assert topo.num_qubits == 7
        assert not any(3 in link for link in topo.links)

    def test_disabled_links_removed(self):
        topo = aspen_topology(1, 1, disabled_links=((0, 1),))
        assert not topo.has_link(0, 1)
        assert topo.num_links == 7

    def test_rigetti_id_convention(self):
        topo = aspen_topology(1, 3)
        assert 20 in topo.qubits  # third octagon starts at 20
        assert max(topo.qubits) == 27

    def test_invalid_grid(self):
        with pytest.raises(DeviceError):
            aspen_topology(0, 1)


class TestTopologyValidation:
    def test_non_canonical_link_rejected(self):
        with pytest.raises(DeviceError):
            Topology("bad", (0, 1), ((1, 0),))

    def test_unknown_qubit_in_link_rejected(self):
        with pytest.raises(DeviceError):
            Topology("bad", (0, 1), ((0, 2),))

    def test_no_path_raises(self):
        topo = Topology("split", (0, 1, 2, 3), ((0, 1), (2, 3)))
        with pytest.raises(DeviceError):
            topo.shortest_path(0, 3)

    def test_bfs_region(self):
        topo = linear_topology(6)
        region = topo.connected_subgraph_qubits(2, 4)
        assert len(region) == 4
        assert region[0] == 2
        graph = topo.graph().subgraph(region)
        assert nx.is_connected(graph)

    def test_bfs_region_too_large(self):
        topo = Topology("split", (0, 1, 2), ((0, 1),))
        with pytest.raises(DeviceError):
            topo.connected_subgraph_qubits(0, 3)
