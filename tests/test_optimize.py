"""Pre-search optimization pipeline: correctness and plumbing.

Every pass must preserve the circuit unitary up to global phase — the
property sweep checks each pass alone and the full level-1/level-2
pipelines on 50 seeded random circuits apiece (the
``tests/test_differential.py`` discipline). Targeted cases pin the
individual rewrite rules, the report/obs plumbing, the native-circuit
cleanup's distribution-exactness, and the transpile/context integration
(level 0 bit-identical, level 2 probe-budget reduction).
"""

import math
import os

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.random_circuits import random_circuit
from repro.compiler import transpile
from repro.compiler.optimize import (
    OPTIMIZATION_LEVELS,
    _rebuild,
    CancelInversesPass,
    Fuse1qRunsPass,
    MergeRotationsPass,
    PassManager,
    TwoQubitRewritePass,
    cleanup_native_circuit,
    optimize_circuit,
)
from repro.core.sequence import NativeGateSequence
from repro.device.presets import small_test_device
from repro.exceptions import CompilationError
from repro.obs import MetricsRegistry, Tracer, observed
from repro.sim.statevector import StatevectorSimulator


def _extra_seeds():
    raw = os.environ.get("REPRO_DIFFERENTIAL_SEEDS", "")
    return [int(token) for token in raw.split(",") if token.strip()]


def _seeds(base):
    return list(base) + _extra_seeds()


def _assert_same_unitary(original, optimized, atol=1e-7):
    """Unitaries agree up to global phase."""
    left = original.unitary()
    right = optimized.unitary()
    dim = left.shape[0]
    overlap = abs(np.trace(left.conj().T @ right)) / dim
    assert overlap == pytest.approx(1.0, abs=atol), (
        f"unitary changed (overlap {overlap})\n"
        f"before: {original.to_text()}\nafter: {optimized.to_text()}"
    )


def _random_case(seed):
    rng = np.random.default_rng(7000 + seed)
    num_qubits = int(rng.integers(2, 5))
    depth = int(rng.integers(8, 30))
    return random_circuit(num_qubits, depth, rng)


_PASSES = [
    CancelInversesPass(),
    MergeRotationsPass(),
    Fuse1qRunsPass(),
    TwoQubitRewritePass(),
]


@pytest.mark.parametrize("opt_pass", _PASSES, ids=lambda p: p.name)
@pytest.mark.parametrize("seed", _seeds(range(50)))
def test_each_pass_preserves_unitary(opt_pass, seed):
    """Property sweep: every pass alone, 50 seeded random circuits."""
    circuit = _random_case(seed)
    optimized = opt_pass.run(circuit)
    assert len(optimized) <= len(circuit)
    _assert_same_unitary(circuit, optimized)


@pytest.mark.parametrize("level", [1, 2])
@pytest.mark.parametrize("seed", _seeds(range(50)))
def test_pipeline_preserves_unitary(level, seed):
    """Full fixpoint pipelines at levels 1 and 2."""
    circuit = _random_case(seed)
    optimized, report = optimize_circuit(circuit, level)
    assert len(optimized) <= len(circuit)
    assert report.gates_after <= report.gates_before
    _assert_same_unitary(circuit, optimized)


def test_level_zero_returns_circuit_unchanged():
    circuit = _random_case(0)
    optimized, report = optimize_circuit(circuit, 0)
    assert optimized is circuit
    assert report.gates_removed == 0
    assert report.iterations == 0


def test_invalid_level_rejected():
    with pytest.raises(CompilationError):
        optimize_circuit(QuantumCircuit(1), 3)
    assert OPTIMIZATION_LEVELS == (0, 1, 2)


# ---------------------------------------------------------------- rules


def test_cancel_adjacent_self_inverse_pairs():
    circuit = QuantumCircuit(2)
    circuit.cnot(0, 1).cnot(0, 1).h(0).h(0).x(1).x(1)
    assert len(CancelInversesPass().run(circuit)) == 0


def test_cancel_inverse_name_pairs():
    circuit = QuantumCircuit(1)
    circuit.s(0).sdg(0).t(0).tdg(0)
    assert len(CancelInversesPass().run(circuit)) == 0


def test_cancel_through_commuting_gates():
    """cx(0,1) cancels across a disjoint cx(2,3) and an rz on its
    control; a gate on its target blocks it."""
    circuit = QuantumCircuit(4)
    circuit.cnot(0, 1).cnot(2, 3).rz(0.7, 0).cnot(0, 1)
    optimized = CancelInversesPass().run(circuit)
    assert [g.name for g in optimized] == ["cnot", "rz"]
    blocked = QuantumCircuit(2)
    blocked.cnot(0, 1).h(1).cnot(0, 1)
    assert len(CancelInversesPass().run(blocked)) == 3


def test_cancel_blocked_by_barrier_and_measure():
    circuit = QuantumCircuit(2)
    circuit.cnot(0, 1).barrier().cnot(0, 1)
    assert sum(1 for g in CancelInversesPass().run(circuit).gates()) == 2
    measured = QuantumCircuit(2)
    measured.cnot(0, 1).measure(1).cnot(0, 1)
    assert measured.cnot_count() == 2
    assert CancelInversesPass().run(measured).cnot_count() == 2


def test_merge_rotations_same_wire():
    circuit = QuantumCircuit(1)
    circuit.rz(0.3, 0).rz(0.4, 0)
    merged = MergeRotationsPass().run(circuit)
    assert len(merged) == 1
    assert merged[0].params[0] == pytest.approx(0.7)


def test_merge_rz_through_cnot_control_rx_through_target():
    circuit = QuantumCircuit(2)
    circuit.rz(0.3, 0).cnot(0, 1).rz(-0.3, 0)
    merged = MergeRotationsPass().run(circuit)
    assert [g.name for g in merged] == ["cnot"]
    circuit = QuantumCircuit(2)
    circuit.rx(0.5, 1).cnot(0, 1).rx(-0.5, 1)
    merged = MergeRotationsPass().run(circuit)
    assert [g.name for g in merged] == ["cnot"]


def test_merge_drops_identity_rotations():
    circuit = QuantumCircuit(2)
    circuit.rz(0.0, 0).rx(2 * math.pi, 1).ry(0.0, 0)
    assert len(MergeRotationsPass().run(circuit)) == 0


def test_merge_snaps_to_half_pi_grid():
    circuit = QuantumCircuit(1)
    circuit.rz(math.pi / 4 + 3e-10, 0).rz(math.pi / 4, 0)
    merged = MergeRotationsPass().run(circuit)
    assert len(merged) == 1
    assert merged[0].params[0] == math.pi / 2


def test_fuse_1q_run_to_euler_sandwich():
    """A long 1q run fuses to <= 3 gates (RZ RX RZ), same unitary."""
    circuit = QuantumCircuit(1)
    circuit.h(0).t(0).rx(0.3, 0).s(0).ry(-0.8, 0).h(0)
    fused = Fuse1qRunsPass().run(circuit)
    assert len(fused) <= 3
    assert {g.name for g in fused} <= {"rz", "rx"}
    _assert_same_unitary(circuit, fused)


def test_fuse_preserves_clifford_eligibility():
    """Snapping keeps an all-Clifford run Clifford after fusion."""
    circuit = QuantumCircuit(1)
    circuit.h(0).s(0).h(0).s(0)
    fused = Fuse1qRunsPass().run(circuit)
    _assert_same_unitary(circuit, fused)
    assert fused.is_clifford()


def test_fuse_identity_run_vanishes():
    circuit = QuantumCircuit(2)
    circuit.h(0).h(0).s(0).sdg(0).cnot(0, 1)
    fused = Fuse1qRunsPass().run(circuit)
    assert [g.name for g in fused] == ["cnot"]


def test_sandwich_rewrite_to_cz():
    circuit = QuantumCircuit(2)
    circuit.h(1).cnot(0, 1).h(1)
    rewritten = TwoQubitRewritePass().run(circuit)
    assert [g.name for g in rewritten] == ["cz"]
    _assert_same_unitary(circuit, rewritten)


def test_four_hadamard_flip_rule():
    """The color-change rule itself: H pairs on both wires reverse the
    CNOT. Exercised directly — through :meth:`run` the sandwich rule
    fires first on any flip-eligible pattern (its guard is a subset)."""
    circuit = QuantumCircuit(2)
    circuit.h(0).h(1).cnot(0, 1).h(0).h(1)
    opt_pass = TwoQubitRewritePass()
    flipped = _rebuild(circuit, opt_pass._apply(list(circuit), mode="flip"))
    assert [(g.name, g.qubits) for g in flipped] == [("cnot", (1, 0))]
    _assert_same_unitary(circuit, flipped)


def test_sandwich_takes_priority_over_flip():
    """When both rules match, the CZ rewrite wins: it deletes a CNOT
    site (2 probes per link), the flip only reorients one. The leftover
    control Hadamards are cheap — nativization reintroduces 1q frames
    around the link gate anyway."""
    circuit = QuantumCircuit(2)
    circuit.h(0).h(1).cnot(0, 1).h(0).h(1)
    rewritten = TwoQubitRewritePass().run(circuit)
    assert [g.name for g in rewritten] == ["h", "cz", "h"]
    assert rewritten.cnot_count() == 0
    _assert_same_unitary(circuit, rewritten)


# ------------------------------------------------------- report and obs


def test_report_counts_and_per_pass():
    circuit = QuantumCircuit(2)
    circuit.cnot(0, 1).cnot(0, 1).h(0).h(0)
    optimized, report = optimize_circuit(circuit, 1)
    assert len(optimized) == 0
    assert report.gates_removed == 4
    assert report.links_removed == 1
    assert report.per_pass["cancel_inverses"] == 4
    assert report.to_dict()["gates_removed"] == 4


def test_pass_spans_and_counters_emitted():
    circuit = QuantumCircuit(2)
    circuit.cnot(0, 1).cnot(0, 1)
    with observed(Tracer(), MetricsRegistry()) as (tracer, registry):
        optimize_circuit(circuit, 1)
    names = [span.name for span in tracer.spans]
    assert "opt.pass" in names
    counters = registry.snapshot()["counters"]
    assert counters["opt.runs"] == 1
    assert counters["opt.gates_removed"] == 2
    assert counters["opt.links_removed"] == 1


# -------------------------------------------------- native-side cleanup


def _nativized(program, device, level):
    compiled = transpile(program, device, optimization_level=level)
    sequence = NativeGateSequence.uniform(compiled.sites, "cz")
    return compiled, compiled.nativized(sequence)


def test_cleanup_drops_rz_before_measure_and_on_virgin_wires():
    device = small_test_device()
    program = QuantumCircuit(3, name="cleanup")
    program.h(0).cnot(0, 1).cnot(1, 2).measure_all()
    compiled, native = _nativized(program, device, level=2)
    _, baseline = _nativized(program, device, level=0)
    assert len(native) < len(baseline)
    ideal = StatevectorSimulator().distribution(baseline)
    cleaned = StatevectorSimulator().distribution(native)
    for key in set(ideal) | set(cleaned):
        assert ideal.get(key, 0.0) == pytest.approx(
            cleaned.get(key, 0.0), abs=1e-9
        )


@pytest.mark.parametrize("seed", _seeds(range(10)))
def test_cleanup_preserves_nativized_distribution(seed):
    """Level-2 native cleanup is distribution-exact on probe shapes."""
    rng = np.random.default_rng(8000 + seed)
    program = random_circuit(3, int(rng.integers(6, 16)), rng)
    program.measure_all()
    device = small_test_device()
    compiled = transpile(program, device, optimization_level=0)
    for gate in compiled.gate_options().values():
        assert gate  # device sanity
    sequence = NativeGateSequence.uniform(compiled.sites, "cz")
    native = compiled.nativized(sequence)
    cleaned = cleanup_native_circuit(native)
    assert len(cleaned) <= len(native)
    sim = StatevectorSimulator()
    left = sim.distribution(native)
    right = sim.distribution(cleaned)
    for key in set(left) | set(right):
        assert left.get(key, 0.0) == pytest.approx(
            right.get(key, 0.0), abs=1e-9
        )


# ------------------------------------------------- transpile integration


def test_transpile_level_zero_is_bit_identical_default():
    device = small_test_device()
    program = QuantumCircuit(3, name="ghz3")
    program.h(0).cnot(0, 1).cnot(1, 2).measure_all()
    default = transpile(program, device)
    explicit = transpile(program, device, optimization_level=0)
    assert default.scheduled == explicit.scheduled
    assert default.optimization_level == 0
    assert default.opt_report is None


def test_transpile_level_two_shrinks_probe_budget():
    """The vacuous-pair idiom: the dead link leaves ``1 + 2L``."""
    device = small_test_device()
    program = QuantumCircuit(3, name="padded")
    program.h(0).cnot(0, 1)
    program.cnot(1, 2).cnot(1, 2)  # scaffolding, qubit 2 otherwise idle
    program.measure_all()
    base = transpile(program, device, optimization_level=0)
    opt = transpile(program, device, optimization_level=2)
    assert opt.optimization_level == 2
    assert opt.opt_report is not None
    assert opt.opt_report.gates_removed >= 2
    assert len(opt.links_used()) < len(base.links_used())
    assert opt.num_cnot_sites < base.num_cnot_sites


def test_links_used_order_preserving_unique():
    device = small_test_device()
    program = QuantumCircuit(3)
    program.cnot(0, 1).cnot(1, 2).cnot(0, 1).measure_all()
    compiled = transpile(program, device)
    links = compiled.links_used()
    assert len(links) == len(set(links))
    first_seen = []
    for site in compiled.sites:
        if site.link not in first_seen:
            first_seen.append(site.link)
    assert links == first_seen
