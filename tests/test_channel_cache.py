"""Channel cache correctness: bit-identical physics, drift invalidation."""

import numpy as np
import pytest

from repro.device import small_test_device
from repro.sim import ChannelCache
from repro.sim.channels import thermal_relaxation_channel


def _ghz_native(device):
    from repro.compiler import transpile
    from repro.compiler.nativization import nativize
    from repro.core.sequence import NativeGateSequence
    from repro.programs.ghz import ghz

    compiled = transpile(ghz(4), device)
    sequence = NativeGateSequence.uniform(compiled.sites, "cz")
    return nativize(compiled.scheduled, sequence.as_site_map(), device.native_gates)


class TestChannelCache:
    def test_miss_then_hit_returns_same_object(self):
        cache = ChannelCache()
        built = []

        def factory():
            built.append(object())
            return built[-1]

        first = cache.get(("k", 1.0), factory)
        second = cache.get(("k", 1.0), factory)
        assert first is second
        assert len(built) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert len(cache) == 1

    def test_invalidate_clears_entries(self):
        cache = ChannelCache()
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        assert len(cache) == 2
        cache.invalidate(epoch=1)
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1
        # Re-population works after invalidation.
        assert cache.get("a", lambda: 3) == 3

    def test_overflow_evicts_oldest_not_wholesale(self):
        """Overflow evicts one oldest entry; the rest stay warm."""
        cache = ChannelCache(max_entries=4)
        for index in range(4):
            cache.get(("k", index), lambda index=index: index)
        assert len(cache) == 4
        assert cache.stats()["evictions"] == 0
        # A fifth insert evicts exactly the oldest key, nothing else.
        cache.get(("k", 4), lambda: 4)
        assert len(cache) == 4
        assert cache.stats()["evictions"] == 1
        rebuilt = []
        for index in range(1, 5):
            cache.get(("k", index), lambda: rebuilt.append(index))
        assert rebuilt == []  # survivors are all hits
        cache.get(("k", 0), lambda: rebuilt.append(0))
        assert rebuilt == [0]  # only the evicted key rebuilds

    def test_eviction_order_is_insertion_order(self):
        cache = ChannelCache(max_entries=2)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("c", lambda: 3)  # evicts "a"
        cache.get("d", lambda: 4)  # evicts "b"
        assert cache.stats()["evictions"] == 2
        assert cache.get("c", lambda: -1) == 3
        assert cache.get("d", lambda: -1) == 4

    def test_hit_refreshes_recency_true_lru(self):
        """A hit moves the entry to the back of the eviction queue."""
        cache = ChannelCache(max_entries=2)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("a", lambda: -1)  # hit: "b" is now least recent
        cache.get("c", lambda: 3)  # evicts "b", not "a"
        assert cache.get("a", lambda: -1) == 1  # still resident
        rebuilt = []
        cache.get("b", lambda: rebuilt.append("b") or 9)
        assert rebuilt == ["b"]  # "b" was the one evicted

    def test_invalidation_does_not_count_as_eviction(self):
        cache = ChannelCache(max_entries=4)
        cache.get("a", lambda: 1)
        cache.invalidate(epoch=1)
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["evictions"] == 0


class TestBitIdenticalChannels:
    def test_cached_thermal_channel_bit_identical(self):
        """A cache hit returns exactly what a fresh build would produce."""
        device = small_test_device(3, seed=5)
        qubit = device.topology.qubits[0]
        cached = device._thermal_channel(qubit, 0.1)
        again = device._thermal_channel(qubit, 0.1)
        assert again is cached  # hit: the very same object
        params = device.qubit_params[qubit]
        t1 = params.t1_us.current
        t2 = min(params.t2_us.current, 2 * t1)
        fresh = thermal_relaxation_channel(0.1, t1, t2)
        assert len(cached.operators) == len(fresh.operators)
        for cached_op, fresh_op in zip(cached.operators, fresh.operators):
            # Bit-identical, not merely close: the key embeds the exact
            # parameter values the channel was built from.
            assert np.array_equal(cached_op, fresh_op)

    def test_cached_distribution_matches_uncached(self):
        cached_dev = small_test_device(4, seed=9, channel_cache=True)
        plain_dev = small_test_device(4, seed=9, channel_cache=False)
        circuit = _ghz_native(cached_dev)
        dist_cached = cached_dev.noisy_distribution(circuit)
        dist_plain = plain_dev.noisy_distribution(circuit)
        assert set(dist_cached) == set(dist_plain)
        for key in dist_plain:
            assert dist_cached[key] == pytest.approx(dist_plain[key], abs=1e-12)

    def test_cache_populates_and_hits_on_reuse(self):
        device = small_test_device(4, seed=9)
        circuit = _ghz_native(device)
        device.noisy_distribution(circuit)
        misses_after_first = device.channel_cache.stats()["misses"]
        device.noisy_distribution(circuit)
        stats = device.channel_cache.stats()
        assert stats["misses"] == misses_after_first  # all hits second time
        assert stats["hits"] > 0


class TestDriftInvalidation:
    def test_advance_time_bumps_epoch_and_invalidates(self):
        device = small_test_device(3, seed=5)
        device._thermal_channel(device.topology.qubits[0], 0.1)
        assert len(device.channel_cache) == 1
        epoch_before = device.drift_epoch
        device.advance_time(1e6)
        assert device.drift_epoch == epoch_before + 1
        assert len(device.channel_cache) == 0
        assert device.channel_cache.stats()["invalidations"] >= 1

    def test_zero_advance_keeps_cache(self):
        device = small_test_device(3, seed=5)
        device._thermal_channel(device.topology.qubits[0], 0.1)
        device.advance_time(0.0)
        assert len(device.channel_cache) == 1

    def test_drifted_counts_differ_from_stale_cache_counts(self):
        """After drift, the cached path tracks the *new* physics.

        If invalidation failed, the post-drift distribution would equal
        the pre-drift one (stale fused channels); instead it must match
        an identically-drifted uncached device and differ from the
        pre-drift result.
        """
        cached_dev = small_test_device(4, seed=9, channel_cache=True)
        plain_dev = small_test_device(4, seed=9, channel_cache=False)
        circuit = _ghz_native(cached_dev)

        before = cached_dev.noisy_distribution(circuit)
        hours = 40 * 3600e6
        cached_dev.advance_time(hours)
        plain_dev.advance_time(hours)
        after_cached = cached_dev.noisy_distribution(circuit)
        after_plain = plain_dev.noisy_distribution(circuit)

        for key in after_plain:
            assert after_cached[key] == pytest.approx(
                after_plain[key], abs=1e-12
            )
        drift_shift = max(
            abs(after_cached[k] - before.get(k, 0.0)) for k in after_cached
        )
        assert drift_shift > 1e-6, "40h of drift must move the distribution"

    def test_run_counts_change_after_drift_same_seed(self):
        device = small_test_device(4, seed=9)
        circuit = _ghz_native(device)
        counts_before = device.run(circuit, 2048, seed=77)
        device.advance_time(40 * 3600e6)
        counts_after = device.run(circuit, 2048, seed=77)
        assert counts_before != counts_after
