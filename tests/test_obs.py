"""Observability subsystem tests: tracer, metrics registry, wiring.

The contract: a single instrumented probe sweep emits one coherent span
tree (``angel.select`` > ``search`` > ``search.pass`` > ``search.link``
> ``exec.batch`` > ``backend.job``) covering every probe job, the
registry absorbs the executor/cache ledgers without ever running a
counter backwards, and — crucially — installing *no* tracer leaves the
execution stack bit-identical to the uninstrumented seed behaviour.
"""

import io
import json

import pytest

from repro.compiler import transpile
from repro.core import Angel, AngelConfig
from repro.device import small_test_device
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.experiments import ExperimentContext
from repro.obs import (
    JsonlSpanSink,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    active_registry,
    active_tracer,
    observed,
    read_trace,
    render_trace,
)
from repro.obs import runtime as obs_runtime
from repro.programs.ghz import ghz


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        # Children finish before parents.
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "middle", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_span_times_are_monotonic(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        span = tracer.spans[0]
        assert span.end_wall_s >= span.start_wall_s
        assert span.wall_time_s >= 0.0

    def test_device_clock_sampled_per_span(self):
        clock = [100.0]
        tracer = Tracer(clock_us=lambda: clock[0])
        with tracer.span("job"):
            clock[0] = 350.0
        span = tracer.spans[0]
        assert span.start_device_us == 100.0
        assert span.end_device_us == 350.0
        assert span.device_time_us == 250.0

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("work", shots=1024) as span:
            span.set(extra=7)
            span.event("retry", attempt=1)
        finished = tracer.spans[0]
        assert finished.attributes == {"shots": 1024, "extra": 7}
        assert [e.name for e in finished.events] == ["retry"]
        assert finished.events[0].attributes == {"attempt": 1}

    def test_tracer_event_targets_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("fault", kind="timeout")
        assert not outer.events
        assert [e.name for e in inner.events] == ["fault"]

    def test_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.spans == []

    def test_exception_marks_span_error_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        statuses = {s.name: s.status for s in tracer.spans}
        assert statuses == {"inner": "error", "outer": "error"}
        assert tracer.current is None

    def test_jsonl_sink_streams_parseable_lines(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=JsonlSpanSink(buffer))
        with tracer.span("root", tag="probe"):
            with tracer.span("leaf"):
                pass
        tracer.flush()
        lines = [json.loads(l) for l in buffer.getvalue().splitlines()]
        assert [d["name"] for d in lines] == ["leaf", "root"]
        assert lines[1]["attributes"] == {"tag": "probe"}
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_sink_coerces_non_json_attributes(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=JsonlSpanSink(buffer))
        with tracer.span("link", link=(21, 22)):
            pass
        line = json.loads(buffer.getvalue())
        assert line["attributes"]["link"] == [21, 22]

    def test_keep_spans_false_only_streams(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=JsonlSpanSink(buffer), keep_spans=False)
        with tracer.span("root"):
            pass
        assert tracer.spans == []
        assert json.loads(buffer.getvalue())["name"] == "root"

    def test_registry_fed_per_finished_span(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        for _ in range(3):
            with tracer.span("backend.job"):
                pass
        snap = registry.snapshot()
        assert snap["counters"]["span.backend.job"] == 3
        assert snap["histograms"]["span.backend.job.wall_s"]["count"] == 3


# ----------------------------------------------------------------------
# Null path / runtime installation
# ----------------------------------------------------------------------
class TestRuntime:
    def test_disabled_by_default(self):
        assert active_tracer() is None
        assert active_registry() is None

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set(anything=1)
            span.event("whatever")
        assert not NULL_SPAN
        assert NULL_SPAN.set(x=1) is NULL_SPAN

    def test_observed_installs_and_restores(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with observed(tracer, registry):
            assert active_tracer() is tracer
            assert active_registry() is registry
            inner = Tracer()
            with observed(inner):
                assert active_tracer() is inner
            assert active_tracer() is tracer
        assert active_tracer() is None
        assert active_registry() is None

    def test_module_event_routes_to_active_tracer(self):
        tracer = Tracer()
        with observed(tracer):
            with tracer.span("root") as root:
                obs_runtime.event("pool.fallback", error="OSError")
        assert [e.name for e in root.events] == ["pool.fallback"]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_never_goes_backwards(self):
        registry = MetricsRegistry()
        counter = registry.counter("exec.jobs")
        counter.advance_to(10)
        counter.advance_to(7)  # stale snapshot: no-op
        assert counter.value == 10
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_ingest_flattens_and_classifies(self):
        registry = MetricsRegistry()
        registry.ingest(
            "exec",
            {
                "jobs": 5,
                "workers": 4,  # gauge key
                "jobs_by_tag": {"probe": 3, "final": 2},
                "name": "local",  # non-numeric: skipped
                "flag": True,  # bool: skipped
            },
        )
        snap = registry.snapshot()
        assert snap["counters"]["exec.jobs"] == 5
        assert snap["counters"]["exec.jobs_by_tag.probe"] == 3
        assert snap["gauges"]["exec.workers"] == 4
        assert "exec.name" not in snap["counters"]
        assert "exec.flag" not in snap["counters"]

    def test_reingesting_same_ledger_is_idempotent(self):
        registry = MetricsRegistry()
        ledger = {"jobs": 9, "shots": 9216}
        registry.ingest("exec", ledger)
        registry.ingest("exec", ledger)
        snap = registry.snapshot()
        assert snap["counters"]["exec.jobs"] == 9
        assert snap["counters"]["exec.shots"] == 9216

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for value in (0.001, 0.01, 0.1):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.1)
        assert snap["mean"] == pytest.approx(0.037, rel=1e-2)

    def test_to_text_and_jsonl_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("exec.jobs").add(3)
        registry.gauge("cache.workers").set(2)
        registry.histogram("span.job.wall_s").observe(0.5)
        text = registry.to_text()
        assert "exec.jobs" in text
        assert "cache.workers" in text
        buffer = io.StringIO()
        registry.dump_jsonl(buffer)
        lines = [json.loads(l) for l in buffer.getvalue().splitlines()]
        kinds = {d["type"] for d in lines}
        assert kinds == {"counter", "gauge", "histogram"}


# ----------------------------------------------------------------------
# Execution-stack integration
# ----------------------------------------------------------------------
def _run_select(device_seed=7, tracer=None, registry=None):
    """One ANGEL selection on the small test device; returns the result."""
    device = small_test_device(seed=device_seed)
    from repro.device.calibration import CalibrationService

    service = CalibrationService(device, seed=3)
    service.full_calibration()
    compiled = transpile(ghz(3), device, service.data)
    angel = Angel(
        device, service.data, AngelConfig(probe_shots=256, seed=5)
    )
    if tracer is None and registry is None:
        return angel.select(compiled)
    with observed(tracer, registry):
        return angel.select(compiled)


class TestIntegration:
    def test_traced_sweep_emits_coherent_tree(self):
        tracer = Tracer()
        result = _run_select(tracer=tracer)
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        # One probe span per executed CopyCat.
        jobs = by_name["backend.job"]
        assert len(jobs) == result.copycats_executed
        for job in jobs:
            assert job.attributes["shots"] == 256
            assert "cache_hits_delta" in job.attributes
        # Every backend.job nests under an exec.batch which nests under
        # the search tree, up to a single angel.select root.
        ids = {s.span_id: s for s in tracer.spans}
        for job in jobs:
            chain = []
            node = job
            while node.parent_id is not None:
                node = ids[node.parent_id]
                chain.append(node.name)
            assert chain[0] == "exec.batch"
            assert chain[-1] == "angel.select"
        assert len(by_name["angel.select"]) == 1
        assert len(by_name["search"]) == 1

    def test_tracing_does_not_change_results(self):
        untraced = _run_select()
        traced = _run_select(tracer=Tracer(), registry=MetricsRegistry())
        assert traced.sequence.label() == untraced.sequence.label()
        assert traced.copycats_executed == untraced.copycats_executed
        probes_a = [p.success_rate for p in untraced.trace.probes]
        probes_b = [p.success_rate for p in traced.trace.probes]
        assert probes_a == probes_b

    def test_registry_absorbs_executor_ledger(self):
        registry = MetricsRegistry()
        result = _run_select(registry=registry)
        snap = registry.snapshot()["counters"]
        assert snap["exec.jobs"] == result.copycats_executed
        assert snap["angel.probes"] == result.copycats_executed
        assert snap["angel.selections"] == 1

    def test_executor_batch_span_carries_cache_deltas(self):
        device = small_test_device(seed=3)
        executor = BatchExecutor(LocalBackend(device))
        tracer = Tracer()
        from repro.compiler.nativization import nativize
        from repro.core.sequence import NativeGateSequence

        compiled = transpile(ghz(3), device)
        sequence = NativeGateSequence.uniform(compiled.sites, "cz")
        circuit = nativize(
            compiled.scheduled,
            sequence.as_site_map(),
            device.native_gates,
        )
        with observed(tracer):
            executor.submit_batch(
                [Job(circuit, 64, seed=1), Job(circuit, 64, seed=2)]
            )
        batch = [s for s in tracer.spans if s.name == "exec.batch"]
        assert len(batch) == 1
        attrs = batch[0].attributes
        assert attrs["jobs"] == 2
        assert attrs["shots"] == 128
        assert "cache_hits_delta" in attrs
        assert "device_time_job_us" in attrs


# ----------------------------------------------------------------------
# Context / CLI plumbing
# ----------------------------------------------------------------------
class TestContextPlumbing:
    def test_context_trace_and_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        context = ExperimentContext.create(
            drift_hours=0.0, trace=str(path), metrics=True
        )
        try:
            assert active_tracer() is context.tracer
            assert active_registry() is context.metrics_registry
            compiled = transpile(
                ghz(4), context.device, context.calibration
            )
            angel = Angel(
                context.device,
                context.calibration,
                AngelConfig(probe_shots=128, seed=1),
                executor=context.executor,
            )
            result = angel.select(compiled)
        finally:
            context.close()
        assert active_tracer() is None
        spans = read_trace(str(path))
        probe_spans = [
            s
            for s in spans
            if s["name"] == "backend.job"
            and s["attributes"].get("tag") == "probe"
        ]
        assert len(probe_spans) == result.copycats_executed
        counters = context.metrics_registry.snapshot()["counters"]
        assert counters["exec.jobs"] >= result.copycats_executed
        rendered = render_trace(spans)
        assert "angel.select" in rendered
        assert "backend.job" in rendered

    def test_cli_angel_alias_with_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        code = main(
            [
                "angel",
                "GHZ_n5",
                "--drift-hours",
                "0",
                "--probe-shots",
                "128",
                "--shots",
                "256",
                "--trace",
                str(path),
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate" in out
        assert "--- metrics ---" in out
        spans = read_trace(str(path))
        probe_spans = [
            s
            for s in spans
            if s["name"] == "backend.job"
            and s["attributes"].get("tag") == "probe"
        ]
        # GHZ-5 uses 4 links with all three natives: 1 + 2L = 9 probes.
        assert len(probe_spans) == 9
        for span in probe_spans:
            assert span["attributes"]["shots"] == 128
            assert span["wall_time_s"] >= 0.0
            assert "cache_hits_delta" in span["attributes"]
