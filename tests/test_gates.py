"""Tests for repro.circuit.gates: registry, matrices, Clifford predicates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gates import (
    GATE_REGISTRY,
    Gate,
    GateSpec,
    cphase_matrix,
    gate_matrix,
    register_gate,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    u3_matrix,
    xy_matrix,
)
from repro.exceptions import CircuitError
from repro.linalg import is_unitary, unitaries_equal_up_to_phase

ANGLES = st.floats(-2 * math.pi, 2 * math.pi, allow_nan=False)


class TestMatrices:
    @pytest.mark.parametrize(
        "name",
        ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "cnot", "cz", "swap", "iswap"],
    )
    def test_fixed_gates_are_unitary(self, name):
        assert is_unitary(gate_matrix(name))

    @given(theta=ANGLES)
    @settings(max_examples=25, deadline=None)
    def test_rotations_are_unitary(self, theta):
        for builder in (rx_matrix, ry_matrix, rz_matrix, cphase_matrix, xy_matrix):
            assert is_unitary(builder(theta))

    def test_xy_pi_is_iswap(self):
        assert np.allclose(xy_matrix(math.pi), gate_matrix("iswap"))

    def test_cphase_pi_is_cz(self):
        assert np.allclose(cphase_matrix(math.pi), gate_matrix("cz"))

    def test_cphase_half_pi_squares_to_cz(self):
        half = cphase_matrix(math.pi / 2)
        assert np.allclose(half @ half, gate_matrix("cz"))

    def test_rx_pi_is_x_up_to_phase(self):
        assert unitaries_equal_up_to_phase(rx_matrix(math.pi), gate_matrix("x"))

    def test_rz_composition(self):
        assert np.allclose(
            rz_matrix(0.3) @ rz_matrix(0.4), rz_matrix(0.7), atol=1e-12
        )

    def test_u3_covers_hadamard(self):
        h = u3_matrix(math.pi / 2, 0.0, math.pi)
        assert unitaries_equal_up_to_phase(h, gate_matrix("h"))

    def test_s_squared_is_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_cnot_action(self):
        cnot = gate_matrix("cnot")
        # Big-endian: first qubit (control) is the most significant bit.
        state = np.zeros(4)
        state[0b10] = 1.0  # control=1, target=0
        assert (cnot @ state)[0b11] == pytest.approx(1.0)


class TestGateConstruction:
    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError, match="unknown gate"):
            Gate("frobnicate", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError, match="expects 2 qubits"):
            Gate("cnot", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Gate("cnot", (1, 1))

    def test_wrong_params_rejected(self):
        with pytest.raises(CircuitError, match="expects 1 params"):
            Gate("rx", (0,))

    def test_negative_qubit_rejected(self):
        with pytest.raises(CircuitError, match="negative"):
            Gate("x", (-1,))

    def test_gates_hashable_and_equal(self):
        assert Gate("rx", (0,), (0.5,)) == Gate("rx", (0,), (0.5,))
        assert hash(Gate("cz", (0, 1))) == hash(Gate("cz", (0, 1)))

    def test_remap(self):
        gate = Gate("cnot", (0, 1)).remap([5, 3])
        assert gate.qubits == (5, 3)

    def test_str_contains_params(self):
        assert "rx(0.5)" in str(Gate("rx", (2,), (0.5,)))


class TestInverse:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "cnot", "cz", "swap", "id"])
    def test_self_inverse(self, name):
        spec = GATE_REGISTRY[name]
        gate = Gate(name, tuple(range(spec.num_qubits)))
        matrix = gate.matrix()
        assert np.allclose(matrix @ gate.inverse().matrix(), np.eye(matrix.shape[0]))

    @pytest.mark.parametrize("name,inv", [("s", "sdg"), ("t", "tdg")])
    def test_named_inverse(self, name, inv):
        assert Gate(name, (0,)).inverse().name == inv

    @given(theta=ANGLES)
    @settings(max_examples=20, deadline=None)
    def test_rotation_inverse(self, theta):
        for name in ("rx", "ry", "rz", "phase"):
            gate = Gate(name, (0,), (theta,))
            product = gate.matrix() @ gate.inverse().matrix()
            assert unitaries_equal_up_to_phase(product, np.eye(2))

    @given(theta=ANGLES)
    @settings(max_examples=20, deadline=None)
    def test_two_qubit_parametric_inverse(self, theta):
        for name in ("cphase", "xy"):
            gate = Gate(name, (0, 1), (theta,))
            product = gate.matrix() @ gate.inverse().matrix()
            assert np.allclose(product, np.eye(4), atol=1e-9)

    def test_u3_inverse(self):
        gate = Gate("u3", (0,), (0.3, 0.8, -0.2))
        product = gate.matrix() @ gate.inverse().matrix()
        assert unitaries_equal_up_to_phase(product, np.eye(2))

    def test_iswap_inverse(self):
        gate = Gate("iswap", (0, 1))
        product = gate.matrix() @ gate.inverse().matrix()
        assert np.allclose(product, np.eye(4), atol=1e-9)

    def test_measure_not_invertible(self):
        with pytest.raises(CircuitError):
            Gate("measure", (0,)).inverse()


class TestCliffordPredicates:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "s", "sdg", "cnot", "cz", "swap", "iswap"])
    def test_fixed_cliffords(self, name):
        spec = GATE_REGISTRY[name]
        assert Gate(name, tuple(range(spec.num_qubits))).is_clifford

    @pytest.mark.parametrize("name", ["t", "tdg"])
    def test_t_gates_not_clifford(self, name):
        assert not Gate(name, (0,)).is_clifford

    def test_rz_clifford_angles(self):
        assert Gate("rz", (0,), (math.pi / 2,)).is_clifford
        assert Gate("rz", (0,), (math.pi,)).is_clifford
        assert not Gate("rz", (0,), (math.pi / 4,)).is_clifford

    def test_xy_clifford_angles(self):
        assert Gate("xy", (0, 1), (math.pi,)).is_clifford
        assert not Gate("xy", (0, 1), (math.pi / 2,)).is_clifford

    def test_cphase_clifford_angles(self):
        assert Gate("cphase", (0, 1), (math.pi,)).is_clifford
        assert not Gate("cphase", (0, 1), (math.pi / 2,)).is_clifford

    def test_measure_not_clifford(self):
        assert not Gate("measure", (0,)).is_clifford


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(CircuitError, match="already registered"):
            register_gate(GateSpec("x", 1, 0, None, lambda: True))

    def test_measure_has_no_matrix(self):
        with pytest.raises(CircuitError, match="no matrix"):
            gate_matrix("measure")

    def test_unknown_matrix_lookup(self):
        with pytest.raises(CircuitError, match="unknown gate"):
            gate_matrix("nope")
