"""Tests for device execution accounting: logs, durations, clocks."""

import math

import pytest

from repro.circuit import QuantumCircuit
from repro.device import small_test_device
from repro.device.native_gates import (
    DEFAULT_PULSE_DURATIONS_NS,
    cnot_decomposition,
    hadamard_native,
)


def _native_bell(a, b):
    qc = QuantumCircuit(max(a, b) + 1, name="bell_acct")
    for g in hadamard_native(a):
        qc.append(g)
    for g in cnot_decomposition("cz", a, b):
        qc.append(g)
    qc.measure(a)
    qc.measure(b)
    return qc


class TestExecutionLog:
    def test_log_records_job_metadata(self):
        device = small_test_device(3, seed=71)
        device.run(_native_bell(0, 1), 123, seed=0)
        record = device.execution_log[-1]
        assert record.circuit_name == "bell_acct"
        assert record.shots == 123
        assert record.qubits == (0, 1)
        assert record.duration_us > 0

    def test_log_accumulates(self):
        device = small_test_device(3, seed=71)
        for _ in range(3):
            device.run(_native_bell(0, 1), 10, seed=0)
        assert len(device.execution_log) == 3
        starts = [r.started_at_us for r in device.execution_log]
        assert starts == sorted(starts)
        assert starts[1] == pytest.approx(
            starts[0] + device.execution_log[0].duration_us
        )

    def test_oracle_views_not_logged(self):
        device = small_test_device(3, seed=71)
        before = len(device.execution_log)
        clock_before = device.clock_us
        device.noisy_distribution(_native_bell(0, 1))
        device.true_pulse_fidelity((0, 1), "cz")
        assert len(device.execution_log) == before
        assert device.clock_us == clock_before


class TestDurations:
    def test_rz_is_free(self):
        device = small_test_device(2, seed=72)
        qc = QuantumCircuit(1).rz(0.3, 0).rz(0.5, 0).measure(0)
        duration = device.circuit_duration_us(qc)
        # Only the measurement contributes.
        assert duration == pytest.approx(
            DEFAULT_PULSE_DURATIONS_NS["measure"] / 1000.0
        )

    def test_parallel_gates_share_time(self):
        device = small_test_device(3, seed=72)
        serial = QuantumCircuit(1)
        serial.rx(math.pi / 2, 0)
        serial.rx(math.pi / 2, 0)
        parallel = QuantumCircuit(2)
        parallel.rx(math.pi / 2, 0)
        parallel.rx(math.pi / 2, 1)
        assert device.circuit_duration_us(parallel) < device.circuit_duration_us(
            serial
        )

    def test_two_qubit_duration_from_gate_params(self):
        device = small_test_device(2, seed=72)
        qc = QuantumCircuit(2).cz(0, 1)
        expected = device.gate_params[((0, 1), "cz")].duration_ns / 1000.0
        assert device.circuit_duration_us(qc) == pytest.approx(expected)

    def test_job_time_scales_with_shots(self):
        device_a = small_test_device(2, seed=73)
        device_b = small_test_device(2, seed=73)
        device_a.run(_native_bell(0, 1), 100, seed=0)
        device_b.run(_native_bell(0, 1), 10_000, seed=0)
        assert (
            device_b.execution_log[-1].duration_us
            > device_a.execution_log[-1].duration_us
        )
