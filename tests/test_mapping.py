"""Tests for qubit mapping strategies."""

import pytest

from repro.circuit import QuantumCircuit
from repro.compiler.mapping import (
    Layout,
    noise_adaptive_layout,
    trivial_layout,
)
from repro.device import CalibrationService, small_test_device
from repro.device.topology import linear_topology
from repro.exceptions import CompilationError
from repro.programs import ghz_n4


class TestLayout:
    def test_injective(self):
        with pytest.raises(CompilationError):
            Layout((0, 0, 1))

    def test_phys_lookup(self):
        layout = Layout((3, 1, 4))
        assert layout.phys(0) == 3
        assert layout.logical_of() == {3: 0, 1: 1, 4: 2}

    def test_as_mapping(self):
        assert Layout((2, 0)).as_mapping() == [2, 0]


class TestTrivialLayout:
    def test_connected_region(self):
        topo = linear_topology(6)
        layout = trivial_layout(QuantumCircuit(3), topo)
        assert len(layout) == 3
        assert layout.phys(0) == 0

    def test_seeded(self):
        topo = linear_topology(6)
        layout = trivial_layout(QuantumCircuit(3), topo, seed_qubit=2)
        assert layout.phys(0) == 2


class TestNoiseAdaptiveLayout:
    @pytest.fixture()
    def setup(self):
        device = small_test_device(6, seed=5)
        service = CalibrationService(device, seed=0)
        service.full_calibration()
        return device, service.data

    def test_produces_valid_layout(self, setup):
        device, calibration = setup
        layout = noise_adaptive_layout(ghz_n4(), device, calibration)
        assert len(layout) == 4
        assert len(set(layout.physical)) == 4
        for phys in layout.physical:
            assert phys in device.topology.qubits

    def test_rejects_oversized_program(self, setup):
        device, calibration = setup
        with pytest.raises(CompilationError):
            noise_adaptive_layout(QuantumCircuit(10), device, calibration)

    def test_prefers_better_region(self, setup):
        device, calibration = setup
        # Degrade calibration records touching qubit 0 so the chosen
        # region avoids it.
        from repro.device.calibration import CalibrationRecord

        for (link, gate), rec in list(calibration.two_qubit.items()):
            if 0 in link:
                calibration.two_qubit[(link, gate)] = CalibrationRecord(
                    0.3, rec.timestamp_us
                )
        layout = noise_adaptive_layout(ghz_n4(), device, calibration)
        assert 0 not in layout.physical

    def test_deterministic(self, setup):
        device, calibration = setup
        a = noise_adaptive_layout(ghz_n4(), device, calibration)
        b = noise_adaptive_layout(ghz_n4(), device, calibration)
        assert a.physical == b.physical
