"""Tests for Clifford Data Regression."""

import numpy as np
import pytest

from repro.compiler import transpile
from repro.core import NativeGateSequence
from repro.core.cdr import (
    CdrFit,
    CliffordDataRegression,
    _least_squares,
    parity_expectation,
)
from repro.device import CalibrationService, small_test_device
from repro.exceptions import SearchError
from repro.programs import vqe_n4


@pytest.fixture(scope="module")
def env():
    device = small_test_device(5, seed=51)
    service = CalibrationService(device, seed=1)
    service.full_calibration()
    return device, service.data


class TestParityExpectation:
    def test_all_zero(self):
        assert parity_expectation({"000": 1.0}) == 1.0

    def test_odd_weight(self):
        assert parity_expectation({"100": 1.0}) == -1.0

    def test_mixed(self):
        assert parity_expectation({"00": 0.5, "11": 0.5}) == pytest.approx(1.0)
        assert parity_expectation({"00": 0.5, "01": 0.5}) == pytest.approx(0.0)


class TestLeastSquares:
    def test_exact_line(self):
        slope, intercept = _least_squares([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_degenerate_x(self):
        slope, intercept = _least_squares([0.5, 0.5], [0.7, 0.9])
        assert slope == 1.0
        assert intercept == pytest.approx(0.3)


class TestCdrFit:
    def test_mitigate_clips(self):
        fit = CdrFit(3.0, 0.0, (), ())
        assert fit.mitigate(0.9) == 1.0
        assert fit.mitigate(-0.9) == -1.0

    def test_mitigate_linear(self):
        fit = CdrFit(2.0, -0.1, (), ())
        assert fit.mitigate(0.3) == pytest.approx(0.5)


class TestCliffordDataRegression:
    def test_requires_training_circuits(self, env):
        device, _ = env
        with pytest.raises(SearchError):
            CliffordDataRegression(device, num_training=1)

    def test_training_circuits_are_clifford(self, env):
        device, calibration = env
        compiled = transpile(vqe_n4(), device, calibration)
        cdr = CliffordDataRegression(device, num_training=4, seed=0)
        for index in range(4):
            training = cdr._training_circuit(compiled.scheduled, index)
            assert training.is_clifford()
            # CNOT skeleton preserved.
            assert (
                training.count_ops().get("cnot", 0)
                + 3 * training.count_ops().get("swap", 0)
                == compiled.num_cnot_sites
            )

    def test_training_variants_differ(self, env):
        device, calibration = env
        compiled = transpile(vqe_n4(), device, calibration)
        cdr = CliffordDataRegression(device, num_training=8, seed=2)
        variants = {
            tuple(g.name for g in cdr._training_circuit(compiled.scheduled, i))
            for i in range(8)
        }
        assert len(variants) > 1

    def test_mitigation_reduces_error(self, env):
        device, calibration = env
        compiled = transpile(vqe_n4(), device, calibration)
        sequence = NativeGateSequence.uniform(compiled.sites, "cz")
        ideal = parity_expectation(compiled.ideal_distribution())
        cdr = CliffordDataRegression(
            device, num_training=12, shots=1024, seed=3
        )
        raw, mitigated, fit = cdr.mitigated_expectation(
            compiled, sequence, target_shots=4096
        )
        assert abs(mitigated - ideal) <= abs(raw - ideal) + 0.05
        assert fit.slope > 0  # noisy and ideal parities co-vary

    def test_fit_is_seed_deterministic(self, env):
        device, calibration = env
        compiled = transpile(vqe_n4(), device, calibration)
        sequence = NativeGateSequence.uniform(compiled.sites, "cz")
        fits = []
        for _ in range(2):
            dev = small_test_device(5, seed=51)
            service = CalibrationService(dev, seed=1)
            service.full_calibration()
            comp = transpile(vqe_n4(), dev, service.data)
            seq = NativeGateSequence.uniform(comp.sites, "cz")
            cdr = CliffordDataRegression(dev, num_training=6, shots=256, seed=9)
            fits.append(cdr.fit(comp, seq))
        assert fits[0].slope == pytest.approx(fits[1].slope)
        assert fits[0].training_noisy == fits[1].training_noisy
