"""Integration tests for the ANGEL framework (paper Fig. 11 pipeline)."""

import numpy as np
import pytest

from repro.compiler import transpile
from repro.core import Angel, AngelConfig
from repro.device import CalibrationService, small_test_device
from repro.exceptions import SearchError
from repro.metrics import success_rate_from_counts
from repro.programs import ghz_n4, teleport_n2, vqe_n4


@pytest.fixture(scope="module")
def env():
    device = small_test_device(5, seed=31)
    service = CalibrationService(device, seed=2)
    service.full_calibration()
    return device, service.data


class TestConfig:
    def test_invalid_shots(self):
        with pytest.raises(SearchError):
            AngelConfig(probe_shots=0)

    def test_invalid_reference(self):
        with pytest.raises(SearchError):
            AngelConfig(reference="oracle")

    def test_invalid_link_order(self):
        with pytest.raises(SearchError):
            AngelConfig(link_order="best-first")


class TestSelection:
    def test_probe_budget_matches_table2(self, env):
        device, calibration = env
        angel = Angel(device, calibration, AngelConfig(probe_shots=128, seed=0))
        compiled = transpile(ghz_n4(), device, calibration)
        result = angel.select(compiled)
        # GHZ_n4 on a line: 3 links, all 3 gates available -> 1 + 2*3 = 7.
        assert result.copycats_executed == 7
        assert angel.expected_probe_count(compiled) == 7
        assert result.trace.num_probes == 7

    def test_reference_is_noise_adaptive(self, env):
        device, calibration = env
        angel = Angel(device, calibration, AngelConfig(probe_shots=128, seed=0))
        compiled = transpile(ghz_n4(), device, calibration)
        result = angel.select(compiled)
        for link in result.reference_sequence.links_used():
            expected = calibration.best_native_gate(link)
            assert result.reference_sequence.gates_on_link(link)[0] == expected

    def test_learned_sequence_link_uniform(self, env):
        device, calibration = env
        angel = Angel(device, calibration, AngelConfig(probe_shots=128, seed=0))
        compiled = transpile(vqe_n4(), device, calibration)
        result = angel.select(compiled)
        assert result.sequence.is_link_uniform()
        assert len(result.sequence) == compiled.num_cnot_sites

    def test_copycat_of_vqe_keeps_initial_layer(self, env):
        device, calibration = env
        angel = Angel(device, calibration, AngelConfig(probe_shots=128, seed=0))
        compiled = transpile(vqe_n4(), device, calibration)
        result = angel.select(compiled)
        # The first RY layer is retained; later RYs are Clifford-replaced.
        assert 0 < len(result.copycat.retained_non_clifford) <= 4
        assert result.copycat.replaced

    def test_learned_at_least_reference_on_copycat(self, env):
        device, calibration = env
        angel = Angel(device, calibration, AngelConfig(probe_shots=512, seed=0))
        compiled = transpile(ghz_n4(), device, calibration)
        result = angel.select(compiled)
        reference_probe = result.trace.probes[0]
        assert reference_probe.role == "reference"
        final_sr = max(
            p.success_rate
            for p in result.trace.probes
            if p.sequence.gates == result.sequence.gates
        )
        assert final_sr >= reference_probe.success_rate

    def test_program_without_cnots_rejected(self, env):
        device, calibration = env
        from repro.circuit import QuantumCircuit

        angel = Angel(device, calibration)
        compiled = transpile(
            QuantumCircuit(2).h(0).measure_all(), device, calibration
        )
        with pytest.raises(SearchError, match="no CNOT sites"):
            angel.select(compiled)

    def test_random_reference_mode(self, env):
        device, calibration = env
        angel = Angel(
            device,
            calibration,
            AngelConfig(probe_shots=128, reference="random", seed=5),
        )
        compiled = transpile(ghz_n4(), device, calibration)
        result = angel.select(compiled)
        assert result.copycats_executed == 7

    def test_random_link_order_mode(self, env):
        device, calibration = env
        angel = Angel(
            device,
            calibration,
            AngelConfig(probe_shots=128, link_order="random", seed=5),
        )
        compiled = transpile(ghz_n4(), device, calibration)
        result = angel.select(compiled)
        assert result.copycats_executed == 7


class TestEndToEnd:
    def test_compile_and_select_then_execute(self, env):
        device, calibration = env
        angel = Angel(device, calibration, AngelConfig(probe_shots=256, seed=1))
        compiled, result = angel.compile_and_select(teleport_n2())
        final = angel.nativize(compiled, result)
        assert final.name.endswith("_angel")
        counts = device.run(final, 512, seed=9)
        sr = success_rate_from_counts(compiled.ideal_distribution(), counts)
        assert 0.0 < sr <= 1.0

    def test_probing_does_not_execute_the_program(self, env):
        device, calibration = env
        angel = Angel(device, calibration, AngelConfig(probe_shots=64, seed=2))
        compiled = transpile(ghz_n4(), device, calibration)
        log_before = len(device.execution_log)
        angel.select(compiled)
        probe_names = [
            record.circuit_name
            for record in device.execution_log[log_before:]
        ]
        assert all("copycat" in name for name in probe_names)
