"""Unit tests for the batched candidate-simulation engine.

Covers the candidate-axis tensor contraction (bit-identity per slice),
the batch planner's cluster geometry, the device-level grouped batch
path (dedup, counters, equivalence), the Clifford fast path's routing
rules, and the per-candidate histogram amortization fix.
"""

import numpy as np
import pytest

from repro.compiler import transpile
from repro.core.sequence import NativeGateSequence
from repro.device.presets import (
    NOISELESS_PROFILE,
    aspen11,
    small_test_device,
)
from repro.exceptions import SimulationError
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.obs import MetricsRegistry, Tracer
from repro.programs.ghz import ghz
from repro.sim.batched import BatchedDensityMatrix, plan_batches
from repro.sim.channels import (
    Superoperator,
    depolarizing_channel,
    unitary_channel,
)
from repro.sim.circuit_compiler import circuit_fingerprint
from repro.sim.density_matrix import DensityMatrix


def _random_states(rng, count, num_qubits):
    """Random valid density-matrix tensors (mixtures of pure states)."""
    dim = 2**num_qubits
    tensors = []
    for _ in range(count):
        vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        vec /= np.linalg.norm(vec)
        rho = np.outer(vec, vec.conj())
        tensors.append(rho.reshape((2,) * (2 * num_qubits)))
    return tensors


class TestBatchedDensityMatrix:
    def test_slicewise_bit_identity_with_unbatched(self):
        """Each candidate slice after a batched superoperator matches
        the plain DensityMatrix application bitwise."""
        rng = np.random.default_rng(7)
        num_qubits = 3
        tensors = _random_states(rng, 4, num_qubits)
        stacked = BatchedDensityMatrix(num_qubits, tensors)
        theta = 0.3
        ops = [
            (Superoperator.from_kraus(depolarizing_channel(0.01)), (1,)),
            (Superoperator.from_kraus(unitary_channel(
                np.array([
                    [1, 0, 0, 0],
                    [0, 1, 0, 0],
                    [0, 0, 1, 0],
                    [0, 0, 0, np.exp(1j * theta)],
                ])
            )), (0, 2)),
        ]
        singles = []
        for tensor in tensors:
            state = DensityMatrix.from_snapshot(num_qubits, tensor)
            for superop, qubits in ops:
                state.apply_superoperator(superop, qubits)
            singles.append(state)
        for superop, qubits in ops:
            stacked.apply_superoperator(superop, qubits)
        for index, single in enumerate(singles):
            assert np.array_equal(
                stacked.tensor(index), single._tensor
            ), f"candidate {index} diverged"

    def test_count_and_tensor_copy(self):
        tensors = _random_states(np.random.default_rng(3), 2, 2)
        stacked = BatchedDensityMatrix(2, tensors)
        assert stacked.count == 2
        view = stacked.tensor(0)
        view[(0,) * 4] = 99.0
        assert stacked.tensor(0)[(0,) * 4] != 99.0

    def test_rejects_empty_and_misshapen(self):
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(2, [])
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(2, [np.zeros((2, 2), dtype=complex)])

    def test_rejects_wrong_arity_superop(self):
        tensors = _random_states(np.random.default_rng(5), 2, 2)
        stacked = BatchedDensityMatrix(2, tensors)
        with pytest.raises(SimulationError):
            stacked.apply_superoperator(
                Superoperator.from_kraus(depolarizing_channel(0.01)),
                (0, 1),
            )


class TestBatchPlanner:
    def _lowered_probe_batch(self, device, num_qubits=5):
        compiled = transpile(ghz(num_qubits), device)
        reference = NativeGateSequence.uniform(compiled.sites, "cz")
        circuits = [compiled.nativized(reference, name_suffix="_ref")]
        options = compiled.gate_options()
        for number, link in enumerate(compiled.links_used()):
            for gate in options[link]:
                if gate == "cz":
                    continue
                gates = tuple(
                    gate if site.link == link else ref
                    for site, ref in zip(compiled.sites, reference.gates)
                )
                circuits.append(
                    compiled.nativized(
                        NativeGateSequence(compiled.sites, gates),
                        name_suffix=f"_p{number}_{gate}",
                    )
                )
        cache = device.sim_cache
        lowered = []
        for circuit in circuits:
            used = device._used_qubits(circuit)
            compact, _ = device._compact_circuit(circuit, used)
            placement = tuple(used)
            lowered.append(
                cache._lower(
                    compact,
                    (placement, circuit_fingerprint(compact)),
                    device._operation_compiler_factory(used),
                    device._noise_callback_factory(used),
                    placement,
                )
            )
        return lowered

    def test_plans_cover_every_index_once(self):
        device = aspen11(seed=5)
        lowered = self._lowered_probe_batch(device)
        plans = plan_batches(lowered)
        covered = sorted(i for plan in plans for i in plan.indices)
        assert covered == list(range(len(lowered)))

    def test_candidate_pairs_cluster_with_shared_suffix(self):
        """Localized-search probes share long suffixes: the planner must
        find at least one multi-candidate cluster with a nonzero shared
        suffix, and geometry never exceeds the shortest member."""
        device = aspen11(seed=5)
        lowered = self._lowered_probe_batch(device)
        plans = plan_batches(lowered)
        stacked = [p for p in plans if len(p.indices) > 1]
        assert stacked, "no cluster stacked on a probe batch"
        for plan in plans:
            shortest = min(
                len(lowered[i].operations) for i in plan.indices
            )
            assert plan.prefix_len + plan.suffix_len <= shortest
            if len(plan.indices) == 1:
                assert plan.suffix_len == 0

    def test_singleton_input(self):
        device = aspen11(seed=5)
        lowered = self._lowered_probe_batch(device)[:1]
        plans = plan_batches(lowered)
        assert len(plans) == 1
        assert plans[0].indices == (0,)
        assert plans[0].suffix_len == 0

    def test_empty_input(self):
        assert plan_batches([]) == []


class TestGroupedBatchPath:
    def _probe_circuits(self, device, num_qubits=5):
        compiled = transpile(ghz(num_qubits), device)
        reference = NativeGateSequence.uniform(compiled.sites, "cz")
        circuits = [compiled.nativized(reference, name_suffix="_ref")]
        options = compiled.gate_options()
        for number, link in enumerate(compiled.links_used()):
            for gate in options[link]:
                if gate == "cz":
                    continue
                gates = tuple(
                    gate if site.link == link else ref
                    for site, ref in zip(compiled.sites, reference.gates)
                )
                circuits.append(
                    compiled.nativized(
                        NativeGateSequence(compiled.sites, gates),
                        name_suffix=f"_p{number}_{gate}",
                    )
                )
        return circuits

    def test_batch_bit_identical_to_sequential(self):
        dev_on = aspen11(seed=23)
        dev_off = aspen11(seed=23, batched_sim=False)
        circuits = self._probe_circuits(dev_on)
        batched = dev_on.noisy_distribution_batch(circuits)
        plain = [dev_off.noisy_distribution(c) for c in circuits]
        assert batched == plain
        stats = dev_on.sim_cache.stats()
        assert stats["batch_groups"] > 0
        assert stats["batch_candidates"] > stats["batch_groups"]

    def test_batched_off_device_never_stacks(self):
        device = aspen11(seed=23, batched_sim=False)
        circuits = self._probe_circuits(device)
        device.noisy_distribution_batch(circuits)
        stats = device.sim_cache.stats()
        assert stats["batch_groups"] == 0
        assert stats["batch_dedup_hits"] == 0

    def test_in_batch_dedup_fans_out(self):
        device = aspen11(seed=23)
        circuits = self._probe_circuits(device)
        doubled = circuits + circuits
        results = device.noisy_distribution_batch(doubled)
        assert results[: len(circuits)] == results[len(circuits):]
        stats = device.sim_cache.stats()
        assert stats["batch_dedup_hits"] >= len(circuits)

    def test_results_are_isolated_copies(self):
        device = aspen11(seed=23)
        circuits = self._probe_circuits(device)[:2]
        first = device.noisy_distribution_batch(circuits + circuits)
        first[0]["corrupted"] = 1.0
        again = device.noisy_distribution_batch(circuits)
        assert "corrupted" not in again[0]

    def test_executor_stats_carry_batch_counters(self):
        device = aspen11(seed=23)
        executor = BatchExecutor(
            LocalBackend(device), mode="parallel", max_workers=1
        )
        circuits = self._probe_circuits(device)
        jobs = [
            Job(c, 128, seed=100 + i, tag="probe")
            for i, c in enumerate(circuits + circuits)
        ]
        executor.submit_batch(jobs)
        stats = executor.stats
        assert stats.batch_groups > 0
        assert stats.batch_dedup_hits >= len(circuits)
        snapshot = stats.snapshot()
        assert snapshot["batch_groups"] == stats.batch_groups
        assert snapshot["batch_dedup_hits"] == stats.batch_dedup_hits
        assert "batched sim:" in stats.to_text()


class TestCliffordFastPath:
    def test_fires_on_noiseless_clifford_probe(self):
        device = small_test_device(
            num_qubits=4,
            seed=7,
            profile=NOISELESS_PROFILE,
            clifford_fast_path=True,
        )
        dense = small_test_device(
            num_qubits=4, seed=7, profile=NOISELESS_PROFILE
        )
        compiled = transpile(ghz(4), device)
        circuit = compiled.nativized(
            NativeGateSequence.uniform(compiled.sites, "cz")
        )
        fast = device.noisy_distribution(circuit)
        want = dense.noisy_distribution(
            transpile(ghz(4), dense).nativized(
                NativeGateSequence.uniform(compiled.sites, "cz")
            )
        )
        assert device.clifford_fast_hits > 0
        keys = set(fast) | set(want)
        for key in keys:
            assert fast.get(key, 0.0) == pytest.approx(
                want.get(key, 0.0), abs=1e-4
            )

    def test_non_clifford_candidate_falls_back(self):
        device = small_test_device(
            num_qubits=4,
            seed=7,
            profile=NOISELESS_PROFILE,
            clifford_fast_path=True,
        )
        compiled = transpile(ghz(4), device)
        circuit = compiled.nativized(
            NativeGateSequence.uniform(compiled.sites, "cphase")
        )
        device.noisy_distribution(circuit)
        assert device.clifford_fast_hits == 0
        assert device.clifford_fallbacks > 0

    def test_flag_off_never_consults_stabilizer(self):
        device = small_test_device(
            num_qubits=4, seed=7, profile=NOISELESS_PROFILE
        )
        compiled = transpile(ghz(4), device)
        circuit = compiled.nativized(
            NativeGateSequence.uniform(compiled.sites, "cz")
        )
        device.noisy_distribution(circuit)
        assert device.clifford_fast_hits == 0
        assert device.clifford_fallbacks == 0

    def test_memo_serves_repeats_and_drift_invalidates(self):
        device = small_test_device(
            num_qubits=4,
            seed=7,
            profile=NOISELESS_PROFILE,
            clifford_fast_path=True,
        )
        compiled = transpile(ghz(4), device)
        circuit = compiled.nativized(
            NativeGateSequence.uniform(compiled.sites, "cz")
        )
        first = device.noisy_distribution(circuit)
        hits_before = device.clifford_fast_hits
        second = device.noisy_distribution(circuit)
        assert second == first
        assert device.clifford_fast_hits == hits_before + 1
        assert not device._clifford_memo or True  # memo populated below
        assert len(device._clifford_memo) > 0
        device.advance_time(3600e6)
        assert len(device._clifford_memo) == 0


class TestPerCandidateHistogram:
    def test_exec_batch_wall_time_amortized_per_candidate(self):
        """Satellite fix: a grouped batch of N jobs lands N per-unit
        observations in the exec.batch wall-time histogram, not one
        batch-sized observation — percentiles stay comparable across
        engine modes."""
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("exec.batch", jobs=8, units=8):
            pass
        histogram = registry.histogram("span.exec.batch.wall_s")
        assert histogram.count == 8
        span = tracer.spans[-1]
        assert histogram.total == pytest.approx(span.wall_time_s)

    def test_span_without_units_observes_once(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("backend.job"):
            pass
        assert registry.histogram("span.backend.job.wall_s").count == 1

    def test_observe_many_matches_repeated_observe(self):
        from repro.obs.metrics import Histogram

        left = Histogram("left")
        right = Histogram("right")
        left.observe_many(0.25, 5)
        for _ in range(5):
            right.observe(0.25)
        assert left.snapshot() == right.snapshot()
        left.observe_many(1.0, 0)  # no-op
        assert left.count == 5
