"""Tests for the lookahead (SABRE-style) routing strategy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.compiler.mapping import Layout, trivial_layout
from repro.compiler.routing import route_circuit
from repro.device.topology import Topology, linear_topology
from repro.exceptions import CompilationError
from repro.sim.statevector import ideal_distribution


class TestLookaheadBasics:
    def test_unknown_strategy_rejected(self):
        topo = linear_topology(3)
        with pytest.raises(CompilationError, match="strategy"):
            route_circuit(
                QuantumCircuit(2), topo, Layout((0, 1)), strategy="quantum"
            )

    def test_adjacent_gates_untouched(self):
        topo = linear_topology(3)
        qc = QuantumCircuit(2).cnot(0, 1)
        routed = route_circuit(qc, topo, Layout((0, 1)), strategy="lookahead")
        assert routed.swap_count == 0

    def test_all_gates_land_on_links(self):
        topo = linear_topology(5)
        qc = QuantumCircuit(4).cnot(0, 3).cnot(1, 2).cnot(0, 2)
        routed = route_circuit(
            qc, topo, Layout((0, 1, 2, 3)), strategy="lookahead"
        )
        for pair in routed.circuit.two_qubit_pairs():
            if not topo.has_link(*pair):
                # swaps are on links too
                assert False, pair

    def test_disconnected_raises(self):
        topo = Topology("split", (0, 1, 2, 3), ((0, 1), (2, 3)))
        qc = QuantumCircuit(3).cnot(0, 2)
        with pytest.raises(CompilationError):
            route_circuit(qc, topo, Layout((0, 1, 2)), strategy="lookahead")


class TestLookaheadQuality:
    def test_avoids_ping_pong_on_interleaved_pattern(self):
        # The pattern that ping-pongs a greedy router: (0,2) and (1,2)
        # alternating on a line with the bad layout 0@p0, 1@p1, 2@p2.
        topo = linear_topology(3)
        qc = QuantumCircuit(3)
        for _ in range(3):
            qc.cnot(1, 2)
            qc.cnot(0, 2)
        greedy = route_circuit(qc, topo, Layout((0, 1, 2)), strategy="greedy")
        lookahead = route_circuit(
            qc, topo, Layout((0, 1, 2)), strategy="lookahead"
        )
        assert lookahead.swap_count <= greedy.swap_count

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_semantics_preserved(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(4, 10, rng)
        topo = linear_topology(6)
        layout = trivial_layout(qc, topo)
        routed = route_circuit(qc, topo, layout, strategy="lookahead")
        compact, _ = routed.circuit.compacted()
        ideal = ideal_distribution(qc)
        actual = ideal_distribution(compact)
        for key in set(ideal) | set(actual):
            assert ideal.get(key, 0.0) == pytest.approx(
                actual.get(key, 0.0), abs=1e-9
            )

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_swap_counts_comparable(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(5, 15, rng)
        topo = linear_topology(6)
        layout = trivial_layout(qc, topo)
        greedy = route_circuit(qc, topo, layout, strategy="greedy")
        lookahead = route_circuit(qc, topo, layout, strategy="lookahead")
        # Lookahead should not be catastrophically worse.
        assert lookahead.swap_count <= 2 * greedy.swap_count + 2
