"""Tests for moment and DAG views of circuits."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag, circuit_moments, first_layer_indices


class TestMoments:
    def test_parallel_gates_share_moment(self):
        qc = QuantumCircuit(2).h(0).h(1)
        moments = circuit_moments(qc)
        assert len(moments) == 1
        assert len(moments[0].items) == 2

    def test_dependencies_serialize(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).x(1)
        moments = circuit_moments(qc)
        assert [len(m.items) for m in moments] == [1, 1, 1]

    def test_moment_qubits(self):
        qc = QuantumCircuit(3).h(0).cnot(1, 2)
        assert circuit_moments(qc)[0].qubits() == (0, 1, 2)

    def test_barrier_aligns(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.x(1)
        moments = circuit_moments(qc)
        assert len(moments) == 2
        assert moments[1].gates[0].name == "x"

    def test_measure_participates(self):
        qc = QuantumCircuit(1).h(0).measure(0)
        assert len(circuit_moments(qc)) == 2

    def test_empty_circuit(self):
        assert circuit_moments(QuantumCircuit(2)) == []


class TestFirstLayer:
    def test_initial_layer_indices(self):
        qc = QuantumCircuit(3).ry(0.3, 0).ry(0.3, 1).cnot(0, 1).ry(0.3, 2)
        # Indices 0, 1 (the two first-moment rotations) and 3 (ry on an
        # untouched qubit also lands in moment 0).
        assert first_layer_indices(qc) == [0, 1, 3]

    def test_empty(self):
        assert first_layer_indices(QuantumCircuit(1)) == []


class TestDag:
    def test_linear_chain(self):
        qc = QuantumCircuit(1).h(0).x(0).z(0)
        dag = CircuitDag.from_circuit(qc)
        assert dag.successors[0] == [1]
        assert dag.predecessors[2] == [1]
        assert dag.topological_order() == [0, 1, 2]

    def test_two_qubit_join(self):
        qc = QuantumCircuit(2).h(0).h(1).cnot(0, 1)
        dag = CircuitDag.from_circuit(qc)
        assert sorted(dag.predecessors[2]) == [0, 1]

    def test_independent_wires(self):
        qc = QuantumCircuit(2).h(0).x(1)
        dag = CircuitDag.from_circuit(qc)
        assert dag.successors[0] == []
        assert dag.successors[1] == []

    def test_barrier_joins_everything(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.x(1)
        dag = CircuitDag.from_circuit(qc)
        # x(1) depends on the barrier which depends on h(0).
        assert dag.predecessors[2] == [1]
        assert dag.predecessors[1] == [0]

    def test_longest_path(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).x(1).z(0)
        dag = CircuitDag.from_circuit(qc)
        assert dag.longest_path_length() == 3

    def test_topological_order_valid(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2).x(0).cnot(0, 1)
        dag = CircuitDag.from_circuit(qc)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node, preds in dag.predecessors.items():
            for pred in preds:
                assert position[pred] < position[node]
