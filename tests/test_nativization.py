"""Tests for gate nativization and CNOT site extraction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.circuit.gates import Gate
from repro.compiler.nativization import (
    extract_cnot_sites,
    nativize,
    single_qubit_native,
)
from repro.device.native_gates import RIGETTI_NATIVE_GATES
from repro.exceptions import CompilationError
from repro.linalg import unitaries_equal_up_to_phase
from repro.sim.statevector import ideal_distribution


class TestSiteExtraction:
    def test_cnot_sites_in_order(self):
        qc = QuantumCircuit(3).cnot(0, 1).cnot(2, 1).cnot(0, 1)
        sites = extract_cnot_sites(qc)
        assert [s.index for s in sites] == [0, 1, 2]
        assert sites[0].link == (0, 1)
        assert sites[1].link == (1, 2)
        assert all(s.origin == "program" for s in sites)

    def test_swap_expands_to_three_sites(self):
        qc = QuantumCircuit(2).swap(0, 1)
        sites = extract_cnot_sites(qc)
        assert len(sites) == 3
        assert all(s.origin == "swap" for s in sites)
        assert all(s.link == (0, 1) for s in sites)
        # Alternating direction.
        assert (sites[0].control, sites[1].control, sites[2].control) == (0, 1, 0)

    def test_other_gates_ignored(self):
        qc = QuantumCircuit(2).h(0).cz(0, 1).measure_all()
        assert extract_cnot_sites(qc) == []


class TestSingleQubitNativization:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("x", ()),
            ("y", ()),
            ("z", ()),
            ("h", ()),
            ("s", ()),
            ("sdg", ()),
            ("t", ()),
            ("tdg", ()),
            ("rz", (0.37,)),
            ("rx", (math.pi / 2,)),
            ("rx", (1.234,)),
            ("ry", (-0.8,)),
            ("phase", (2.2,)),
            ("u3", (0.5, 1.2, -0.7)),
        ],
    )
    def test_exact_and_native(self, name, params):
        gate = Gate(name, (0,), params)
        rewritten = single_qubit_native(gate)
        qc = QuantumCircuit(1)
        for g in rewritten:
            qc.append(g)
            assert RIGETTI_NATIVE_GATES.is_native(g), g
        assert unitaries_equal_up_to_phase(qc.unitary(), gate.matrix())

    def test_identity_drops(self):
        assert single_qubit_native(Gate("id", (0,))) == []

    def test_zero_rx_drops(self):
        assert single_qubit_native(Gate("rx", (0,), (0.0,))) == []


class TestNativize:
    def _assign_all(self, circuit, gate_name):
        sites = extract_cnot_sites(circuit)
        return {s.index: gate_name for s in sites}

    @pytest.mark.parametrize("native", ["xy", "cz", "cphase"])
    def test_ghz_distribution_preserved(self, native):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2).measure_all()
        native_qc = nativize(qc, self._assign_all(qc, native))
        for gate in native_qc:
            assert RIGETTI_NATIVE_GATES.is_native(gate), gate
        ideal = ideal_distribution(qc)
        nativized = ideal_distribution(native_qc)
        for key in set(ideal) | set(nativized):
            assert ideal.get(key, 0.0) == pytest.approx(
                nativized.get(key, 0.0), abs=1e-9
            )

    def test_swap_nativized_per_site(self):
        qc = QuantumCircuit(2).x(0).swap(0, 1).measure_all()
        site_gates = {0: "cz", 1: "xy", 2: "cphase"}
        native_qc = nativize(qc, site_gates)
        dist = ideal_distribution(native_qc)
        assert dist["01"] == pytest.approx(1.0, abs=1e-9)

    def test_mixed_assignment(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2).measure_all()
        native_qc = nativize(qc, {0: "xy", 1: "cphase"})
        names = {g.name for g in native_qc.gates()}
        assert "xy" in names and "cphase" in names

    def test_missing_site_assignment_raises(self):
        qc = QuantumCircuit(2).cnot(0, 1)
        with pytest.raises(CompilationError, match="no native gate assigned"):
            nativize(qc, {})

    def test_iswap_passthrough_as_xy(self):
        qc = QuantumCircuit(2).iswap(0, 1).measure_all()
        native_qc = nativize(qc, {})
        assert native_qc.count_ops().get("xy", 0) == 1

    def test_native_two_qubit_gates_pass_through(self):
        qc = QuantumCircuit(2).cz(0, 1).measure_all()
        native_qc = nativize(qc, {})
        assert native_qc.count_ops().get("cz") == 1

    def test_name_suffix(self):
        qc = QuantumCircuit(2, name="prog").cnot(0, 1)
        native_qc = nativize(qc, {0: "cz"}, name_suffix="_v1")
        assert native_qc.name == "prog_v1"

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_random_circuit_nativization_preserves_semantics(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(3, 8, rng)
        sites = extract_cnot_sites(qc)
        gates = ["xy", "cz", "cphase"]
        assignment = {
            s.index: gates[int(rng.integers(3))] for s in sites
        }
        native_qc = nativize(qc, assignment)
        ideal = ideal_distribution(qc)
        nativized = ideal_distribution(native_qc)
        for key in set(ideal) | set(nativized):
            assert ideal.get(key, 0.0) == pytest.approx(
                nativized.get(key, 0.0), abs=1e-8
            )
