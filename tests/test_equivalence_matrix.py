"""Cross-product bit-equivalence of execution configurations.

One parametrized matrix pins the repo's central execution contract: for
snapshot (parallel-discipline) batches with per-job seeds, the counts a
probe batch produces are **bit-identical** across

  {simulation cache on, off} x {pool 1 worker, 4 workers}
                             x {local backend, zero-fault remote}.

All eight combinations run the same seeded GHZ/QAOA probe batches on the
same chip-day and must produce byte-for-byte equal counts, including
across a mid-batch ``advance_time`` drift boundary applied identically
to every combination. The 1-worker in-process path is the reference;
everything else must match it exactly — not statistically.
"""

import multiprocessing

import pytest

from repro.compiler import transpile
from repro.compiler.nativization import nativize
from repro.core.sequence import NativeGateSequence
from repro.device.presets import aspen11
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.metrics import success_rate_from_counts
from repro.programs.ghz import ghz
from repro.programs.qaoa import qaoa_n5
from repro.service import (
    CloudQPUService,
    RemoteBackend,
    fault_profile,
)

_HOUR_US = 3_600e6


def _noop():  # pragma: no cover - runs in the probe child process
    pass


def _pools_available() -> bool:
    """Whether this environment can spawn worker processes at all."""
    try:
        process = multiprocessing.get_context().Process(target=_noop)
        process.start()
        process.join(5.0)
        return process.exitcode == 0
    except (OSError, ValueError):
        return False


_POOLS = _pools_available()


def _device(
    sim_cache: bool, batched: bool = True, clifford: bool = False
):
    return aspen11(
        seed=17,
        sim_cache=sim_cache,
        batched_sim=batched,
        clifford_fast_path=clifford,
    )


def _probe_jobs(device):
    """Seeded GHZ-4 and QAOA-5 probe batches (the search's workload
    shape: per-gate candidates sharing long circuit prefixes)."""
    jobs = []
    seed = 9000
    for program in (ghz(4), qaoa_n5()):
        compiled = transpile(program, device)
        for gate in ("cz", "xy", "cphase"):
            sequence = NativeGateSequence.uniform(compiled.sites, gate)
            circuit = nativize(
                compiled.scheduled,
                sequence.as_site_map(),
                device.native_gates,
                name_suffix=f"_{gate}",
            )
            jobs.append(
                Job(circuit, 256, seed=seed, tag="probe", job_id=circuit.name)
            )
            seed += 1
    return jobs


def _run_combo(
    sim_cache: bool,
    workers: int,
    backend_kind: str,
    batched: bool = True,
    clifford: bool = False,
):
    """Counts from the two probe batches under one configuration, with
    an identical mid-batch drift boundary between them."""
    device = _device(sim_cache, batched=batched, clifford=clifford)
    if backend_kind == "local":
        backend = LocalBackend(device)
    else:
        service = CloudQPUService(device, fault_profile("none"), seed=0)
        backend = RemoteBackend(service, seed=0)
    executor = BatchExecutor(
        backend, mode="parallel", max_workers=workers
    )
    jobs = _probe_jobs(device)
    half = len(jobs) // 2
    try:
        first = executor.submit_batch(jobs[:half])
        # Drift boundary between batches: every combination crosses the
        # same simulated-time epoch at the same point in the workload.
        device.advance_time(2.0 * _HOUR_US)
        second = executor.submit_batch(jobs[half:])
        if clifford and workers == 1 and backend_kind == "local":
            # Under the default noise profile the coherent-error budget
            # always exceeds the fast path's exactness threshold, so
            # every probe must fall back to the dense engine — that is
            # what makes this combination bit-identical, not merely
            # statistically close.
            assert device.clifford_fast_hits == 0
            assert device.clifford_fallbacks > 0
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()
        service_close = getattr(
            getattr(backend, "service", None), "close", None
        )
        if service_close is not None:
            service_close()
    return [
        (result.job_id, dict(sorted(result.counts.items())))
        for result in first + second
    ]


_MATRIX = [
    pytest.param(
        sim_cache,
        workers,
        backend_kind,
        id=f"cache_{'on' if sim_cache else 'off'}-"
        f"workers_{workers}-{backend_kind}",
        marks=(
            []
            if workers == 1 or _POOLS
            else [
                pytest.mark.skip(
                    reason="process pools unavailable in this environment"
                )
            ]
        ),
    )
    for sim_cache in (True, False)
    for workers in (1, 4)
    for backend_kind in ("local", "remote")
]


_ENGINE_MATRIX = [
    pytest.param(
        batched,
        clifford,
        workers,
        sim_cache,
        id=f"batched_{'on' if batched else 'off'}-"
        f"clifford_{'on' if clifford else 'off'}-"
        f"workers_{workers}-cache_{'on' if sim_cache else 'off'}",
        marks=(
            []
            if workers == 1 or _POOLS
            else [
                pytest.mark.skip(
                    reason="process pools unavailable in this environment"
                )
            ]
        ),
    )
    for batched in (True, False)
    for clifford in (True, False)
    for workers in (1, 4)
    for sim_cache in (True, False)
]


@pytest.fixture(scope="module")
def reference_counts():
    """The 1-worker in-process, cache-on, local-backend baseline."""
    return _run_combo(sim_cache=True, workers=1, backend_kind="local")


@pytest.mark.parametrize("sim_cache,workers,backend_kind", _MATRIX)
def test_counts_bit_identical_across_matrix(
    sim_cache, workers, backend_kind, reference_counts
):
    counts = _run_combo(sim_cache, workers, backend_kind)
    assert len(counts) == len(reference_counts)
    for (job_id, got), (ref_id, want) in zip(counts, reference_counts):
        assert job_id == ref_id
        assert got == want, (
            f"{job_id}: counts diverged under sim_cache={sim_cache}, "
            f"workers={workers}, backend={backend_kind}"
        )


@pytest.mark.parametrize(
    "batched,clifford,workers,sim_cache", _ENGINE_MATRIX
)
def test_counts_bit_identical_across_engine_matrix(
    batched, clifford, workers, sim_cache, reference_counts
):
    """{batched on/off} x {clifford on/off} x {1/4 workers} x
    {sim cache on/off}: same counts, including the mid-batch drift
    boundary. The clifford axis stays bit-identical because the default
    profile's coherent errors force the dense fallback on every probe
    (asserted inside ``_run_combo``)."""
    counts = _run_combo(
        sim_cache,
        workers,
        "local",
        batched=batched,
        clifford=clifford,
    )
    assert len(counts) == len(reference_counts)
    for (job_id, got), (ref_id, want) in zip(counts, reference_counts):
        assert job_id == ref_id
        assert got == want, (
            f"{job_id}: counts diverged under batched={batched}, "
            f"clifford={clifford}, workers={workers}, "
            f"sim_cache={sim_cache}"
        )


def test_matrix_reference_is_deterministic(reference_counts):
    """Rerunning the reference combination reproduces itself exactly
    (guards the fixture against hidden global state)."""
    again = _run_combo(sim_cache=True, workers=1, backend_kind="local")
    assert again == reference_counts


# ------------------------------------------------- optimization axis


def _final_runs(optimization_level, explicit=True):
    """(name, ideal, counts) per program at one optimization level."""
    device = _device(sim_cache=True)
    backend = LocalBackend(device)
    executor = BatchExecutor(backend, mode="parallel", max_workers=1)
    runs = []
    seed = 9500
    for program in (ghz(4), qaoa_n5()):
        if explicit:
            compiled = transpile(
                program, device, optimization_level=optimization_level
            )
        else:
            compiled = transpile(program, device)
        sequence = NativeGateSequence.uniform(compiled.sites, "cz")
        native = compiled.nativized(sequence)
        result = executor.submit(
            Job(native, 2048, seed=seed, tag="final")
        )
        runs.append(
            (program.name, compiled.ideal_distribution(), result.counts)
        )
        seed += 1
    return runs


def _tv_distance(left_counts, right_counts):
    left_total = sum(left_counts.values())
    right_total = sum(right_counts.values())
    keys = set(left_counts) | set(right_counts)
    return 0.5 * sum(
        abs(
            left_counts.get(key, 0) / left_total
            - right_counts.get(key, 0) / right_total
        )
        for key in keys
    )


def test_opt_level_zero_counts_bit_identical():
    """``optimization_level=0`` IS today's pipeline: byte-for-byte the
    same final counts as a transpile call that never mentions it."""
    explicit = _final_runs(0, explicit=True)
    implicit = _final_runs(0, explicit=False)
    for (name, _, got), (ref_name, _, want) in zip(explicit, implicit):
        assert name == ref_name
        assert got == want


def _load_equivalence_imports():
    from repro.fleet import FleetSpec
    from repro.loadgen import (
        ArrivalSpec,
        LoadGenerator,
        TenantLoad,
        WorkloadSpec,
    )
    from repro.service import RequestSpec, run_standalone

    return (
        FleetSpec,
        ArrivalSpec,
        LoadGenerator,
        TenantLoad,
        WorkloadSpec,
        RequestSpec,
        run_standalone,
    )


#: Memoized standalone references shared across load-axis combinations
#: (the same spec appears under several tenant/fleet shapes).
_LOAD_REFERENCES = {}


_LOAD_MATRIX = [
    pytest.param(
        num_tenants,
        backend_kind,
        fleet,
        id=f"tenants_{num_tenants}-{backend_kind}-"
        + (f"fleet_{fleet}" if fleet else "no_fleet"),
    )
    for num_tenants in (1, 4)
    for backend_kind in ("local", "remote")
    for fleet in (0, 2)
]


@pytest.mark.parametrize("num_tenants,backend_kind,fleet", _LOAD_MATRIX)
def test_load_driven_outcomes_bit_identical(
    num_tenants, backend_kind, fleet
):
    """The load-driven axis of the service equivalence contract:
    {1, 4 tenants} x {local, zero-fault remote} x {no fleet, 2-replica
    fleet}. Every ``CompileOutcome`` a :class:`LoadGenerator` run
    produces must be bit-identical to ``run_standalone`` on the same
    spec — replica-adjusted first in fleet mode, where the reference
    for a request routed to replica ``i`` is the standalone run of
    ``fleet.replicas[i].adjust(spec)``."""
    (
        FleetSpec,
        ArrivalSpec,
        LoadGenerator,
        TenantLoad,
        WorkloadSpec,
        RequestSpec,
        run_standalone,
    ) = _load_equivalence_imports()

    workload = WorkloadSpec(
        name=f"equiv-{num_tenants}t-{backend_kind}-f{fleet}",
        seed=21,
        base=RequestSpec(
            program="GHZ_n4",
            shots=32,
            probe_shots=8,
            drift_hours=0.5,
            backend=backend_kind,
            fault_profile="none",
        ),
        workers=2,
        fleet=fleet,
        tenants=tuple(
            TenantLoad(
                name=f"tenant-{index}",
                arrival=ArrivalSpec(
                    kind="burst", bursts=1, burst_size=2, spacing_s=0.0
                ),
                programs=(
                    ("GHZ_n4",) if index % 2 == 0 else ("QAOA_n5",)
                ),
            )
            for index in range(num_tenants)
        ),
    )
    report = LoadGenerator(workload).run()
    assert report.failed == 0
    assert report.rejected == 0
    assert len(report.completed) == workload.total_requests

    fleet_spec = FleetSpec.create(fleet) if fleet else None
    for outcome in report.completed:
        spec = outcome.spec
        if fleet_spec is not None:
            assert outcome.fleet_replica is not None
            spec = fleet_spec.replicas[outcome.fleet_replica].adjust(
                spec
            )
        else:
            assert outcome.fleet_replica is None
        if spec not in _LOAD_REFERENCES:
            _LOAD_REFERENCES[spec] = run_standalone(spec)
        reference = _LOAD_REFERENCES[spec]
        assert outcome.result.sequence == reference.result.sequence
        assert outcome.result.trace == reference.result.trace
        assert outcome.final_counts == reference.final_counts
        assert outcome.device_time_us == reference.device_time_us


def test_opt_level_two_tv_bounded_and_fidelity_holds():
    """Level 2 may reshape the executable (native cleanup shortens
    probes and finals) but must stay close in distribution and not
    degrade success rate beyond sampling tolerance."""
    base = _final_runs(0)
    opt = _final_runs(2)
    for (name, ideal, counts0), (_, _, counts2) in zip(base, opt):
        tv = _tv_distance(counts0, counts2)
        assert tv <= 0.15, f"{name}: level-2 TV {tv:.3f} out of budget"
        sr0 = success_rate_from_counts(ideal, counts0)
        sr2 = success_rate_from_counts(ideal, counts2)
        assert sr2 >= sr0 - 0.05, (
            f"{name}: level-2 success rate {sr2:.3f} fell below "
            f"level-0 {sr0:.3f} beyond tolerance"
        )
