"""Tests for the density-matrix simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.exceptions import SimulationError
from repro.sim.channels import (
    ReadoutError,
    amplitude_damping_channel,
    depolarizing_channel,
    two_qubit_depolarizing_channel,
)
from repro.sim.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.sim.statevector import ideal_distribution


class TestPureEvolution:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_noiseless_matches_statevector(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(3, 12, rng)
        dm_dist = DensityMatrixSimulator().distribution(qc)
        sv_dist = ideal_distribution(qc)
        keys = set(dm_dist) | set(sv_dist)
        for key in keys:
            assert dm_dist.get(key, 0.0) == pytest.approx(
                sv_dist.get(key, 0.0), abs=1e-9
            )

    def test_trace_preserved(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        state = DensityMatrixSimulator().run(qc)
        assert state.trace() == pytest.approx(1.0)

    def test_purity_of_pure_state(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        assert DensityMatrixSimulator().run(qc).purity() == pytest.approx(1.0)

    def test_distant_qubits_gate(self):
        qc = QuantumCircuit(3).x(0).cnot(0, 2)
        dist = DensityMatrixSimulator().distribution(qc)
        assert dist["101"] == pytest.approx(1.0)


class TestNoisyEvolution:
    def test_depolarizing_reduces_purity(self):
        def noise(gate):
            return [(depolarizing_channel(0.2), gate.qubits)]

        qc = QuantumCircuit(1).x(0)
        state = DensityMatrixSimulator(noise).run(qc)
        assert state.purity() < 1.0
        assert state.trace() == pytest.approx(1.0)

    def test_two_qubit_noise_on_two_qubit_gates_only(self):
        def noise(gate):
            if gate.is_two_qubit:
                return [(two_qubit_depolarizing_channel(0.3), gate.qubits)]
            return []

        qc = QuantumCircuit(2).x(0).cnot(0, 1)
        dist = DensityMatrixSimulator(noise).distribution(qc)
        # Ideal output is 11; depolarizing spreads mass to other outcomes.
        assert dist["11"] > 0.5
        assert sum(dist.values()) == pytest.approx(1.0)
        assert len(dist) > 1

    def test_amplitude_damping_biases_to_zero(self):
        def noise(gate):
            return [(amplitude_damping_channel(0.5), gate.qubits)]

        qc = QuantumCircuit(1).x(0)
        dist = DensityMatrixSimulator(noise).distribution(qc)
        assert dist["0"] == pytest.approx(0.5)
        assert dist["1"] == pytest.approx(0.5)

    def test_channel_arity_mismatch_rejected(self):
        state = DensityMatrix(2)
        with pytest.raises(SimulationError):
            state.apply_channel(depolarizing_channel(0.1), (0, 1))


class TestReadout:
    def test_readout_confusion_applied(self):
        qc = QuantumCircuit(1).x(0).measure(0)
        errors = [ReadoutError(p0_given_1=0.2, p1_given_0=0.0)]
        dist = DensityMatrixSimulator().distribution(qc, readout_errors=errors)
        assert dist["0"] == pytest.approx(0.2)
        assert dist["1"] == pytest.approx(0.8)

    def test_readout_only_on_listed_qubits(self):
        qc = QuantumCircuit(2).x(0).measure_all()
        errors = [None, ReadoutError(0.0, 0.5)]
        dist = DensityMatrixSimulator().distribution(qc, readout_errors=errors)
        assert dist["10"] == pytest.approx(0.5)
        assert dist["11"] == pytest.approx(0.5)

    def test_sample_matches_distribution(self):
        qc = QuantumCircuit(1).h(0).measure(0)
        counts = DensityMatrixSimulator().sample(
            qc, 2000, np.random.default_rng(7)
        )
        assert sum(counts.values()) == 2000
        assert abs(counts.get("0", 0) - 1000) < 150


class TestLimits:
    def test_width_limit(self):
        with pytest.raises(SimulationError):
            DensityMatrix(11)

    def test_non_unitary_gate_rejected(self):
        from repro.circuit.gates import Gate

        state = DensityMatrix(1)
        with pytest.raises(SimulationError):
            state.apply_gate(Gate("measure", (0,)))
