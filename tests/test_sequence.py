"""Tests for NativeGateSequence and sequence enumeration."""

import pytest

from repro.compiler.nativization import CnotSite
from repro.core.sequence import NativeGateSequence, enumerate_sequences
from repro.exceptions import SearchError


def _sites():
    """Four sites on three links; link (0,1) used twice (as in Fig. 14)."""
    return (
        CnotSite(0, 0, 1),
        CnotSite(1, 1, 2),
        CnotSite(2, 2, 3),
        CnotSite(3, 0, 1),
    )


OPTIONS = {
    (0, 1): ("xy", "cz", "cphase"),
    (1, 2): ("xy", "cz", "cphase"),
    (2, 3): ("xy", "cz", "cphase"),
}


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(SearchError):
            NativeGateSequence(_sites(), ("cz",))

    def test_unknown_gate_rejected(self):
        with pytest.raises(SearchError):
            NativeGateSequence(_sites(), ("cz", "cz", "cz", "cr"))

    def test_uniform(self):
        seq = NativeGateSequence.uniform(_sites(), "cz")
        assert seq.gates == ("cz", "cz", "cz", "cz")

    def test_from_link_gates(self):
        seq = NativeGateSequence.from_link_gates(
            _sites(), {(0, 1): "xy", (1, 2): "cz", (2, 3): "cphase"}
        )
        assert seq.gates == ("xy", "cz", "cphase", "xy")

    def test_from_link_gates_missing_link(self):
        with pytest.raises(SearchError):
            NativeGateSequence.from_link_gates(_sites(), {(0, 1): "xy"})


class TestQueries:
    def test_links_used_program_order(self):
        seq = NativeGateSequence.uniform(_sites(), "cz")
        assert seq.links_used() == [(0, 1), (1, 2), (2, 3)]

    def test_gates_on_link(self):
        seq = NativeGateSequence(_sites(), ("xy", "cz", "cz", "xy"))
        assert seq.gates_on_link((0, 1)) == ["xy", "xy"]

    def test_link_uniform_detection(self):
        uniform = NativeGateSequence(_sites(), ("xy", "cz", "cz", "xy"))
        assert uniform.is_link_uniform()
        mixed = NativeGateSequence(_sites(), ("xy", "cz", "cz", "cz"))
        assert not mixed.is_link_uniform()

    def test_label(self):
        seq = NativeGateSequence.uniform(_sites()[:2], "cz")
        assert seq.label() == "[CZ, CZ]"


class TestReplacement:
    def test_mass_replacement_hits_all_sites_on_link(self):
        seq = NativeGateSequence.uniform(_sites(), "cz")
        replaced = seq.with_link_gate((0, 1), "xy")
        assert replaced.gates == ("xy", "cz", "cz", "xy")
        # Original untouched (immutability).
        assert seq.gates == ("cz", "cz", "cz", "cz")

    def test_mass_replacement_unknown_link(self):
        seq = NativeGateSequence.uniform(_sites(), "cz")
        with pytest.raises(SearchError):
            seq.with_link_gate((5, 6), "xy")

    def test_site_replacement(self):
        seq = NativeGateSequence.uniform(_sites(), "cz")
        replaced = seq.with_site_gate(2, "cphase")
        assert replaced.gates == ("cz", "cz", "cphase", "cz")

    def test_site_replacement_out_of_range(self):
        seq = NativeGateSequence.uniform(_sites(), "cz")
        with pytest.raises(SearchError):
            seq.with_site_gate(9, "cz")

    def test_as_site_map(self):
        seq = NativeGateSequence(_sites(), ("xy", "cz", "cphase", "xy"))
        assert seq.as_site_map() == {0: "xy", 1: "cz", 2: "cphase", 3: "xy"}


class TestEnumeration:
    def test_site_granularity_count(self):
        # 4 sites x 3 gates each = 81 (the paper's 3^N).
        sequences = list(enumerate_sequences(_sites(), OPTIONS, "site"))
        assert len(sequences) == 81
        assert len({s.gates for s in sequences}) == 81

    def test_link_granularity_count(self):
        # 3 links x 3 gates = 27 (the toff_n3 reduction).
        sequences = list(enumerate_sequences(_sites(), OPTIONS, "link"))
        assert len(sequences) == 27
        assert all(s.is_link_uniform() for s in sequences)

    def test_restricted_options(self):
        options = dict(OPTIONS)
        options[(1, 2)] = ("cz",)
        sequences = list(enumerate_sequences(_sites(), options, "link"))
        assert len(sequences) == 9

    def test_unknown_granularity(self):
        with pytest.raises(SearchError):
            list(enumerate_sequences(_sites(), OPTIONS, "global"))

    def test_empty_options_rejected(self):
        options = dict(OPTIONS)
        options[(1, 2)] = ()
        with pytest.raises(SearchError):
            list(enumerate_sequences(_sites(), options))
