"""Tests for success-rate and correlation metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.metrics import (
    geometric_mean,
    hellinger_fidelity,
    relative_success_rates,
    spearman_correlation,
    success_rate,
    success_rate_from_counts,
    total_variation_distance,
)


def _random_distribution(rng, width=2):
    probs = rng.dirichlet(np.ones(2**width))
    return {format(i, f"0{width}b"): float(p) for i, p in enumerate(probs)}


class TestTVD:
    def test_identical_distributions(self):
        p = {"00": 0.5, "11": 0.5}
        assert total_variation_distance(p, dict(p)) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        assert total_variation_distance({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)

    def test_known_value(self):
        p = {"0": 0.8, "1": 0.2}
        q = {"0": 0.5, "1": 0.5}
        assert total_variation_distance(p, q) == pytest.approx(0.3)

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        p, q = _random_distribution(rng), _random_distribution(rng)
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_bounded_and_triangle(self, seed):
        rng = np.random.default_rng(seed)
        p, q, r = (_random_distribution(rng) for _ in range(3))
        d_pq = total_variation_distance(p, q)
        d_qr = total_variation_distance(q, r)
        d_pr = total_variation_distance(p, r)
        assert 0.0 <= d_pq <= 1.0
        assert d_pr <= d_pq + d_qr + 1e-9

    def test_unnormalized_rejected(self):
        with pytest.raises(ReproError):
            total_variation_distance({"0": 0.7}, {"0": 1.0})

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            total_variation_distance({"0": 1.2, "1": -0.2}, {"0": 1.0})


class TestSuccessRate:
    def test_perfect_execution(self):
        p = {"11": 1.0}
        assert success_rate(p, p) == pytest.approx(1.0)

    def test_complement_of_tvd(self):
        p = {"0": 0.5, "1": 0.5}
        q = {"0": 1.0}
        assert success_rate(p, q) == pytest.approx(0.5)

    def test_from_counts(self):
        p = {"0": 1.0}
        assert success_rate_from_counts(p, {"0": 90, "1": 10}) == pytest.approx(0.9)

    def test_from_empty_counts_rejected(self):
        with pytest.raises(ReproError):
            success_rate_from_counts({"0": 1.0}, {})

    def test_hellinger_bounds(self):
        p = {"0": 0.5, "1": 0.5}
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)
        assert hellinger_fidelity({"0": 1.0}, {"1": 1.0}) == pytest.approx(0.0)


class TestSpearman:
    def test_perfect_monotone(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [10.0, 20.0, 30.0, 40.0]
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_perfect_antitone(self):
        x = [1.0, 2.0, 3.0]
        y = [5.0, 4.0, 3.0]
        assert spearman_correlation(x, y) == pytest.approx(-1.0)

    def test_monotone_nonlinear_still_one(self):
        x = [0.1, 0.5, 0.9, 2.0]
        y = [math.exp(v) for v in x]
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_ties_average_ranks(self):
        # x has a tie; correlation should still be defined and high.
        rho = spearman_correlation([1.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert 0.5 < rho < 1.0

    def test_constant_input_returns_zero(self):
        assert spearman_correlation([1.0, 1.0], [0.0, 5.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            spearman_correlation([1.0], [1.0, 2.0])

    def test_too_short(self):
        with pytest.raises(ReproError):
            spearman_correlation([1.0], [2.0])

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_matches_scipy(self, seed):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(seed)
        x = rng.normal(size=12)
        y = rng.normal(size=12)
        ours = spearman_correlation(list(x), list(y))
        theirs = spearmanr(x, y).statistic
        assert ours == pytest.approx(float(theirs), abs=1e-9)


class TestAggregation:
    def test_relative_success_rates(self):
        rel = relative_success_rates(0.5, {"angel": 0.7, "best": 0.8})
        assert rel["angel"] == pytest.approx(1.4)
        assert rel["best"] == pytest.approx(1.6)

    def test_relative_rejects_zero_baseline(self):
        with pytest.raises(ReproError):
            relative_success_rates(0.0, {"angel": 0.7})

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ReproError):
            geometric_mean([])
