"""Tests for the multi-pass extension of the localized search."""

import pytest

from repro.compiler.nativization import CnotSite
from repro.core.search import localized_search
from repro.core.sequence import NativeGateSequence
from repro.exceptions import SearchError


def _sites():
    return (CnotSite(0, 0, 1), CnotSite(1, 1, 2))


OPTIONS = {
    (0, 1): ("xy", "cz", "cphase"),
    (1, 2): ("xy", "cz", "cphase"),
}


class TestMultiPass:
    def test_invalid_pass_count(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        with pytest.raises(SearchError):
            localized_search(lambda s: 0.0, initial, OPTIONS, max_passes=0)

    def test_single_pass_default_budget(self):
        initial = NativeGateSequence.uniform(_sites(), "cz")
        _, trace = localized_search(lambda s: 0.0, initial, OPTIONS)
        assert trace.num_probes == 5  # 1 + 2*2

    def test_quiet_pass_terminates_early(self):
        # Constant objective: no updates, so pass 2+ never runs.
        initial = NativeGateSequence.uniform(_sites(), "cz")
        _, trace = localized_search(
            lambda s: 0.5, initial, OPTIONS, max_passes=5
        )
        assert trace.num_probes == 5

    def test_second_pass_escapes_first_pass_trap(self):
        # Interaction objective: the optimum ("xy" on both links) is only
        # reachable after link (1,2) flips — a single program-order pass
        # misses the (0,1) flip, a second pass finds it.
        def probe(sequence):
            a = sequence.gates_on_link((0, 1))[0]
            b = sequence.gates_on_link((1, 2))[0]
            if a == "xy" and b == "xy":
                return 1.0
            if b == "xy":
                return 0.6
            if a == "cz" and b == "cz":
                return 0.5
            return 0.1

        initial = NativeGateSequence.uniform(_sites(), "cz")
        one_pass, trace1 = localized_search(
            probe, initial, OPTIONS, max_passes=1
        )
        two_pass, trace2 = localized_search(
            probe, initial, OPTIONS, max_passes=2
        )
        assert one_pass.gates == ("cz", "xy")
        assert two_pass.gates == ("xy", "xy")
        assert trace2.num_probes > trace1.num_probes

    def test_passes_accumulate_probe_records(self):
        calls = []

        def probe(sequence):
            calls.append(sequence.gates)
            # Always slightly better to flip something: forces updates.
            return len(calls) * 0.01

        initial = NativeGateSequence.uniform(_sites(), "cz")
        _, trace = localized_search(probe, initial, OPTIONS, max_passes=3)
        # 1 reference + 3 passes x 4 candidates.
        assert trace.num_probes == 1 + 3 * 4
