"""Cloud-QPU service emulation: faults, windows, and the resilient client."""

import numpy as np
import pytest

from repro.compiler import transpile
from repro.compiler.nativization import nativize
from repro.core.sequence import NativeGateSequence
from repro.device import small_test_device
from repro.exceptions import ExecutionError
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.programs.ghz import ghz
from repro.service import (
    FAULT_PROFILES,
    CloudQPUService,
    FaultProfile,
    JobFailedError,
    JobRejectedError,
    RateLimitError,
    RemoteBackend,
    RetryPolicy,
    ServiceUnavailableError,
    ZERO_FAULTS,
    fault_profile,
)
from repro.service.errors import TransientServiceError


def _device(seed=31, n=5):
    return small_test_device(n, seed=seed)


def _native_ghz(device, n=4):
    compiled = transpile(ghz(n), device)
    sequence = NativeGateSequence.uniform(compiled.sites, "cz")
    return nativize(
        compiled.scheduled, sequence.as_site_map(), device.native_gates
    )


def _jobs(device, seeds, shots=100, tag="probe"):
    circuit = _native_ghz(device)
    return [Job(circuit, shots, seed=s, tag=tag) for s in seeds]


class TestFaultProfile:
    def test_presets_resolve(self):
        for name in ("none", "light", "heavy", "flaky"):
            assert fault_profile(name).name == name

    def test_unknown_preset_rejected(self):
        with pytest.raises(ExecutionError):
            fault_profile("catastrophic")

    def test_flaky_preset_meets_acceptance_floor(self):
        """The stress preset injects >=10% per-job transient failures."""
        assert fault_profile("flaky").p_job_fault >= 0.10

    def test_probability_validation(self):
        with pytest.raises(ExecutionError):
            FaultProfile(p_reject=1.5)
        with pytest.raises(ExecutionError):
            FaultProfile(p_reject=0.6, p_timeout=0.6)

    def test_rate_limit_requires_window(self):
        with pytest.raises(ExecutionError):
            FaultProfile(max_jobs_per_window=10)

    def test_zero_faults_injects_nothing(self):
        assert not ZERO_FAULTS.injects_faults
        assert FAULT_PROFILES["none"] is ZERO_FAULTS


class TestCloudQPUService:
    def test_zero_fault_passthrough_matches_local(self):
        device_a, device_b = _device(), _device()
        service = CloudQPUService(device_a)
        results = [service.execute(j) for j in _jobs(device_a, (1, 2, 3))]
        local = LocalBackend(device_b).submit_batch(_jobs(device_b, (1, 2, 3)))
        assert [r.counts for r in results] == [r.counts for r in local]
        assert device_a.clock_us == device_b.clock_us
        assert service.stats.completed == 3
        assert service.stats.submitted == 3

    def test_fault_stream_is_seed_deterministic(self):
        def fault_kinds(seed):
            device = _device()
            service = CloudQPUService(
                device, fault_profile("flaky"), seed=seed
            )
            kinds = []
            for job in _jobs(device, range(20), shots=10):
                try:
                    service.execute(job)
                    kinds.append("ok")
                except TransientServiceError as exc:
                    kinds.append(type(exc).__name__)
            return kinds

        first, second = fault_kinds(9), fault_kinds(9)
        assert first == second
        assert set(first) != {"ok"}  # some faults did fire
        assert fault_kinds(10) != first  # a different seed, different stream

    def test_rejected_job_burns_no_device_time(self):
        device = _device()
        profile = FaultProfile(name="reject-all", p_reject=1.0)
        service = CloudQPUService(device, profile, seed=1)
        clock_before = device.clock_us
        with pytest.raises(JobRejectedError):
            service.execute(_jobs(device, (1,))[0])
        assert device.clock_us == clock_before
        assert service.stats.rejections == 1

    def test_timeout_burns_device_time(self):
        device = _device()
        profile = FaultProfile(name="timeout-all", p_timeout=1.0)
        service = CloudQPUService(device, profile, seed=1)
        clock_before = device.clock_us
        with pytest.raises(ExecutionError):
            service.execute(_jobs(device, (1,))[0])
        assert device.clock_us > clock_before
        assert service.stats.timeouts == 1

    def test_submission_latency_advances_clock_and_drifts(self):
        device = _device()
        profile = FaultProfile(name="latent", submission_latency_us=5_000.0)
        service = CloudQPUService(device, profile)
        epoch_before = device.drift_epoch
        service.execute(_jobs(device, (1,))[0])
        assert service.stats.queue_latency_us == 5_000.0
        assert device.drift_epoch > epoch_before

    def test_calibration_window_makes_service_unavailable(self):
        device = _device()
        profile = FaultProfile(
            name="windowed", window_us=10_000.0, recalibration_us=50_000.0
        )
        service = CloudQPUService(device, profile)
        jobs = _jobs(device, range(30), shots=50)
        saw_unavailable = 0
        for job in jobs:
            try:
                service.execute(job)
            except ServiceUnavailableError as exc:
                saw_unavailable += 1
                assert exc.retry_after_us > 0
                service.wait(exc.retry_after_us)
        assert saw_unavailable > 0
        assert service.stats.recalibrations > 0
        # After waiting out recalibration, submissions succeed again.
        assert service.execute(_jobs(device, (99,))[0]).counts

    def test_rate_limit_within_window(self):
        device = _device()
        profile = FaultProfile(
            name="throttled",
            window_us=1e12,
            max_jobs_per_window=2,
        )
        service = CloudQPUService(device, profile)
        jobs = _jobs(device, (1, 2, 3), shots=20)
        service.execute(jobs[0])
        service.execute(jobs[1])
        with pytest.raises(RateLimitError):
            service.execute(jobs[2])
        assert service.stats.rate_limited == 1

    def test_batch_suffix_drop_reports_positionally(self):
        device = _device()
        profile = FaultProfile(name="dropper", p_batch_partial=1.0)
        service = CloudQPUService(device, profile, seed=4)
        outcome = service.execute_batch(_jobs(device, (1, 2, 3, 4), shots=20))
        failed = outcome.failed_indices
        assert failed  # some suffix dropped
        assert failed == list(range(failed[0], 4))  # a contiguous suffix
        assert outcome.results[0] is not None  # first job always runs
        for index in failed:
            assert outcome.errors[index] is not None
        assert service.stats.batch_suffix_drops == 1

    def test_empty_batch(self):
        service = CloudQPUService(_device())
        outcome = service.execute_batch([])
        assert outcome.results == [] and outcome.errors == []


class _FlakyNTimes:
    """A service stub that fails the first N submissions, then delegates."""

    def __init__(self, device, failures, exc_factory=None):
        self._inner = CloudQPUService(device)
        self.device = device
        self.remaining = failures
        self.waited_us = []
        self._exc_factory = exc_factory or (
            lambda: JobRejectedError("synthetic rejection")
        )

    @property
    def name(self):
        return self._inner.name

    def wait(self, duration_us):
        self.waited_us.append(duration_us)
        self._inner.wait(duration_us)

    def execute(self, job):
        if self.remaining > 0:
            self.remaining -= 1
            raise self._exc_factory()
        return self._inner.execute(job)

    def execute_batch(self, jobs):
        from repro.service.cloud import BatchOutcome

        outcome = BatchOutcome()
        for job in jobs:
            try:
                outcome.results.append(self.execute(job))
                outcome.errors.append(None)
            except TransientServiceError as exc:
                outcome.results.append(None)
                outcome.errors.append(exc)
        return outcome

    def cache_stats(self):
        return self._inner.cache_stats()


class TestRemoteBackendRetries:
    def test_retry_succeeds_after_transient_faults(self):
        device = _device()
        service = _FlakyNTimes(device, failures=2)
        backend = RemoteBackend(
            service, RetryPolicy(max_attempts=4, base_backoff_us=100.0)
        )
        result = backend.submit(_jobs(device, (7,))[0])
        assert sum(result.counts.values()) == 100
        assert backend.retries == 2
        assert backend.failures == 0
        assert len(service.waited_us) == 2  # one backoff per retry

    def test_backoff_grows_exponentially(self):
        device = _device()
        service = _FlakyNTimes(device, failures=3)
        backend = RemoteBackend(
            service,
            RetryPolicy(
                max_attempts=4,
                base_backoff_us=100.0,
                backoff_multiplier=2.0,
                jitter=0.0,
            ),
        )
        backend.submit(_jobs(device, (7,))[0])
        assert service.waited_us == [100.0, 200.0, 400.0]

    def test_jitter_is_seed_deterministic(self):
        def waits(seed):
            device = _device()
            service = _FlakyNTimes(device, failures=3)
            backend = RemoteBackend(
                service,
                RetryPolicy(max_attempts=4, base_backoff_us=100.0),
                seed=seed,
            )
            backend.submit(_jobs(device, (7,))[0])
            return service.waited_us

        assert waits(3) == waits(3)
        assert waits(3) != waits(4)

    def test_retry_exhaustion_raises_job_failed(self):
        device = _device()
        profile = FaultProfile(name="reject-all", p_reject=1.0)
        backend = RemoteBackend(
            CloudQPUService(device, profile, seed=1),
            RetryPolicy(max_attempts=3, base_backoff_us=10.0),
        )
        with pytest.raises(JobFailedError) as info:
            backend.submit(_jobs(device, (7,))[0])
        assert isinstance(info.value.cause, JobRejectedError)
        assert backend.retries == 2  # attempts - 1
        assert backend.failures == 1

    def test_deadline_cuts_retries_short(self):
        device = _device()
        profile = FaultProfile(name="reject-all", p_reject=1.0)
        backend = RemoteBackend(
            CloudQPUService(device, profile, seed=1),
            RetryPolicy(
                max_attempts=10,
                base_backoff_us=1_000.0,
                jitter=0.0,
                deadline_us=2_500.0,
            ),
        )
        with pytest.raises(JobFailedError):
            backend.submit(_jobs(device, (7,))[0])
        assert backend.deadline_exceeded == 1
        assert backend.retries < 9  # gave up well before the budget

    def test_honours_service_retry_after_hint(self):
        device = _device()
        service = _FlakyNTimes(
            device,
            failures=1,
            exc_factory=lambda: ServiceUnavailableError(
                "recalibrating", retry_after_us=9_999.0
            ),
        )
        backend = RemoteBackend(
            service,
            RetryPolicy(max_attempts=3, base_backoff_us=10.0, jitter=0.0),
        )
        backend.submit(_jobs(device, (7,))[0])
        assert service.waited_us == [9_999.0]


class TestCircuitBreaker:
    def _failing_backend(self, device, threshold=2, cooldown=50_000.0):
        profile = FaultProfile(name="reject-all", p_reject=1.0)
        service = CloudQPUService(device, profile, seed=1)
        backend = RemoteBackend(
            service,
            RetryPolicy(
                max_attempts=2,
                base_backoff_us=10.0,
                breaker_threshold=threshold,
                breaker_cooldown_us=cooldown,
            ),
        )
        return service, backend

    def test_breaker_trips_after_consecutive_failures(self):
        device = _device()
        service, backend = self._failing_backend(device)
        jobs = _jobs(device, (1, 2, 3), shots=20)
        for job in jobs[:2]:
            with pytest.raises(JobFailedError):
                backend.submit(job)
        assert backend.breaker_open
        assert backend.breaker_trips == 1
        submitted_before = service.stats.submitted
        with pytest.raises(JobFailedError):
            backend.submit(jobs[2])
        # Fast fail: the open breaker never touched the service.
        assert service.stats.submitted == submitted_before
        assert backend.fast_fails == 1

    def test_breaker_half_opens_after_cooldown(self):
        device = _device()
        service, backend = self._failing_backend(device, cooldown=1_000.0)
        for job in _jobs(device, (1, 2), shots=20):
            with pytest.raises(JobFailedError):
                backend.submit(job)
        assert backend.breaker_open
        service.wait(2_000.0)
        assert not backend.breaker_open  # cooldown elapsed: trial allowed
        # The trial fails again (service still rejecting) and re-opens.
        with pytest.raises(JobFailedError):
            backend.submit(_jobs(device, (3,))[0])
        assert backend.breaker_open

    def test_success_closes_breaker(self):
        device = _device()
        service = _FlakyNTimes(device, failures=4)
        backend = RemoteBackend(
            service,
            RetryPolicy(
                max_attempts=2,
                base_backoff_us=10.0,
                breaker_threshold=2,
                breaker_cooldown_us=100.0,
            ),
        )
        for job in _jobs(device, (1, 2), shots=20):
            with pytest.raises(JobFailedError):
                backend.submit(job)
        assert backend.breaker_open
        service.wait(200.0)
        result = backend.submit(_jobs(device, (3,))[0])
        assert result.counts
        assert not backend.breaker_open
        assert backend._consecutive_failures == 0


class TestPartialBatchRecovery:
    def test_only_failed_slots_are_resubmitted(self):
        device = _device()
        # First submission drops a suffix; the retry round is clean.
        profile = FaultProfile(name="dropper", p_batch_partial=1.0)
        service = CloudQPUService(device, profile, seed=4)
        backend = RemoteBackend(
            service, RetryPolicy(max_attempts=4, base_backoff_us=10.0)
        )
        jobs = _jobs(device, (1, 2, 3, 4), shots=20)
        results = backend.submit_batch_tolerant(jobs)
        assert all(r is not None for r in results)
        assert backend.resubmitted > 0
        # Each job produced counts exactly once in the final slots.
        assert [r.seed for r in results] == [1, 2, 3, 4]
        # The completed jobs of round one were not re-executed: total
        # service completions equal the job count (suffix jobs never ran
        # in round one).
        assert service.stats.completed == len(jobs)

    def test_all_or_nothing_submit_batch_raises_on_permanent_failure(self):
        device = _device()
        profile = FaultProfile(name="reject-all", p_reject=1.0)
        backend = RemoteBackend(
            CloudQPUService(device, profile, seed=1),
            RetryPolicy(max_attempts=2, base_backoff_us=10.0),
        )
        with pytest.raises(JobFailedError):
            backend.submit_batch(_jobs(device, (1, 2), shots=20))

    def test_empty_batch_through_remote(self):
        backend = RemoteBackend(CloudQPUService(_device()))
        assert backend.submit_batch([]) == []
        assert backend.submit_batch_tolerant([]) == []

    def test_singleton_batch_matches_local(self):
        device_a, device_b = _device(), _device()
        remote = RemoteBackend(CloudQPUService(device_a))
        local = LocalBackend(device_b)
        job_a = _jobs(device_a, (5,))[0]
        job_b = _jobs(device_b, (5,))[0]
        result_remote = remote.submit_batch([job_a])
        result_local = local.submit_batch([job_b])
        assert result_remote[0].counts == result_local[0].counts
        assert device_a.clock_us == device_b.clock_us


class TestZeroFaultBitEquality:
    def test_remote_matches_local_sequential_bit_for_bit(self):
        """Acceptance: zero faults => RemoteBackend is bit-identical."""
        device_a, device_b = _device(), _device()
        remote = BatchExecutor(RemoteBackend(CloudQPUService(device_a)))
        local = BatchExecutor(LocalBackend(device_b))
        results_remote = remote.submit_batch(_jobs(device_a, (1, 2, 3)))
        results_local = local.submit_batch(_jobs(device_b, (1, 2, 3)))
        assert [r.counts for r in results_remote] == [
            r.counts for r in results_local
        ]
        assert [r.started_at_us for r in results_remote] == [
            r.started_at_us for r in results_local
        ]
        assert device_a.clock_us == device_b.clock_us
        assert remote.stats.retries == 0
        assert remote.stats.job_failures == 0


class TestExecutorIntegration:
    def test_executor_accounts_retries_and_failures(self):
        device = _device()
        profile = FaultProfile(name="flaky-heavy", p_reject=0.5)
        executor = BatchExecutor(
            RemoteBackend(
                CloudQPUService(device, profile, seed=2),
                RetryPolicy(
                    max_attempts=2,
                    base_backoff_us=10.0,
                    breaker_threshold=1_000,
                ),
            )
        )
        results = executor.submit_batch(
            _jobs(device, range(12), shots=20), allow_failures=True
        )
        failed = sum(1 for r in results if r is None)
        assert executor.stats.retries > 0
        assert executor.stats.job_failures == failed
        assert executor.stats.jobs == 12 - failed  # only completed counted
        snapshot = executor.stats.snapshot()
        assert snapshot["retries"] == executor.stats.retries
        assert "reliability" in executor.stats.to_text()

    def test_allow_failures_without_tolerant_backend_is_plain(self):
        device = _device()
        executor = BatchExecutor(LocalBackend(device))
        results = executor.submit_batch(
            _jobs(device, (1, 2)), allow_failures=True
        )
        assert all(r is not None for r in results)
