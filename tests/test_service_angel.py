"""Graceful degradation: ANGEL's search survives a flaky cloud service.

Acceptance criteria pinned here (ISSUE 2):

* With a seeded fault profile injecting >=10% transient probe-job
  failures, ANGEL's localized search on GHZ-5 completes without raising.
* ``ExecutorStats`` reports the retries/failures/fallbacks.
* Degraded links fall back to the calibration-fidelity choice.
* With a zero-fault profile, the remote path is bit-identical to the
  local path.
"""

import pytest

from repro.core.angel import Angel, AngelConfig
from repro.experiments.context import ExperimentContext
from repro.programs.ghz import ghz
from repro.service import FaultProfile, RetryPolicy, fault_profile


def _angel_run(ctx, probe_shots=200, seed=3):
    angel = Angel(
        ctx.device,
        ctx.calibration,
        AngelConfig(probe_shots=probe_shots, seed=seed),
        executor=ctx.executor,
    )
    return angel, angel.compile_and_select(ghz(5))


#: A harsh profile (40% per-job faults + batch drops) paired with a
#: no-retry policy below, so a visible fraction of probes fail
#: *permanently* and the degradation paths actually exercise.
STRESS = FaultProfile(
    name="stress",
    p_reject=0.2,
    p_timeout=0.1,
    p_lost_result=0.1,
    p_batch_partial=0.2,
)


class TestAngelUnderFaults:
    def test_flaky_profile_completes_with_retries(self):
        """>=10% transient faults: the search completes, retries absorb."""
        assert fault_profile("flaky").p_job_fault >= 0.10
        ctx = ExperimentContext.create(
            backend="remote", fault_profile="flaky", fault_seed=7
        )
        angel, (compiled, result) = _angel_run(ctx)
        # Budget accounting survives: 1 + 2L probes were still submitted.
        assert result.copycats_executed == angel.expected_probe_count(
            compiled
        )
        stats = ctx.executor.stats
        assert stats.retries > 0  # transient faults fired and were retried
        assert stats.job_failures == result.trace.num_failed
        assert stats.fallbacks == len(result.degraded_links)

    def test_stress_profile_degrades_gracefully(self):
        """Permanent probe failures degrade links instead of aborting."""
        ctx = ExperimentContext.create(
            backend="remote",
            fault_profile=STRESS,
            fault_seed=2,
            retry_policy=RetryPolicy(
                max_attempts=1, breaker_threshold=1_000
            ),
        )
        angel, (compiled, result) = _angel_run(ctx)
        # The run completed without raising, spent the full 1 + 2L
        # budget, and the fault seed above is known to fail probes.
        assert result.copycats_executed == angel.expected_probe_count(
            compiled
        )
        assert result.trace.num_failed > 0
        assert result.degraded_links
        # Degraded links keep the calibration-fidelity (reference) gate.
        for link in result.degraded_links:
            assert result.sequence.gates_on_link(
                link
            ) == result.reference_sequence.gates_on_link(link)
        stats = ctx.executor.stats
        assert stats.job_failures == result.trace.num_failed
        assert stats.fallbacks == len(result.degraded_links)
        # Failed probes are auditable in the trace and excluded from
        # best(): the winner is always a measured probe.
        assert not result.trace.best().failed

    def test_total_outage_falls_back_to_reference_everywhere(self):
        """Every probe failing => the baseline policy is the answer."""
        ctx = ExperimentContext.create(
            backend="remote",
            fault_profile=FaultProfile(name="outage", p_reject=1.0),
            fault_seed=0,
            retry_policy=RetryPolicy(
                max_attempts=2,
                base_backoff_us=10.0,
                breaker_threshold=1_000_000,
            ),
        )
        angel, (compiled, result) = _angel_run(ctx)
        assert result.sequence.gates == result.reference_sequence.gates
        assert result.trace.num_failed == result.trace.num_probes
        assert set(result.degraded_links) == set(compiled.links_used())
        with pytest.raises(Exception):
            result.trace.best()  # nothing was ever measured

    def test_zero_fault_remote_matches_local_bit_for_bit(self):
        """Acceptance: no faults => remote ANGEL == local ANGEL."""
        ctx_remote = ExperimentContext.create(
            backend="remote", fault_profile="none"
        )
        ctx_local = ExperimentContext.create()
        _, (_, result_remote) = _angel_run(ctx_remote)
        _, (_, result_local) = _angel_run(ctx_local)
        assert result_remote.sequence.gates == result_local.sequence.gates
        assert [
            p.success_rate for p in result_remote.trace.probes
        ] == [p.success_rate for p in result_local.trace.probes]
        assert result_remote.degraded_links == ()
        assert ctx_remote.device.clock_us == ctx_local.device.clock_us
        assert ctx_remote.executor.stats.retries == 0
        assert ctx_remote.executor.stats.job_failures == 0
