"""Tests for experiment result rendering."""

from repro.experiments.reporting import ExperimentResult, ascii_bars, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "x"), [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        # All rows same width.
        assert len({len(l) for l in lines}) <= 2

    def test_float_formatting(self):
        text = format_table(("v",), [(0.123456789,)])
        assert "0.1235" in text


class TestAsciiBars:
    def test_bars_scale(self):
        text = ascii_bars(["a", "b"], [1.0, 0.5], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert ascii_bars([], []) == "(empty)"

    def test_max_value_override(self):
        text = ascii_bars(["a"], [0.5], width=10, max_value=1.0)
        assert text.count("#") == 5


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="figX",
            title="A test",
            columns=("k", "v"),
            rows=[("alpha", 1.0)],
            series={"s": [0.1, 0.2]},
            notes=["note one"],
            summary="Everything worked.",
        )

    def test_to_text_contains_everything(self):
        text = self._result().to_text()
        assert "figX" in text
        assert "Everything worked." in text
        assert "alpha" in text
        assert "series: s" in text
        assert "note: note one" in text

    def test_str_is_to_text(self):
        result = self._result()
        assert str(result) == result.to_text()

    def test_long_series_truncated_in_preview(self):
        result = ExperimentResult(
            "figY", "t", ("a",), [], series={"big": [0.0] * 50}
        )
        assert "..." in result.to_text()

    def test_json_roundtrip(self):
        result = self._result()
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.experiment_id == result.experiment_id
        assert restored.rows == result.rows
        assert restored.series == result.series
        assert restored.notes == result.notes
        assert restored.summary == result.summary

    def test_save_and_load(self, tmp_path):
        result = self._result()
        path = result.save(tmp_path / "figX.json")
        restored = ExperimentResult.load(path)
        assert restored.rows == result.rows
