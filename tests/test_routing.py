"""Tests for SWAP routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.compiler.mapping import Layout, trivial_layout
from repro.compiler.routing import route_circuit
from repro.device.topology import Topology, linear_topology
from repro.exceptions import CompilationError
from repro.sim.statevector import ideal_distribution


def _routed_equivalent(circuit, topology, layout):
    """Route and check the routed circuit produces the same distribution."""
    routed = route_circuit(circuit, topology, layout)
    compact, _ = routed.circuit.compacted()
    return ideal_distribution(circuit), ideal_distribution(compact), routed


class TestBasicRouting:
    def test_adjacent_gates_untouched(self):
        topo = linear_topology(3)
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        routed = route_circuit(qc, topo, Layout((0, 1)))
        assert routed.swap_count == 0
        assert routed.circuit.count_ops().get("swap", 0) == 0

    def test_distant_cnot_gets_swaps(self):
        topo = linear_topology(4)
        qc = QuantumCircuit(3).cnot(0, 2)
        routed = route_circuit(qc, topo, Layout((0, 1, 2)))
        assert routed.swap_count == 1
        pairs = routed.circuit.two_qubit_pairs()
        for pair in pairs:
            assert topo.has_link(*pair)

    def test_final_mapping_tracks_swaps(self):
        topo = linear_topology(4)
        qc = QuantumCircuit(3).cnot(0, 2)
        routed = route_circuit(qc, topo, Layout((0, 1, 2)))
        # Logical 0 was swapped toward 2.
        assert routed.final_physical[0] == 1
        assert routed.final_physical[1] == 0

    def test_measurements_in_logical_order(self):
        topo = linear_topology(4)
        qc = QuantumCircuit(3).cnot(0, 2).measure(2).measure(0)
        routed = route_circuit(qc, topo, Layout((0, 1, 2)))
        measured = routed.circuit.measured_qubits()
        # Logical 2 first, then logical 0 (at its post-swap location).
        assert measured == (
            routed.final_physical[2],
            routed.final_physical[0],
        )

    def test_all_measured_when_program_has_no_measurements(self):
        topo = linear_topology(3)
        qc = QuantumCircuit(2).h(0)
        routed = route_circuit(qc, topo, Layout((0, 1)))
        assert len(routed.circuit.measured_qubits()) == 2

    def test_unroutable_raises(self):
        topo = Topology("split", (0, 1, 2, 3), ((0, 1), (2, 3)))
        qc = QuantumCircuit(3).cnot(0, 2)
        with pytest.raises(CompilationError):
            route_circuit(qc, topo, Layout((0, 1, 2)))

    def test_narrow_layout_rejected(self):
        topo = linear_topology(3)
        with pytest.raises(CompilationError):
            route_circuit(QuantumCircuit(3), topo, Layout((0, 1)))


class TestSemanticPreservation:
    @given(seed=st.integers(0, 400))
    @settings(max_examples=20, deadline=None)
    def test_routing_preserves_distribution(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(4, 10, rng)
        topo = linear_topology(6)
        layout = trivial_layout(qc, topo)
        ideal, routed_dist, _ = _routed_equivalent(qc, topo, layout)
        keys = set(ideal) | set(routed_dist)
        for key in keys:
            assert ideal.get(key, 0.0) == pytest.approx(
                routed_dist.get(key, 0.0), abs=1e-9
            )

    def test_routing_with_nontrivial_initial_layout(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2)
        topo = linear_topology(5)
        layout = Layout((4, 3, 2))
        ideal, routed_dist, _ = _routed_equivalent(qc, topo, layout)
        for key in set(ideal) | set(routed_dist):
            assert ideal.get(key, 0.0) == pytest.approx(
                routed_dist.get(key, 0.0), abs=1e-9
            )
