"""Tests for the state-vector simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.exceptions import SimulationError
from repro.sim.statevector import StatevectorSimulator, StateVector, ideal_distribution


class TestStateVector:
    def test_initial_state(self):
        state = StateVector(2)
        assert state.amplitudes[0] == pytest.approx(1.0)
        assert state.norm() == pytest.approx(1.0)

    def test_from_amplitudes_validates_length(self):
        with pytest.raises(SimulationError):
            StateVector.from_amplitudes(np.ones(3))

    def test_width_limits(self):
        with pytest.raises(SimulationError):
            StateVector(0)
        with pytest.raises(SimulationError):
            StateVector(25)

    def test_apply_x(self):
        state = StateVector(2)
        state.apply_matrix(np.array([[0, 1], [1, 0]]), (0,))
        assert abs(state.amplitudes[0b10]) == pytest.approx(1.0)

    def test_probabilities_marginal_order(self):
        # Prepare |10>, ask for qubits in order (1, 0).
        qc = QuantumCircuit(2).x(0)
        state = StatevectorSimulator().run(qc)
        probs = state.probabilities((1, 0))
        assert probs[0b01] == pytest.approx(1.0)

    def test_sampling_deterministic_state(self):
        qc = QuantumCircuit(2).x(1)
        state = StatevectorSimulator().run(qc)
        counts = state.sample(100, np.random.default_rng(0))
        assert counts == {"01": 100}


class TestSimulatorAgainstDenseUnitary:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_matches_dense_unitary(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(4, 12, rng)
        state = StatevectorSimulator().run(qc)
        expected = qc.unitary()[:, 0]
        assert np.allclose(state.amplitudes, expected, atol=1e-9)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_norm_preserved(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(3, 30, rng)
        assert StatevectorSimulator().run(qc).norm() == pytest.approx(1.0)


class TestDistribution:
    def test_bell_distribution(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        dist = ideal_distribution(qc)
        assert dist["00"] == pytest.approx(0.5)
        assert dist["11"] == pytest.approx(0.5)
        assert set(dist) == {"00", "11"}

    def test_measured_subset(self):
        qc = QuantumCircuit(3).x(1).measure(1)
        dist = ideal_distribution(qc)
        assert dist == {"1": pytest.approx(1.0)}

    def test_ghz_distribution(self):
        qc = QuantumCircuit(4).h(0)
        for i in range(3):
            qc.cnot(i, i + 1)
        dist = ideal_distribution(qc)
        assert dist["0000"] == pytest.approx(0.5)
        assert dist["1111"] == pytest.approx(0.5)

    def test_sample_totals(self):
        qc = QuantumCircuit(1).h(0)
        counts = StatevectorSimulator().sample(qc, 1000, np.random.default_rng(1))
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"0", "1"}

    def test_measurements_ignored_in_run(self):
        qc = QuantumCircuit(1).h(0).measure(0)
        state = StatevectorSimulator().run(qc)
        assert state.norm() == pytest.approx(1.0)
