"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "GHZ_n4"])
        assert args.policy == "angel"
        assert args.device == "aspen-11"

    def test_fixed_gate_policy_accepted(self):
        args = build_parser().parse_args(
            ["compile", "GHZ_n4", "--policy", "cz"]
        )
        assert args.policy == "cz"

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "x", "--policy", "magic"])


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "GHZ_n4" in out
        assert "QAOA_n5" in out

    def test_draw_benchmark(self, capsys):
        assert main(["draw", "GHZ_n4"]) == 0
        out = capsys.readouterr().out
        assert "q0:" in out and "*" in out

    def test_draw_qasm_file(self, tmp_path, capsys):
        qasm = tmp_path / "bell.qasm"
        qasm.write_text(
            'OPENQASM 2.0; include "qelib1.inc"; qreg q[2]; '
            "h q[0]; cx q[0],q[1];"
        )
        assert main(["draw", str(qasm)]) == 0
        out = capsys.readouterr().out
        assert "H" in out and "X" in out

    def test_unknown_benchmark_is_error(self, capsys):
        assert main(["draw", "definitely_not_a_benchmark"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compile_fixed_gate(self, capsys):
        code = main(
            [
                "compile",
                "tele_n2",
                "--policy",
                "cz",
                "--shots",
                "256",
                "--seed",
                "5",
                "--drift-hours",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate" in out

    def test_compile_baseline_emits_qasm(self, capsys):
        code = main(
            [
                "compile",
                "tele_n2",
                "--policy",
                "baseline",
                "--shots",
                "128",
                "--drift-hours",
                "1",
                "--emit-qasm",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OPENQASM 2.0" in out

    def test_compile_angel(self, capsys):
        code = main(
            [
                "compile",
                "tele_n2",
                "--policy",
                "angel",
                "--shots",
                "128",
                "--probe-shots",
                "128",
                "--drift-hours",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CopyCat probes" in out

    def test_experiments_command(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "19.7K" in out

    def test_device_command(self, capsys):
        assert main(["device", "--max-links", "4", "--drift-hours", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig17" in out
