"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "GHZ_n4"])
        assert args.policy == "angel"
        assert args.device == "aspen-11"

    def test_fixed_gate_policy_accepted(self):
        args = build_parser().parse_args(
            ["compile", "GHZ_n4", "--policy", "cz"]
        )
        assert args.policy == "cz"

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "x", "--policy", "magic"])


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "GHZ_n4" in out
        assert "QAOA_n5" in out

    def test_draw_benchmark(self, capsys):
        assert main(["draw", "GHZ_n4"]) == 0
        out = capsys.readouterr().out
        assert "q0:" in out and "*" in out

    def test_draw_qasm_file(self, tmp_path, capsys):
        qasm = tmp_path / "bell.qasm"
        qasm.write_text(
            'OPENQASM 2.0; include "qelib1.inc"; qreg q[2]; '
            "h q[0]; cx q[0],q[1];"
        )
        assert main(["draw", str(qasm)]) == 0
        out = capsys.readouterr().out
        assert "H" in out and "X" in out

    def test_unknown_benchmark_is_error(self, capsys):
        assert main(["draw", "definitely_not_a_benchmark"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compile_fixed_gate(self, capsys):
        code = main(
            [
                "compile",
                "tele_n2",
                "--policy",
                "cz",
                "--shots",
                "256",
                "--seed",
                "5",
                "--drift-hours",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate" in out

    def test_compile_baseline_emits_qasm(self, capsys):
        code = main(
            [
                "compile",
                "tele_n2",
                "--policy",
                "baseline",
                "--shots",
                "128",
                "--drift-hours",
                "1",
                "--emit-qasm",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OPENQASM 2.0" in out

    def test_compile_angel(self, capsys):
        code = main(
            [
                "compile",
                "tele_n2",
                "--policy",
                "angel",
                "--shots",
                "128",
                "--probe-shots",
                "128",
                "--drift-hours",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CopyCat probes" in out

    def test_experiments_command(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "19.7K" in out

    def test_device_command(self, capsys):
        assert main(["device", "--max-links", "4", "--drift-hours", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig17" in out

    def test_serve_reports_dedup_store_summary(self, capsys):
        code = main(
            [
                "serve",
                "--tenants", "2",
                "--requests", "1",
                "--programs", "GHZ_n4",
                "--shots", "64",
                "--probe-shots", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total: 2 requests (0 failed)" in out
        assert "dedup store [shared]:" in out
        assert "publishes" in out and "evictions" in out

    def test_serve_fleet_record_replay_roundtrip(self, tmp_path, capsys):
        import json

        record = tmp_path / "placements.json"
        base = [
            "serve",
            "--tenants", "2",
            "--requests", "1",
            "--programs", "GHZ_n4",
            "--shots", "64",
            "--probe-shots", "16",
            "--fleet", "2",
            "--fleet-stagger-hours", "1.5",
        ]
        assert main(base + ["--fleet-record", str(record)]) == 0
        out = capsys.readouterr().out
        assert "dedup store [replica-0]:" in out
        assert "replica-0" in out and "replica-1" in out
        assert "router:" in out and "affinity-hit ratio" in out
        assert f"placements recorded to {record}" in out
        placements = json.loads(record.read_text())
        assert set(placements) == {"tenant-0/1", "tenant-1/1"}
        assert all(index in (0, 1) for index in placements.values())
        # Replaying the recorded map reproduces the placements exactly.
        assert main(base + ["--fleet-replay", str(record)]) == 0
        replay_out = capsys.readouterr().out
        assert "total: 2 requests (0 failed)" in replay_out

    def test_serve_fleet_flags_validated(self, capsys):
        assert main(["serve", "--fleet-record", "x.json"]) == 1
        err = capsys.readouterr().err
        assert "require --fleet" in err
