"""Worker-pool tests: lifecycle, epoch-delta sync, bit-equivalence.

The contract under test is the one the backend's parallel discipline is
built on: a persistent :class:`~repro.exec.pool.WorkerPool` produces
distributions **bit-identical** to computing the same parameter snapshot
in-process (``max_workers=1``), across any number of workers, with
affinity scheduling on or off, and across drift-epoch boundaries the
parent crosses between batches.
"""

import multiprocessing

import pytest

from repro.compiler import transpile
from repro.compiler.nativization import nativize
from repro.core.sequence import NativeGateSequence
from repro.device import small_test_device
from repro.exec import BatchExecutor, Job, LocalBackend, WorkerPool
from repro.programs.ghz import ghz
from repro.programs.qaoa import qaoa_n5

_HOUR_US = 3_600e6


def _noop():  # pragma: no cover - runs in the probe child process
    pass


def _pools_available() -> bool:
    """Whether this environment can spawn worker processes at all."""
    try:
        process = multiprocessing.get_context().Process(target=_noop)
        process.start()
        process.join(5.0)
        return process.exitcode == 0
    except (OSError, ValueError):
        return False


pytestmark = pytest.mark.skipif(
    not _pools_available(),
    reason="process pools unavailable in this environment",
)


def _native(device, program, gate="cz", suffix=""):
    compiled = transpile(program, device)
    sequence = NativeGateSequence.uniform(compiled.sites, gate)
    return nativize(
        compiled.scheduled,
        sequence.as_site_map(),
        device.native_gates,
        name_suffix=suffix,
    )


def _probe_circuits(device):
    """A localized-search-shaped probe set: per-gate GHZ-5 candidates
    (sharing long prefixes) plus a QAOA workload with a different shape."""
    circuits = [
        _native(device, ghz(5), gate, suffix=f"_{gate}")
        for gate in ("cz", "xy", "cphase")
    ]
    circuits.append(_native(device, qaoa_n5(), "cz", suffix="_qaoa"))
    return circuits


def _jobs(device, shots=200, base_seed=100):
    return [
        Job(circuit, shots, seed=base_seed + i, tag="probe")
        for i, circuit in enumerate(_probe_circuits(device))
    ]


class TestPoolLifecycle:
    def test_pool_persists_across_batches(self):
        """One spawn serves a whole sweep: the acceptance pin."""
        device = small_test_device(5, seed=31)
        backend = LocalBackend(device)
        executor = BatchExecutor(backend, mode="parallel", max_workers=2)
        first_pool = None
        for _ in range(3):
            executor.submit_batch(_jobs(device))
            assert backend.pool is not None
            if first_pool is None:
                first_pool = backend.pool
            assert backend.pool is first_pool
        assert backend.pool_spawns == 1
        assert backend.cache_stats()["pool_spawns"] == 1
        backend.close()

    def test_pool_rebuilt_after_close(self):
        device = small_test_device(5, seed=31)
        backend = LocalBackend(device)
        backend.submit_batch(_jobs(device), parallel=True, max_workers=2)
        assert backend.pool_spawns == 1
        backend.close()
        assert backend.pool is None
        backend.close()  # idempotent
        results = backend.submit_batch(
            _jobs(device), parallel=True, max_workers=2
        )
        assert backend.pool_spawns == 2
        assert all(sum(r.counts.values()) == 200 for r in results)
        backend.close()

    def test_resize_respawns_same_size_reuses(self):
        device = small_test_device(5, seed=31)
        with LocalBackend(device) as backend:
            backend.submit_batch(
                _jobs(device), parallel=True, max_workers=2
            )
            backend.submit_batch(
                _jobs(device), parallel=True, max_workers=2
            )
            assert backend.pool_spawns == 1
            backend.submit_batch(
                _jobs(device), parallel=True, max_workers=3
            )
            assert backend.pool_spawns == 2
            assert backend.pool.num_workers == 3
            # max_workers=None reuses whatever is live.
            backend.submit_batch(_jobs(device), parallel=True)
            assert backend.pool_spawns == 2
        assert backend.pool is None  # context exit closed it

    def test_closed_pool_refuses_dispatch(self):
        device = small_test_device(5, seed=31)
        pool = WorkerPool(device, num_workers=2)
        pool.close()
        assert pool.closed
        with pytest.raises(OSError):
            pool.run(_probe_circuits(device))

    def test_ship_bytes_monotonic_across_rebuild(self):
        """The executor diffs ship_bytes; close/rebuild must not make
        the merged counter go backwards."""
        device = small_test_device(5, seed=31)
        backend = LocalBackend(device)
        backend.submit_batch(_jobs(device), parallel=True, max_workers=2)
        before = backend.cache_stats()["ship_bytes"]
        assert before > 0
        backend.close()
        assert backend.cache_stats()["ship_bytes"] >= before
        backend.submit_batch(_jobs(device), parallel=True, max_workers=2)
        assert backend.cache_stats()["ship_bytes"] > before
        backend.close()


class TestEpochSync:
    def test_worker_epochs_track_parent(self):
        device = small_test_device(5, seed=31)
        circuits = _probe_circuits(device)
        with WorkerPool(device, num_workers=2) as pool:
            _, info = pool.run(circuits)
            assert info.epochs == [device.drift_epoch] * len(info.epochs)
            device.advance_time(_HOUR_US)
            bumped = device.drift_epoch
            _, info = pool.run(circuits)
            assert info.epochs == [bumped] * len(info.epochs)

    def test_no_stale_distributions_after_advance_time(self):
        """A mid-sweep ``advance_time`` in the parent must flush worker
        caches: pooled distributions equal a fresh in-process compute of
        the *new* snapshot, not the cached old one."""
        device = small_test_device(5, seed=31)
        circuits = _probe_circuits(device)
        with WorkerPool(device, num_workers=2) as pool:
            stale, _ = pool.run(circuits)  # warms worker caches
            device.advance_time(_HOUR_US)
            fresh_pool, _ = pool.run(circuits)
        fresh_local = [device.noisy_distribution(c) for c in circuits]
        assert fresh_pool == fresh_local
        assert fresh_pool != stale

    def test_idle_worker_catches_up_on_next_dispatch(self):
        """A worker that sat out a batch (fewer jobs than workers) must
        still sync forward when it next receives work."""
        device = small_test_device(5, seed=31)
        circuits = _probe_circuits(device)
        with WorkerPool(device, num_workers=4, affinity=False) as pool:
            # One job: only worker 0 participates; the rest stay stale.
            pool.run(circuits[:1])
            device.advance_time(_HOUR_US)
            pooled, info = pool.run(circuits)
            assert info.epochs == [device.drift_epoch] * len(info.epochs)
        local = [device.noisy_distribution(c) for c in circuits]
        assert pooled == local


class TestBitEquivalence:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    @pytest.mark.parametrize("affinity", [True, False])
    def test_pool_matches_in_process_snapshot(self, num_workers, affinity):
        """GHZ-5 + QAOA snapshot distributions are bit-identical on- and
        off-pool for every pool size and scheduling policy."""
        device = small_test_device(5, seed=31)
        circuits = _probe_circuits(device)
        local = [device.noisy_distribution(c) for c in circuits]
        with WorkerPool(
            device, num_workers=num_workers, affinity=affinity
        ) as pool:
            pooled, _ = pool.run(circuits)
        assert pooled == local

    @pytest.mark.parametrize("max_workers", [2, 4])
    def test_backend_counts_match_off_pool(self, max_workers):
        """End-to-end through LocalBackend across drift boundaries:
        pooled sampled *counts* equal the off-pool (max_workers=1)
        snapshot path, batch for batch."""
        device_a = small_test_device(5, seed=31)
        device_b = small_test_device(5, seed=31)
        backend_a = LocalBackend(device_a)
        backend_b = LocalBackend(device_b)
        for round_index in range(3):
            base = 100 * (round_index + 1)
            pooled = backend_a.submit_batch(
                _jobs(device_a, base_seed=base),
                parallel=True,
                max_workers=max_workers,
            )
            offpool = backend_b.submit_batch(
                _jobs(device_b, base_seed=base),
                parallel=True,
                max_workers=1,
            )
            assert [r.counts for r in pooled] == [
                r.counts for r in offpool
            ]
            device_a.advance_time(_HOUR_US)
            device_b.advance_time(_HOUR_US)
        assert device_a.clock_us == device_b.clock_us
        assert backend_a.pool_spawns == 1
        backend_a.close()

    def test_affinity_toggle_does_not_change_counts(self):
        device_a = small_test_device(5, seed=31)
        device_b = small_test_device(5, seed=31)
        with LocalBackend(device_a, affinity=True) as on, LocalBackend(
            device_b, affinity=False
        ) as off:
            got_on = on.submit_batch(
                _jobs(device_a), parallel=True, max_workers=2
            )
            got_off = off.submit_batch(
                _jobs(device_b), parallel=True, max_workers=2
            )
            assert [r.counts for r in got_on] == [
                r.counts for r in got_off
            ]
            assert on.cache_stats()["affinity_hits"] >= 0
            assert off.cache_stats()["affinity_hits"] == 0


class TestSchedulingAndStats:
    def test_affinity_groups_prefix_sharing_jobs(self):
        """Prefix-sharing GHZ candidates land adjacent on one worker and
        are counted as affinity hits."""
        device = small_test_device(5, seed=31)
        # Candidates differing only at the *last* site share most of
        # their instruction prefix.
        compiled = transpile(ghz(5), device)
        sequences = []
        for gate in ("cz", "xy", "cphase"):
            gates = ["cz"] * len(compiled.sites)
            gates[-1] = gate
            sequences.append(
                NativeGateSequence(tuple(compiled.sites), tuple(gates))
            )
        circuits = [
            nativize(
                compiled.scheduled,
                seq.as_site_map(),
                device.native_gates,
                name_suffix=f"_c{i}",
            )
            for i, seq in enumerate(sequences)
        ]
        with WorkerPool(device, num_workers=2, affinity=True) as pool:
            _, info = pool.run(circuits)
            assert info.affinity_hits >= 1
        with WorkerPool(device, num_workers=2, affinity=False) as pool:
            _, info = pool.run(circuits)
            assert info.affinity_hits == 0

    def test_executor_stats_harvest_pool_counters(self):
        device = small_test_device(5, seed=31)
        backend = LocalBackend(device)
        executor = BatchExecutor(backend, mode="parallel", max_workers=2)
        # Duplicate a circuit: affinity sorts identical chains adjacent,
        # so the repeat hits its worker's distribution memo in-batch.
        jobs = _jobs(device)
        jobs.append(Job(jobs[0].circuit, 200, seed=999, tag="probe"))
        executor.submit_batch(jobs)
        stats = executor.stats
        assert stats.workers == 2
        assert stats.ship_bytes > 0
        snapshot = stats.snapshot()
        assert snapshot["workers"] == 2
        assert snapshot["ship_bytes"] == stats.ship_bytes
        assert "worker pool: 2 workers" in stats.to_text()
        # Worker-side cache activity is merged into the shared ledger:
        # the duplicate circuit is now caught by the batched engine's
        # in-batch dedup (simulated once, fanned out) rather than the
        # distribution memo, and that counter harvests the same way.
        assert stats.batch_dedup_hits > 0
        backend.close()
        assert executor.stats.workers == 2  # gauge until the next batch
