"""Tests for Kraus channels and readout errors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.sim.channels import (
    KrausChannel,
    ReadoutError,
    amplitude_damping_channel,
    compose_channels,
    depolarizing_channel,
    identity_channel,
    phase_damping_channel,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
    unitary_channel,
)

PROBS = st.floats(0.0, 1.0, allow_nan=False)


class TestTracePreservation:
    @given(p=PROBS)
    @settings(max_examples=25, deadline=None)
    def test_depolarizing_tp(self, p):
        assert depolarizing_channel(p).is_trace_preserving()

    @given(p=PROBS)
    @settings(max_examples=25, deadline=None)
    def test_two_qubit_depolarizing_tp(self, p):
        assert two_qubit_depolarizing_channel(p).is_trace_preserving()

    @given(gamma=PROBS)
    @settings(max_examples=25, deadline=None)
    def test_amplitude_damping_tp(self, gamma):
        assert amplitude_damping_channel(gamma).is_trace_preserving()

    @given(lam=PROBS)
    @settings(max_examples=25, deadline=None)
    def test_phase_damping_tp(self, lam):
        assert phase_damping_channel(lam).is_trace_preserving()

    @given(
        duration=st.floats(0.0, 500.0),
        t1=st.floats(1.0, 100.0),
        ratio=st.floats(0.1, 2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_thermal_relaxation_tp(self, duration, t1, ratio):
        channel = thermal_relaxation_channel(duration, t1, ratio * t1)
        assert channel.is_trace_preserving(atol=1e-7)


class TestChannelAction:
    def test_identity_channel_noop(self):
        rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
        assert np.allclose(identity_channel().apply_to(rho), rho)

    def test_full_depolarizing_mixes(self):
        rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
        out = depolarizing_channel(1.0).apply_to(rho)
        # p=1 leaves 1/3 weight on each Pauli image of |0><0|:
        # X|0><0|X = |1><1|, Y|0><0|Y = |1><1|, Z|0><0|Z = |0><0|.
        assert out[0, 0] == pytest.approx(1 / 3)
        assert out[1, 1] == pytest.approx(2 / 3)

    def test_amplitude_damping_decays_excited(self):
        rho = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)
        out = amplitude_damping_channel(0.25).apply_to(rho)
        assert out[0, 0] == pytest.approx(0.25)
        assert out[1, 1] == pytest.approx(0.75)

    def test_phase_damping_kills_coherence(self):
        rho = 0.5 * np.ones((2, 2), dtype=complex)
        out = phase_damping_channel(1.0).apply_to(rho)
        assert abs(out[0, 1]) == pytest.approx(0.0)
        assert out[0, 0] == pytest.approx(0.5)

    def test_thermal_relaxation_t2_coherence_decay(self):
        duration, t1, t2 = 100.0, 300.0, 150.0
        rho = 0.5 * np.ones((2, 2), dtype=complex)
        out = thermal_relaxation_channel(duration, t1, t2).apply_to(rho)
        assert abs(out[0, 1]) == pytest.approx(0.5 * math.exp(-duration / t2), rel=1e-6)

    def test_thermal_relaxation_t1_population_decay(self):
        duration, t1, t2 = 50.0, 200.0, 100.0
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = thermal_relaxation_channel(duration, t1, t2).apply_to(rho)
        assert out[1, 1] == pytest.approx(math.exp(-duration / t1), rel=1e-6)

    def test_unitary_channel(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = unitary_channel(x).apply_to(rho)
        assert out[1, 1] == pytest.approx(1.0)

    def test_compose_applies_in_order(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        first = unitary_channel(x)
        second = amplitude_damping_channel(1.0)
        composed = compose_channels(first, second)
        rho = np.diag([1.0, 0.0]).astype(complex)
        # X then full damping: |0> -> |1> -> |0>.
        out = composed.apply_to(rho)
        assert out[0, 0] == pytest.approx(1.0)


class TestValidation:
    def test_empty_channel_rejected(self):
        with pytest.raises(SimulationError):
            KrausChannel(())

    def test_probability_range_checked(self):
        with pytest.raises(SimulationError):
            depolarizing_channel(1.5)
        with pytest.raises(SimulationError):
            amplitude_damping_channel(-0.1)

    def test_unphysical_t2_rejected(self):
        with pytest.raises(SimulationError, match="T2"):
            thermal_relaxation_channel(10.0, 10.0, 30.0)

    def test_compose_dim_mismatch(self):
        with pytest.raises(SimulationError):
            compose_channels(identity_channel(1), identity_channel(2))

    def test_mismatched_kraus_shapes_rejected(self):
        with pytest.raises(SimulationError):
            KrausChannel((np.eye(2), np.eye(4)))


class TestReadoutError:
    def test_assignment_fidelity(self):
        error = ReadoutError(p0_given_1=0.08, p1_given_0=0.02)
        assert error.assignment_fidelity == pytest.approx(0.95)

    def test_confusion_matrix_columns_stochastic(self):
        error = ReadoutError(0.1, 0.03)
        confusion = error.confusion_matrix()
        assert np.allclose(confusion.sum(axis=0), 1.0)

    def test_flip_statistics(self):
        error = ReadoutError(p0_given_1=0.5, p1_given_0=0.0)
        rng = np.random.default_rng(0)
        flips = sum(error.flip(1, rng) == 0 for _ in range(4000))
        assert 1800 < flips < 2200

    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError):
            ReadoutError(1.2, 0.0)
