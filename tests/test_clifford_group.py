"""Tests for the enumerated 1- and 2-qubit Clifford groups."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.linalg import unitaries_equal_up_to_phase
from repro.sim.clifford_group import (
    CliffordGroup,
    clifford_group,
    inverse_word,
    tableau_key,
    word_tableau,
)
from repro.sim.stabilizer import StabilizerTableau


@pytest.fixture(scope="module")
def group1():
    return clifford_group(1)


@pytest.fixture(scope="module")
def group2():
    return clifford_group(2)


class TestEnumeration:
    def test_group_orders(self, group1, group2):
        assert len(group1) == 24
        assert len(group2) == 11_520

    def test_cached_accessor(self, group2):
        assert clifford_group(2) is group2

    def test_unsupported_width(self):
        with pytest.raises(SimulationError):
            CliffordGroup(3)

    def test_identity_has_empty_word(self, group2):
        identity_key = tableau_key(StabilizerTableau(2))
        assert group2.element(identity_key).word == ()

    def test_unknown_key(self, group2):
        with pytest.raises(SimulationError):
            group2.element(b"nonsense")

    def test_words_are_short(self, group2):
        longest = max(
            len(group2.element(k).word) for k in group2._elements
        )
        assert longest <= 12  # BFS diameter over the generator set

    def test_one_qubit_group_matches_matrix_enumeration(self, group1):
        # Cross-check against the matrix-level 24-element group.
        from repro.circuit.clifford import single_qubit_clifford_group

        matrix_group = single_qubit_clifford_group()
        for key in group1._elements:
            circuit = group1.element(key).circuit()
            if len(circuit) == 0:
                continue
            unitary = circuit.unitary()
            assert any(
                unitaries_equal_up_to_phase(unitary, m.matrix)
                for m in matrix_group
            )


class TestInverses:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_inverse_composes_to_identity(self, seed):
        group = clifford_group(2)
        rng = np.random.default_rng(seed)
        element = group.sample(rng)
        inverse = group.inverse(element.key)
        identity_key = tableau_key(StabilizerTableau(2))
        assert group.key_of_word(element.word + inverse.word) == identity_key

    def test_inverse_word_reverses(self):
        word = (("s", (0,)), ("h", (0,)), ("cnot", (0, 1)))
        inv = inverse_word(word)
        assert inv == (("cnot", (0, 1)), ("h", (0,)), ("sdg", (0,)))

    def test_compose_keys(self):
        group = clifford_group(2)
        h_key = group.key_of_word((("h", (0,)),))
        composed = group.compose_keys(h_key, h_key)
        assert composed == tableau_key(StabilizerTableau(2))


class TestSampling:
    def test_uniformish_sampling(self, group1):
        rng = np.random.default_rng(3)
        seen = {group1.sample(rng).key for _ in range(2000)}
        assert len(seen) == 24

    def test_sampling_deterministic_with_seed(self, group2):
        a = group2.sample(np.random.default_rng(9)).key
        b = group2.sample(np.random.default_rng(9)).key
        assert a == b


class TestCircuits:
    def test_circuit_on_custom_qubits(self, group2):
        rng = np.random.default_rng(1)
        element = group2.sample(rng)
        circuit = element.circuit(qubits=(4, 6))
        for gate in circuit:
            assert set(gate.qubits) <= {4, 6}

    def test_circuit_matches_tableau(self, group2):
        rng = np.random.default_rng(2)
        for _ in range(5):
            element = group2.sample(rng)
            rebuilt = word_tableau(2, element.word)
            assert tableau_key(rebuilt) == element.key

    def test_wrong_qubit_count_rejected(self, group2):
        element = group2.sample(np.random.default_rng(0))
        with pytest.raises(SimulationError):
            element.circuit(qubits=(0,))
