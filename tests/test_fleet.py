"""The device fleet: replicas, the affinity-aware router, bit-equivalence.

The tentpole invariants, pinned here: a 1-replica fleet compile is
**bit-identical** (sequence, trace, final counts) to
:func:`~repro.service.run_standalone`, and a fixed request is
bit-identical regardless of how *other* tenants' batches are routed
across a {2, 4}-replica fleet — the reference for any fleet request is
``run_standalone(fleet.replicas[i].adjust(spec))`` for the replica it
ran on. On top of that: the router's stickiness/pinning/replay/score
policy, the replica ledger the router reads, the Backend facade's
accounting, per-replica dedup partitioning, and the ``fleet.*``
observability surface.
"""

from dataclasses import replace

import pytest

from repro.exceptions import ServiceError
from repro.fleet import (
    FleetBackend,
    FleetReplica,
    FleetRouter,
    FleetService,
    FleetSpec,
    ReplicaSpec,
)
from repro.service import AngelService, RequestSpec, run_standalone

#: Small, fast request specs (probe budgets matching the service tests).
_GHZ = RequestSpec(program="GHZ_n4", shots=64, probe_shots=16, drift_hours=0.5)
_BV = RequestSpec(program="BV_n4", shots=64, probe_shots=16, drift_hours=0.5)

_STANDALONE_CACHE = {}


def _reference(spec: RequestSpec):
    """Memoized standalone outcome for a spec (the ground truth)."""
    if spec not in _STANDALONE_CACHE:
        _STANDALONE_CACHE[spec] = run_standalone(spec)
    return _STANDALONE_CACHE[spec]


def _assert_bit_identical(outcome, reference) -> None:
    assert outcome.result.sequence == reference.result.sequence
    assert outcome.result.trace == reference.result.trace
    assert (
        outcome.result.reference_sequence
        == reference.result.reference_sequence
    )
    assert outcome.final_counts == reference.final_counts
    assert outcome.probes_run == reference.probes_run


# ---------------------------------------------------------------------------
# Replica specs: frozen recipes
# ---------------------------------------------------------------------------
class TestReplicaSpec:
    def test_identity_replica_leaves_spec_unchanged(self):
        spec = ReplicaSpec(index=0, name="replica-0")
        assert spec.is_identity
        assert spec.adjust(_GHZ) == _GHZ

    def test_adjust_rewrites_device_recipe(self):
        spec = ReplicaSpec(
            index=2,
            name="replica-2",
            seed_offset=2018,
            calibration_seed_offset=14,
            drift_offset_hours=3.0,
        )
        adjusted = spec.adjust(_GHZ)
        assert adjusted.seed == _GHZ.seed + 2018
        assert adjusted.calibration_seed == _GHZ.calibration_seed + 14
        assert adjusted.drift_hours == pytest.approx(
            _GHZ.drift_hours + 3.0
        )
        # No fault override => the request's own profile survives.
        assert adjusted.fault_profile == _GHZ.fault_profile
        assert adjusted.fault_seed == _GHZ.fault_seed

    def test_fault_profile_override(self):
        spec = ReplicaSpec(
            index=1,
            name="replica-1",
            fault_profile="flaky",
            fault_seed_offset=101,
        )
        adjusted = spec.adjust(_GHZ)
        assert adjusted.fault_profile == "flaky"
        assert adjusted.fault_seed == _GHZ.fault_seed + 101

    def test_validation(self):
        with pytest.raises(ServiceError):
            ReplicaSpec(index=-1, name="bad")
        with pytest.raises(ServiceError):
            ReplicaSpec(index=0, name="bad", calibration_window_hours=0.0)


class TestFleetSpec:
    def test_create_strides_and_identity_head(self):
        fleet = FleetSpec.create(3, stagger_hours=2.0)
        assert fleet.size == 3
        assert fleet.replicas[0].is_identity
        assert fleet.replicas[1].seed_offset == 1009
        assert fleet.replicas[2].seed_offset == 2018
        assert fleet.replicas[2].drift_offset_hours == pytest.approx(4.0)

    def test_fault_profiles_cycle_over_tail_replicas_only(self):
        fleet = FleetSpec.create(4, fault_profiles=("flaky", "slow"))
        assert fleet.replicas[0].fault_profile is None  # identity head
        assert fleet.replicas[1].fault_profile == "flaky"
        assert fleet.replicas[2].fault_profile == "slow"
        assert fleet.replicas[3].fault_profile == "flaky"

    def test_validation(self):
        with pytest.raises(ServiceError):
            FleetSpec.create(0)
        with pytest.raises(ServiceError):
            FleetSpec.create(2, seed_stride=0)
        with pytest.raises(ServiceError):
            FleetSpec(
                replicas=(ReplicaSpec(index=1, name="misnumbered"),)
            )
        with pytest.raises(ServiceError):
            FleetSpec(
                replicas=(
                    ReplicaSpec(index=0, name="drifted", seed_offset=7),
                )
            )


# ---------------------------------------------------------------------------
# Replica ledger: the signals the router reads
# ---------------------------------------------------------------------------
class TestFleetReplica:
    def test_batch_accounting(self):
        replica = FleetReplica(ReplicaSpec(index=0, name="replica-0"))
        assert replica.begin_batch(3) == 3
        assert replica.begin_batch(2) == 5
        replica.finish_batch(3, device_time_us=600.0)
        assert replica.queue_depth == 2
        replica.finish_batch(2, device_time_us=400.0)
        snapshot = replica.snapshot()
        assert snapshot["queue_depth"] == 0
        assert snapshot["peak_queue_depth"] == 5
        assert snapshot["jobs"] == 5
        assert snapshot["batches"] == 2
        assert snapshot["device_time_us"] == pytest.approx(1000.0)

    def test_affinity_is_bounded_lru(self):
        replica = FleetReplica(
            ReplicaSpec(index=0, name="replica-0"), affinity_capacity=4
        )
        replica.note_signature([b"a", b"b", b"c", b"d"])
        replica.note_signature([b"e"])  # evicts the oldest (b"a")
        assert replica.affinity([b"a"]) == 0.0
        assert replica.affinity([b"e"]) == 1.0
        assert replica.affinity([b"d", b"zz"]) == 0.5
        assert replica.affinity([]) == 0.0

    def test_freshness_staggers_and_wraps(self):
        fleet = FleetSpec.create(2, stagger_hours=1.0, window_hours=4.0)
        fresh = FleetReplica(fleet.replicas[0])
        staggered = FleetReplica(fleet.replicas[1])
        assert fresh.freshness() == pytest.approx(1.0)
        assert staggered.freshness() == pytest.approx(0.75)
        # Half an hour of device time ages the window linearly...
        fresh.finish_batch(1, device_time_us=0.5 * 3_600e6)
        assert fresh.freshness() == pytest.approx(1.0 - 0.5 / 4.0)
        # ...and a full window snaps back to freshly calibrated.
        fresh.finish_batch(1, device_time_us=3.5 * 3_600e6)
        assert fresh.freshness() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Router policy
# ---------------------------------------------------------------------------
class TestFleetRouter:
    def test_deterministic_tie_break_prefers_lowest_index(self):
        service = FleetService(4, dedup=False)
        binding = service.bind("t/1", "t", _GHZ)
        assert binding.index == 0
        assert binding.decision.reason == "balance"

    def test_sticky_binding_survives_ledger_changes(self):
        service = FleetService(3, dedup=False)
        first = service.bind("t/1", "t", _GHZ)
        # Pile load onto the bound replica: stickiness must still win.
        first.replica.begin_batch(50)
        again = service.router.place(
            service.replicas, "t/1", tenant="t"
        )
        assert again.replica == first.index
        assert again.reason == "sticky"
        assert service.router.counters()["sticky_hits"] == 1
        service.release(first)
        assert service.router.binding("t/1") is None

    def test_distinct_programs_spread_by_binding_load(self):
        service = FleetService(3, dedup=False)
        placed = [
            service.bind(f"t{i}/1", f"t{i}", spec).index
            for i, spec in enumerate(
                (_GHZ, _BV, replace(_GHZ, program="QAOA_n5"))
            )
        ]
        # No shared prefixes, equal freshness: each new binding is
        # pushed off the already-loaded replicas.
        assert placed == [0, 1, 2]

    def test_same_program_tenants_colocate_by_affinity(self):
        service = FleetService(3, dedup=False)
        first = service.bind("a/1", "a", _GHZ)
        second = service.bind("b/1", "b", _GHZ)
        assert second.index == first.index
        assert second.decision.reason == "affinity"

    def test_tenant_returns_to_its_previous_replica(self):
        service = FleetService(3, dedup=False)
        first = service.bind("a/1", "a", _BV)
        service.release(first)
        # New program (no prefix affinity), yet the tenant's history
        # pulls the request back to the same replica.
        second = service.bind("a/2", "a", replace(_GHZ, program="QAOA_n5"))
        assert second.index == first.index
        assert second.decision.reason == "affinity"
        assert not second.decision.migrated

    def test_pinning_overrides_and_counts_migration(self):
        service = FleetService(3, dedup=False)
        first = service.bind("a/1", "a", _GHZ)
        assert first.index == 0
        second = service.bind("a/2", "a", replace(_GHZ, replica=2))
        assert second.index == 2
        assert second.decision.reason == "pinned"
        assert second.decision.migrated
        assert service.router.counters()["migrations"] == 1

    def test_pin_out_of_range_rejected(self):
        service = FleetService(2, dedup=False)
        with pytest.raises(ServiceError):
            service.bind("a/1", "a", replace(_GHZ, replica=5))

    def test_replay_places_verbatim_and_validates_range(self):
        service = FleetService(3, dedup=False, replay={"a/1": 2})
        assert service.bind("a/1", "a", _GHZ).index == 2
        assert service.bind("a/1", "a", _GHZ).decision.reason == "sticky"
        bad = FleetService(3, dedup=False, replay={"a/1": 9})
        with pytest.raises(ServiceError):
            bad.bind("a/1", "a", _GHZ)
        # Unlisted keys fall back to live scoring.
        assert service.bind("b/1", "b", _BV).index in range(3)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ServiceError):
            FleetRouter().place([], "a/1")

    def test_placement_map_replays_identically(self):
        first = FleetService(3, dedup=False)
        keys = [("a/1", "a", _GHZ), ("b/1", "b", _BV), ("a/2", "a", _GHZ)]
        for key, tenant, spec in keys:
            first.bind(key, tenant, spec)
        recorded = first.placement_map()
        second = FleetService(3, dedup=False, replay=recorded)
        for key, tenant, spec in keys:
            assert second.bind(key, tenant, spec).index == recorded[key]
        assert second.placement_map() == recorded


# ---------------------------------------------------------------------------
# Backend facade
# ---------------------------------------------------------------------------
class _FakeResult:
    def __init__(self, duration_us):
        self.duration_us = duration_us


class _FakeBackend:
    name = "fake"

    def submit_batch(self, jobs, parallel=False, max_workers=None):
        return [_FakeResult(10.0) for _ in jobs]

    def cache_stats(self):
        return {"hits": 7}


class _TolerantFakeBackend(_FakeBackend):
    def submit_batch_tolerant(self, jobs, parallel=False, max_workers=None):
        # Last job fails (None slot), contributing no device time.
        return [_FakeResult(10.0) for _ in jobs[:-1]] + [None]


class TestFleetBackend:
    def test_accounts_batches_to_the_replica_ledger(self):
        replica = FleetReplica(ReplicaSpec(index=0, name="replica-0"))
        backend = FleetBackend(_FakeBackend(), replica)
        results = backend.submit_batch([object()] * 3)
        assert len(results) == 3
        assert replica.queue_depth == 0
        assert replica.peak_queue_depth == 3
        assert replica.jobs == 3
        assert replica.device_time_us == pytest.approx(30.0)
        assert backend.name == "fleet[replica-0]/fake"
        # Undefined attributes resolve on the wrapped backend (the
        # executor's diff-based stats absorption relies on this).
        assert backend.cache_stats() == {"hits": 7}

    def test_tolerant_path_only_when_inner_supports_it(self):
        replica = FleetReplica(ReplicaSpec(index=0, name="replica-0"))
        plain = FleetBackend(_FakeBackend(), replica)
        # The executor probes with getattr(); the facade must not
        # pretend to support per-job failure reporting.
        assert getattr(plain, "submit_batch_tolerant", None) is None
        tolerant = FleetBackend(_TolerantFakeBackend(), replica)
        results = tolerant.submit_batch_tolerant([object()] * 3)
        assert results[-1] is None
        assert replica.jobs == 3
        # Failed slots burn no device time.
        assert replica.device_time_us == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# Tentpole: fleet-vs-standalone bit-equivalence
# ---------------------------------------------------------------------------
def test_one_replica_fleet_matches_standalone():
    with AngelService(num_workers=2, fleet=1) as service:
        outcome = service.submit("alice", _GHZ).result(timeout=300)
        report = service.fleet_report()
    _assert_bit_identical(outcome, _reference(_GHZ))
    assert outcome.fleet_replica == 0
    assert report["size"] == 1
    assert report["replicas"][0]["jobs"] > 0
    assert report["replicas"][0]["device_time_us"] > 0


@pytest.mark.parametrize("fleet_size", [2, 4])
def test_pinned_request_invariant_under_other_traffic(fleet_size):
    fleet_spec = FleetSpec.create(fleet_size, stagger_hours=1.5)
    fixed = replace(_GHZ, replica=1)
    reference = _reference(fleet_spec.replicas[1].adjust(fixed))
    noise_mixes = (
        {},  # alone on the fleet
        {"noise-0": [_BV, _GHZ]},  # free-routed neighbours
        {  # neighbours pinned onto (and off) the fixed request's replica
            "noise-0": [replace(_BV, replica=1)],
            "noise-1": [replace(_GHZ, replica=0)],
        },
    )
    for noise in noise_mixes:
        with AngelService(num_workers=3, fleet=fleet_spec) as service:
            handles = [
                service.submit(tenant, spec)
                for tenant, specs in noise.items()
                for spec in specs
            ]
            outcome = service.submit("fixed", fixed).result(timeout=300)
            for handle in handles:
                handle.result(timeout=300)
        assert outcome.fleet_replica == 1
        _assert_bit_identical(outcome, reference)


def test_outcome_reference_is_the_adjusted_replica_spec():
    # Free routing: whatever replica the router picked, the outcome is
    # bit-identical to run_standalone on that replica's adjusted spec.
    fleet_spec = FleetSpec.create(3, stagger_hours=2.0)
    with AngelService(num_workers=2, fleet=fleet_spec) as service:
        outcomes = [
            service.submit(f"t{i}", spec).result(timeout=300)
            for i, spec in enumerate((_GHZ, _BV))
        ]
    for spec, outcome in zip((_GHZ, _BV), outcomes):
        adjusted = fleet_spec.replicas[outcome.fleet_replica].adjust(spec)
        _assert_bit_identical(outcome, _reference(adjusted))


# ---------------------------------------------------------------------------
# Dedup partitioning
# ---------------------------------------------------------------------------
def test_dedup_partitions_never_cross_replicas():
    pinned = replace(_GHZ, replica=1)
    with AngelService(num_workers=1, fleet=2) as service:
        solo = service.submit("solo", pinned).result(timeout=300)
    with AngelService(num_workers=1, fleet=2) as service:
        # Warm replica 0's partition with the same program first...
        service.submit("warm", replace(_GHZ, replica=0)).result(timeout=300)
        # ...then compile on replica 1: none of those publishes may leak.
        cross = service.submit("solo", pinned).result(timeout=300)
        stats = {row["partition"]: row for row in service.store_stats()}
        assert service.store is None  # no shared store in fleet mode
    assert cross.dedup_hits == solo.dedup_hits
    _assert_bit_identical(cross, solo)
    assert stats["replica-0"]["publishes"] > 0
    assert stats["replica-1"]["publishes"] > 0


def test_same_replica_requests_still_dedup():
    with AngelService(num_workers=1, fleet=2) as service:
        first = service.submit("a", replace(_GHZ, replica=0)).result(
            timeout=300
        )
        second = service.submit("b", replace(_GHZ, replica=0)).result(
            timeout=300
        )
        stats = {row["partition"]: row for row in service.store_stats()}
    _assert_bit_identical(first, _reference(_GHZ))
    _assert_bit_identical(second, _reference(_GHZ))
    assert second.dedup_hits > 0
    assert (
        first.dedup_hits + second.dedup_hits == stats["replica-0"]["hits"]
    )


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------
def test_fleet_emits_spans_and_counters():
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs import runtime as obs

    tracer = Tracer()
    registry = MetricsRegistry()
    previous = obs.install(tracer, registry)
    try:
        with AngelService(num_workers=1, fleet=2) as service:
            service.submit("alice", replace(_GHZ, replica=1)).result(
                timeout=300
            )
    finally:
        obs.uninstall(previous)
    dispatch = [s for s in tracer.spans if s.name == "fleet.dispatch"]
    assert dispatch
    assert {s.attributes["replica"] for s in dispatch} == {"replica-1"}
    assert all(s.attributes["jobs"] > 0 for s in dispatch)
    assert all(
        s.attributes["device_time_us"] >= 0.0 for s in dispatch
    )
    counters = registry.snapshot()["counters"]
    assert counters["fleet.placements"] == 1
    assert counters["fleet.placements.pinned"] == 1
    assert counters["fleet.replica.1.placements"] == 1
    assert counters["fleet.replica.1.jobs"] > 0
    assert "fleet.replica.0.jobs" not in counters


def test_fleet_report_shape():
    with AngelService(num_workers=1, fleet=2) as service:
        service.submit("alice", _GHZ).result(timeout=300)
        report = service.fleet_report()
    assert report["size"] == 2
    names = [replica["name"] for replica in report["replicas"]]
    assert names == ["replica-0", "replica-1"]
    for replica in report["replicas"]:
        assert {
            "queue_depth",
            "peak_queue_depth",
            "jobs",
            "batches",
            "device_time_us",
            "freshness",
            "store",
        } <= set(replica)
        assert replica["queue_depth"] == 0  # drained at rest
    router = report["router"]
    assert router["placements"] == 1
    assert 0.0 <= router["affinity_hit_ratio"] <= 1.0


def test_fleet_report_none_outside_fleet_mode():
    with AngelService(num_workers=1) as service:
        assert service.fleet_report() is None
        rows = service.store_stats()
    assert [row["partition"] for row in rows] == ["shared"]
