"""Tests for the single-qubit Clifford group and nearest-Clifford lookup."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.clifford import (
    clifford_replacement_gates,
    is_clifford_matrix,
    nearest_clifford,
    single_qubit_clifford_group,
)
from repro.circuit.gates import Gate, gate_matrix, rz_matrix, u3_matrix
from repro.exceptions import CircuitError
from repro.linalg import unitaries_equal_up_to_phase


class TestGroupStructure:
    def test_group_has_24_elements(self):
        assert len(single_qubit_clifford_group()) == 24

    def test_elements_pairwise_distinct(self):
        group = single_qubit_clifford_group()
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                assert not unitaries_equal_up_to_phase(a.matrix, b.matrix)

    def test_words_reproduce_matrices(self):
        for element in single_qubit_clifford_group():
            matrix = np.eye(2, dtype=complex)
            for name in element.word:
                matrix = gate_matrix(name) @ matrix
            assert unitaries_equal_up_to_phase(matrix, element.matrix)

    def test_group_closed_under_multiplication(self):
        group = single_qubit_clifford_group()
        h = gate_matrix("h")
        for element in group:
            assert is_clifford_matrix(h @ element.matrix)

    def test_hadamard_flagged_as_hadamard_like(self):
        group = single_qubit_clifford_group()
        h_like = [e for e in group if e.hadamard_like]
        # H itself must be flagged.
        assert any(
            unitaries_equal_up_to_phase(e.matrix, gate_matrix("h")) for e in h_like
        )
        # Paulis must not be flagged.
        for name in ("x", "y", "z"):
            for e in group:
                if unitaries_equal_up_to_phase(e.matrix, gate_matrix(name)):
                    assert not e.hadamard_like

    def test_identity_not_hadamard_like(self):
        for e in single_qubit_clifford_group():
            if unitaries_equal_up_to_phase(e.matrix, np.eye(2)):
                assert not e.hadamard_like

    def test_gates_method_targets_qubit(self):
        element = single_qubit_clifford_group()[3]
        for gate in element.gates(qubit=5):
            assert gate.qubits == (5,)


class TestIsCliffordMatrix:
    def test_t_gate_not_clifford(self):
        assert not is_clifford_matrix(gate_matrix("t"))

    def test_s_gate_clifford(self):
        assert is_clifford_matrix(gate_matrix("s"))

    def test_phased_clifford_still_clifford(self):
        assert is_clifford_matrix(np.exp(1j * 0.3) * gate_matrix("h"))


class TestNearestClifford:
    def test_clifford_input_maps_to_itself(self):
        element, distance = nearest_clifford(gate_matrix("s"))
        assert distance == pytest.approx(0.0, abs=1e-9)
        assert unitaries_equal_up_to_phase(element.matrix, gate_matrix("s"))

    def test_rz_slightly_past_s_still_s(self):
        # RZ(pi/2 + 0.1) is closest to S among Cliffords.
        element, distance = nearest_clifford(rz_matrix(math.pi / 2 + 0.1))
        assert unitaries_equal_up_to_phase(element.matrix, gate_matrix("s"))
        assert 0 < distance < 0.2

    def test_rz_quarter_is_not_replaced_by_hadamard_like(self):
        element, _ = nearest_clifford(rz_matrix(math.pi / 4))
        assert not element.hadamard_like

    def test_excluding_hadamard_changes_candidates(self):
        # A gate extremely close to H: with exclusion the winner is not H.
        h = gate_matrix("h")
        with_h, _ = nearest_clifford(h, exclude_hadamard_like=False)
        without_h, dist = nearest_clifford(h, exclude_hadamard_like=True)
        assert unitaries_equal_up_to_phase(with_h.matrix, h)
        assert not unitaries_equal_up_to_phase(without_h.matrix, h)
        assert dist > 0.1

    def test_deterministic_tie_break(self):
        a = nearest_clifford(rz_matrix(math.pi / 4))[0]
        b = nearest_clifford(rz_matrix(math.pi / 4))[0]
        assert a.label == b.label

    @given(
        theta=st.floats(0, math.pi),
        phi=st.floats(0, 2 * math.pi),
        lam=st.floats(0, 2 * math.pi),
    )
    @settings(max_examples=30, deadline=None)
    def test_distance_bounded_for_any_unitary(self, theta, phi, lam):
        # Every single-qubit unitary is within operator-norm distance 2 of
        # some Clifford; in practice the 24-element net is far tighter.
        _, distance = nearest_clifford(u3_matrix(theta, phi, lam))
        assert 0.0 <= distance <= 1.6


class TestReplacementGates:
    def test_replacement_for_t_gate(self):
        gates, distance = clifford_replacement_gates(Gate("t", (3,)))
        assert all(g.qubits == (3,) for g in gates)
        assert distance < 0.5
        # T is closest to either I or S.
        matrix = np.eye(2, dtype=complex)
        for gate in gates:
            matrix = gate.matrix() @ matrix
        assert is_clifford_matrix(matrix)

    def test_rejects_two_qubit_gate(self):
        with pytest.raises(CircuitError):
            clifford_replacement_gates(Gate("cnot", (0, 1)))

    def test_rejects_measurement(self):
        with pytest.raises(CircuitError):
            clifford_replacement_gates(Gate("measure", (0,)))
