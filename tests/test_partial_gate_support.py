"""ANGEL on links that do not support all three native gates.

Real Aspen chips have such links (paper Section III-A: a few links lack
XY or CPHASE); the probe budget and the search must adapt.
"""

import pytest

from repro.compiler import transpile
from repro.core import Angel, AngelConfig, noise_adaptive_sequence
from repro.device import CalibrationService, small_test_device
from repro.programs import ghz_n4


@pytest.fixture()
def env():
    device = small_test_device(5, seed=61)
    # Remove gates: link (0,1) loses cphase, link (1,2) keeps only cz.
    del device.gate_params[((0, 1), "cphase")]
    del device.gate_params[((1, 2), "xy")]
    del device.gate_params[((1, 2), "cphase")]
    service = CalibrationService(device, seed=0)
    service.full_calibration()
    return device, service.data


class TestPartialSupport:
    def test_supported_gates_reflect_removal(self, env):
        device, _ = env
        assert device.supported_gates(0, 1) == ("xy", "cz")
        assert device.supported_gates(1, 2) == ("cz",)

    def test_noise_adaptive_respects_availability(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        sequence = noise_adaptive_sequence(
            compiled.sites, calibration, compiled.gate_options()
        )
        for site, gate in zip(sequence.sites, sequence.gates):
            assert gate in device.supported_gates(*site.link)

    def test_probe_budget_shrinks(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        angel = Angel(device, calibration, AngelConfig(probe_shots=128, seed=0))
        expected = angel.expected_probe_count(compiled)
        # 1 + sum(|options|-1) over used links; with restricted links the
        # budget is below the full-support 1+2L.
        full_budget = 1 + 2 * len(compiled.links_used())
        assert expected < full_budget

    def test_search_stays_within_available_gates(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        angel = Angel(device, calibration, AngelConfig(probe_shots=128, seed=1))
        result = angel.select(compiled)
        assert result.copycats_executed == angel.expected_probe_count(compiled)
        for site, gate in zip(result.sequence.sites, result.sequence.gates):
            assert gate in device.supported_gates(*site.link)

    def test_single_option_link_never_probed_alternatives(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        angel = Angel(device, calibration, AngelConfig(probe_shots=128, seed=2))
        result = angel.select(compiled)
        cz_only_links = [
            link
            for link in compiled.links_used()
            if device.supported_gates(*link) == ("cz",)
        ]
        for probe in result.trace.probes:
            if probe.role == "candidate":
                assert probe.link not in cz_only_links
