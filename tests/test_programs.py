"""Tests for the benchmark programs (Table I suite)."""

import math

import pytest

from repro.exceptions import ReproError
from repro.programs import (
    BenchmarkSpec,
    benchmark_suite,
    bernstein_vazirani,
    bv_n4,
    get_benchmark,
    ghz,
    ghz_n4,
    ghz_n5,
    linear_solver_n3,
    qaoa_maxcut,
    qaoa_n5,
    qec_n4,
    teleport_n2,
    toffoli_n3,
    vqe_n4,
)
from repro.sim.statevector import ideal_distribution


class TestSuiteRegistry:
    def test_table1_membership(self):
        names = [s.name for s in benchmark_suite()]
        assert names == [
            "tele_n2",
            "lin_sol_n3",
            "toff_n3",
            "GHZ_n4",
            "VQE_n4",
            "BV_n4",
            "QEC_n4",
            "QAOA_n5",
        ]

    def test_extras_include_ghz5(self):
        names = [s.name for s in benchmark_suite(include_extras=True)]
        assert "GHZ_n5" in names

    def test_specs_consistent(self):
        for spec in benchmark_suite(include_extras=True):
            circuit = spec.build()
            assert circuit.num_qubits == spec.qubits
            assert circuit.cnot_count() == spec.logical_cnots
            assert circuit.has_measurements

    def test_lookup_case_insensitive(self):
        assert get_benchmark("ghz_N4").name == "GHZ_n4"

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            get_benchmark("shor_n2048")

    def test_width_mismatch_detected(self):
        bad = BenchmarkSpec("bad", "broken", 3, 1, lambda: ghz(2))
        with pytest.raises(ReproError):
            bad.build()


class TestSemantics:
    def test_ghz_distribution(self):
        dist = ideal_distribution(ghz_n4())
        assert dist == {
            "0000": pytest.approx(0.5),
            "1111": pytest.approx(0.5),
        }

    def test_ghz5_has_81_sequence_space(self):
        assert ghz_n5().cnot_count() == 4

    def test_teleport_transfers_state(self):
        theta = math.pi / 3
        dist = ideal_distribution(teleport_n2(theta))
        # Receiver (bit 1) carries the state; sender returns to |0>.
        assert dist["00"] == pytest.approx(math.cos(theta / 2) ** 2)
        assert dist["01"] == pytest.approx(math.sin(theta / 2) ** 2)

    def test_toffoli_flips_target(self):
        dist = ideal_distribution(toffoli_n3())
        assert dist == {"111": pytest.approx(1.0)}

    def test_bv_recovers_secret(self):
        for secret in ("101", "111", "010"):
            dist = ideal_distribution(bernstein_vazirani(secret))
            assert dist[secret] == pytest.approx(1.0)

    def test_bv_rejects_bad_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani("21")
        with pytest.raises(ValueError):
            bernstein_vazirani("")

    def test_qec_syndromes_silent_without_errors(self):
        dist = ideal_distribution(qec_n4())
        # Qubits 2 (bit-flip) and 3 (phase-flip syndrome) must read 0.
        for key, prob in dist.items():
            if prob > 1e-9:
                assert key[2] == "0"
                assert key[3] == "0"

    def test_qaoa_structure(self):
        circuit = qaoa_n5()
        assert circuit.cnot_count() == 4
        dist = ideal_distribution(circuit)
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_qaoa_custom_graph(self):
        circuit = qaoa_maxcut(3, [(0, 1), (1, 2)], 0.4, 0.3)
        assert circuit.cnot_count() == 4

    def test_vqe_angle_validation(self):
        with pytest.raises(ValueError):
            vqe_n4(thetas=(0.1, 0.2))

    def test_vqe_default_deterministic(self):
        assert ideal_distribution(vqe_n4()) == ideal_distribution(vqe_n4())

    def test_linear_solver_nontrivial_output(self):
        dist = ideal_distribution(linear_solver_n3())
        assert len(dist) >= 2
