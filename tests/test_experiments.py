"""Integration tests: every registered experiment runs and reproduces
its qualitative claim at reduced budget."""

import math

import pytest

from repro.exceptions import ReproError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    run_experiment,
)

QUICK = dict(seed=23, drift_hours=12.0)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.create(**QUICK)


class TestContext:
    def test_staleness_protocol(self):
        ctx = ExperimentContext.create(seed=5, drift_hours=6.0)
        # 6h: xy/cz refreshed at least once (4h cadence), cphase not.
        assert ctx.service.staleness_us("cphase") > 5 * 3_600e6
        assert ctx.service.staleness_us("cz") < 4 * 3_600e6

    def test_unknown_device(self):
        with pytest.raises(ReproError):
            ExperimentContext.create(device_name="sycamore")

    def test_pick_link_full_support(self, context):
        link = context.pick_link()
        assert len(context.device.supported_gates(*link)) == 3

    def test_exact_vs_measured_consistent(self, context):
        from repro.experiments.characterization import micro_benchmark_circuit

        link = context.pick_link()
        circuit = micro_benchmark_circuit(link, "cz", math.pi, "y")
        ideal = {"11": 1.0}
        exact = context.exact_success_rate(circuit, ideal)
        measured = context.measured_success_rate(circuit, ideal, 4096)
        assert measured == pytest.approx(exact, abs=0.05)


class TestRegistry:
    def test_all_artifacts_registered(self):
        expected = {
            "fig1c", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig12", "fig17", "fig18", "fig19", "fig20", "fig21",
            "fig22", "table1", "table2",
            "ablation_budget", "ablation_shots", "ablation_order",
            "extension_cdr", "extension_passes", "fig18_multi",
            "fleet_transfer",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("fig99")


class TestMotivation:
    def test_fig1c(self, context):
        result = run_experiment("fig1c", context=context, shots=512)
        assert len(result.rows) == 3
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0

    def test_fig3(self, context):
        result = run_experiment("fig3", context=context, shots=256)
        values = result.series["success_rates_in_enumeration_order"]
        assert len(values) == 81
        ratio = dict((r[0], r[1]) for r in result.rows)["best / noise-adaptive"]
        assert ratio >= 1.0

    def test_fig9(self, context):
        result = run_experiment("fig9", context=context, shots=256)
        assert len(result.series["ghz_srs"]) == len(result.series["vqe_srs"])


class TestCharacterization:
    def test_fig5(self, context):
        result = run_experiment("fig5", context=context, shots=512)
        assert len(result.rows) == 5  # the theta grid
        for gate_series in result.series.values():
            assert len(gate_series) == 5

    def test_fig6_quick(self, context):
        result = run_experiment("fig6", context=context, max_links=6)
        stats = dict((r[0], r[1]) for r in result.rows)
        assert stats["links characterized"] == 6
        assert stats["circuits run"] > 0

    def test_fig7(self, context):
        result = run_experiment(
            "fig7", context=context, shots=512, cycle_gap_hours=24.0
        )
        assert len(result.rows) == 5


class TestDrift:
    def test_fig8_plateaus(self):
        ctx = ExperimentContext.create(seed=9, drift_hours=0.0)
        result = run_experiment("fig8", context=ctx, hours=12.0)
        # Reported error must plateau between refreshes for cphase
        # (24h cadence, never refreshed in 12h).
        by_gate = {row[0]: row for row in result.rows}
        cphase = by_gate.get("CPHASE")
        if cphase is not None:
            assert cphase[2] == cphase[3]  # all steps are plateau steps
        # True error must actually move.
        for name, series in result.series.items():
            if name.startswith("true_"):
                assert max(series) - min(series) > 0

    def test_fig21(self, context):
        result = run_experiment(
            "fig21", context=context, iterations=3, shots=256, probe_shots=256
        )
        assert len(result.rows) == 3
        assert len(result.series["runtime_best"]) == 3

    def test_fig22(self, context):
        result = run_experiment(
            "fig22", context=context, iterations=3, shots=256
        )
        assert sum(row[1] for row in result.rows) == 3


class TestCopycatQuality:
    def test_fig12_replacement_ordering(self, context):
        result = run_experiment("fig12", context=context, exact=True)
        sccs = {row[0]: row[1] for row in result.rows}
        # The nearest-Clifford CopyCat must imitate at least as well as
        # the deliberately-bad X replacement.
        assert sccs["nearest-Clifford CopyCat"] > sccs["X CopyCat"]

    def test_fig19_positive_correlation(self, context):
        result = run_experiment("fig19", context=context, exact=True)
        scc = dict((r[0], r[1]) for r in result.rows)["Spearman correlation"]
        assert scc > 0.5


class TestMainEval:
    def test_fig18_quick(self, context):
        result = run_experiment(
            "fig18",
            context=context,
            benchmarks=("GHZ_n4", "tele_n2"),
            final_shots=512,
            probe_shots=256,
            runtime_best_shots=128,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[1] > 0  # baseline SR
            assert row[6] >= 3  # copycats executed

    def test_fig18_multi_quick(self):
        result = run_experiment(
            "fig18_multi",
            seeds=(5,),
            benchmarks=("tele_n2",),
            drift_hours=3.0,
            final_shots=256,
            probe_shots=128,
            runtime_best_shots=64,
        )
        assert result.rows[-1][0] == "pooled"
        assert len(result.rows) == 2

    def test_table1(self, context):
        result = run_experiment("table1", context=context)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["toff_n3"][4] == 9  # routed sites (paper VI-B)
        assert by_name["GHZ_n4"][4] == 3

    def test_table2(self, context):
        result = run_experiment("table2", context=context)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["toff_n3"][3] == "19.7K"
        # ANGEL = 1 + sum(|options|-1) = 1+2L with full support.
        for row in result.rows:
            assert row[5] <= 1 + 2 * row[2]


class TestAblation:
    def test_fig20(self, context):
        result = run_experiment(
            "fig20",
            context=context,
            benchmarks=("GHZ_n4",),
            trials=1,
            probe_shots=256,
            final_shots=512,
        )
        assert len(result.rows) == 1

    def test_ablation_budget(self, context):
        result = run_experiment(
            "ablation_budget", context=context, budgets=(0, 4)
        )
        assert len(result.rows) == 2
        for budget, retained, scc, entropy in result.rows:
            assert retained <= budget
            assert -1.0 <= scc <= 1.0
            assert entropy >= 0.0

    def test_ablation_shots(self, context):
        result = run_experiment(
            "ablation_shots",
            context=context,
            shot_budgets=(64, 512),
            final_shots=512,
        )
        assert len(result.rows) == 2

    def test_ablation_order(self, context):
        result = run_experiment(
            "ablation_order",
            context=context,
            benchmarks=("GHZ_n4",),
            trials=1,
            probe_shots=256,
            final_shots=512,
        )
        assert len(result.rows) == 1


class TestExtensions:
    def test_extension_cdr_quick(self, context):
        result = run_experiment(
            "extension_cdr",
            context=context,
            benchmark="tele_n2",
            num_training=4,
            training_shots=128,
            target_shots=256,
            probe_shots=128,
        )
        assert len(result.rows) == 2
        labels = {row[0] for row in result.rows}
        assert labels == {"baseline", "ANGEL"}

    def test_extension_passes_quick(self, context):
        result = run_experiment(
            "extension_passes",
            context=context,
            benchmarks=("GHZ_n4",),
            passes=(1, 2),
            probe_shots=128,
            final_shots=256,
        )
        assert len(result.rows) == 2
        one_pass, two_pass = result.rows
        assert two_pass[2] >= one_pass[2]  # probes grow with passes


class TestFleetTransfer:
    def test_quick_transfer_study(self):
        result = run_experiment(
            "fleet_transfer",
            replicas=2,
            probe_shots=16,
            stagger_hours=6.0,
        )
        assert len(result.rows) == 2
        replica0, replica1 = result.rows
        # Replica 0 is the compile replica: its own winner trivially
        # survives at zero divergence and zero transfer cost.
        assert replica0[0] == "replica-0"
        assert replica0[2] == pytest.approx(0.0)  # divergence
        assert replica0[3] == "yes"
        assert replica0[7] == pytest.approx(0.0)  # delta
        # Replica 1 drifted independently: divergence is strictly
        # positive and both scored sequences are valid distributions.
        assert replica1[2] > 0.0
        assert 0.0 <= replica1[5] <= 1.0  # sr_transfer
        assert 0.0 <= replica1[6] <= 1.0  # sr_local
        assert "survived" in result.summary
        assert len(result.series["sr_transfer"]) == 2


class TestDeviceReport:
    def test_fig17(self, context):
        result = run_experiment("fig17", context=context, max_links=10)
        assert len(result.rows) == 10
        assert len(result.series["readout_fidelity"]) == 38
