"""Tests for the Ornstein-Uhlenbeck drift processes."""

import math

import numpy as np
import pytest

from repro.device.drift import DriftingValue, OrnsteinUhlenbeck
from repro.exceptions import DeviceError


class TestOrnsteinUhlenbeck:
    def test_initial_value_defaults_to_mean(self):
        process = OrnsteinUhlenbeck(mean=0.5, stationary_std=0.1, correlation_time=10.0)
        assert process.value == 0.5

    def test_zero_std_is_constant(self):
        process = OrnsteinUhlenbeck(mean=0.3, stationary_std=0.0, correlation_time=5.0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert process.advance(100.0, rng) == 0.3

    def test_zero_dt_is_noop(self):
        process = OrnsteinUhlenbeck(mean=0.0, stationary_std=1.0, correlation_time=1.0)
        rng = np.random.default_rng(0)
        assert process.advance(0.0, rng) == 0.0

    def test_negative_dt_rejected(self):
        process = OrnsteinUhlenbeck(mean=0.0, stationary_std=1.0, correlation_time=1.0)
        with pytest.raises(DeviceError):
            process.advance(-1.0, np.random.default_rng(0))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DeviceError):
            OrnsteinUhlenbeck(mean=0.0, stationary_std=-1.0, correlation_time=1.0)
        with pytest.raises(DeviceError):
            OrnsteinUhlenbeck(mean=0.0, stationary_std=1.0, correlation_time=0.0)

    def test_stationary_statistics(self):
        # Advance far past the correlation time repeatedly: samples should
        # match the stationary distribution (mean, std).
        process = OrnsteinUhlenbeck(mean=2.0, stationary_std=0.5, correlation_time=1.0)
        rng = np.random.default_rng(42)
        samples = [process.advance(50.0, rng) for _ in range(3000)]
        assert np.mean(samples) == pytest.approx(2.0, abs=0.05)
        assert np.std(samples) == pytest.approx(0.5, abs=0.05)

    def test_mean_reversion(self):
        process = OrnsteinUhlenbeck(
            mean=0.0, stationary_std=1.0, correlation_time=10.0, value=5.0
        )
        rng = np.random.default_rng(0)
        # One correlation time decays the offset by about 1/e.
        values = []
        for _ in range(500):
            process.value = 5.0
            values.append(process.advance(10.0, rng))
        assert np.mean(values) == pytest.approx(5.0 * math.exp(-1.0), abs=0.15)

    def test_small_steps_match_large_step_statistics(self):
        # Advancing in many small steps must equal one big step in law.
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(8)
        big, small = [], []
        for _ in range(2000):
            p1 = OrnsteinUhlenbeck(0.0, 1.0, 5.0, value=1.0)
            p1.advance(5.0, rng_a)
            big.append(p1.value)
            p2 = OrnsteinUhlenbeck(0.0, 1.0, 5.0, value=1.0)
            for _ in range(5):
                p2.advance(1.0, rng_b)
            small.append(p2.value)
        assert np.mean(big) == pytest.approx(np.mean(small), abs=0.08)
        assert np.std(big) == pytest.approx(np.std(small), abs=0.08)

    def test_equilibrate_samples_stationary(self):
        process = OrnsteinUhlenbeck(mean=1.0, stationary_std=0.2, correlation_time=3.0)
        rng = np.random.default_rng(5)
        samples = [process.equilibrate(rng) for _ in range(2000)]
        assert np.std(samples) == pytest.approx(0.2, abs=0.02)


class TestDriftingValue:
    def test_fixed_never_moves(self):
        value = DriftingValue.fixed(0.75)
        rng = np.random.default_rng(0)
        for _ in range(5):
            value.advance(1e9, rng)
        assert value.current == 0.75

    def test_clipping(self):
        value = DriftingValue(
            OrnsteinUhlenbeck(mean=0.0, stationary_std=1.0, correlation_time=1.0,
                              value=-3.0),
            low=0.0,
            high=1.0,
        )
        assert value.current == 0.0

    def test_advance_returns_clipped(self):
        value = DriftingValue(
            OrnsteinUhlenbeck(mean=5.0, stationary_std=0.0, correlation_time=1.0),
            low=0.0,
            high=1.0,
        )
        assert value.advance(10.0, np.random.default_rng(0)) == 1.0
