"""Tests for repro.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gates import gate_matrix, rx_matrix, rz_matrix, u3_matrix
from repro.linalg import (
    average_gate_fidelity,
    channel_average_fidelity,
    closest_unitary,
    entanglement_fidelity,
    is_unitary,
    kron_n,
    operator_norm,
    operator_norm_distance,
    phase_aligned,
    phase_invariant_distance,
    unitaries_equal_up_to_phase,
)


class TestIsUnitary:
    def test_identity(self):
        assert is_unitary(np.eye(4))

    def test_hadamard(self):
        assert is_unitary(gate_matrix("h"))

    def test_rejects_non_square(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_rejects_non_unitary(self):
        assert not is_unitary(np.array([[1, 0], [0, 2]]))

    def test_rejects_vector(self):
        assert not is_unitary(np.ones(4))


class TestOperatorNorm:
    def test_identity_norm_one(self):
        assert operator_norm(np.eye(3)) == pytest.approx(1.0)

    def test_scales_linearly(self):
        assert operator_norm(2.5 * np.eye(2)) == pytest.approx(2.5)

    def test_unitary_has_norm_one(self):
        assert operator_norm(gate_matrix("s")) == pytest.approx(1.0)

    def test_distance_of_orthogonal_paulis(self):
        # X - Z = [[-1, 1], [1, 1]] has singular values sqrt(2), sqrt(2).
        d = operator_norm_distance(gate_matrix("x"), gate_matrix("z"))
        assert d == pytest.approx(np.sqrt(2.0), rel=1e-9)

    def test_distance_zero_for_equal(self):
        assert operator_norm_distance(gate_matrix("h"), gate_matrix("h")) == 0.0


class TestPhaseAlignment:
    def test_aligns_global_phase(self):
        u = gate_matrix("z")
        v = -u
        aligned = phase_aligned(u, v)
        assert np.allclose(aligned, u)

    def test_equal_up_to_phase_accepts_phase(self):
        u = gate_matrix("t")
        assert unitaries_equal_up_to_phase(u, np.exp(1j * 0.7) * u)

    def test_equal_up_to_phase_rejects_different(self):
        assert not unitaries_equal_up_to_phase(gate_matrix("x"), gate_matrix("z"))

    def test_shape_mismatch_rejected(self):
        assert not unitaries_equal_up_to_phase(np.eye(2), np.eye(4))

    def test_phase_invariant_distance_ignores_phase(self):
        u = rx_matrix(0.3)
        assert phase_invariant_distance(u, np.exp(1j * 1.1) * u) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_phase_invariant_distance_positive_for_distinct(self):
        assert phase_invariant_distance(gate_matrix("x"), gate_matrix("z")) > 0.5


class TestFidelities:
    def test_entanglement_fidelity_of_self(self):
        assert entanglement_fidelity(gate_matrix("h"), gate_matrix("h")) == pytest.approx(1.0)

    def test_average_fidelity_of_self(self):
        assert average_gate_fidelity(gate_matrix("cz"), gate_matrix("cz")) == pytest.approx(1.0)

    def test_average_fidelity_of_orthogonal(self):
        # X vs I: F_e = 0, F_avg = 1/(d+1) = 1/3.
        assert average_gate_fidelity(np.eye(2), gate_matrix("x")) == pytest.approx(1 / 3)

    def test_channel_fidelity_identity_kraus(self):
        fid = channel_average_fidelity(np.eye(2), [np.eye(2)])
        assert fid == pytest.approx(1.0)

    def test_channel_fidelity_depolarizing(self):
        # Depolarizing with prob p on the identity target:
        # F_avg = 1 - 2p/3 for the standard single-qubit channel.
        p = 0.12
        kraus = [
            np.sqrt(1 - p) * np.eye(2),
            np.sqrt(p / 3) * gate_matrix("x"),
            np.sqrt(p / 3) * gate_matrix("y"),
            np.sqrt(p / 3) * gate_matrix("z"),
        ]
        fid = channel_average_fidelity(np.eye(2), kraus)
        assert fid == pytest.approx(1 - 2 * p / 3, rel=1e-9)

    @given(theta=st.floats(-np.pi, np.pi))
    @settings(max_examples=30, deadline=None)
    def test_coherent_error_average_fidelity(self, theta):
        # RZ(theta) relative to I: F_avg = (2 + cos theta... ) known closed
        # form: F_e = cos^2(theta/2); F_avg = (2 cos^2(theta/2) + 1)/3.
        fid = average_gate_fidelity(np.eye(2), rz_matrix(theta))
        expected = (2 * np.cos(theta / 2) ** 2 + 1) / 3
        assert fid == pytest.approx(expected, abs=1e-9)


class TestKronAndProjection:
    def test_kron_n_ordering(self):
        # X on the most significant qubit of two.
        full = kron_n(gate_matrix("x"), np.eye(2))
        state = np.zeros(4)
        state[0b00] = 1.0
        out = full @ state
        assert out[0b10] == pytest.approx(1.0)

    def test_kron_n_three_factors(self):
        full = kron_n(np.eye(2), np.eye(2), gate_matrix("x"))
        assert full.shape == (8, 8)
        state = np.zeros(8)
        state[0] = 1.0
        assert (full @ state)[0b001] == pytest.approx(1.0)

    def test_closest_unitary_restores_unitarity(self):
        noisy = u3_matrix(0.3, 0.4, 0.5) + 1e-3 * np.ones((2, 2))
        projected = closest_unitary(noisy)
        assert is_unitary(projected, atol=1e-9)
