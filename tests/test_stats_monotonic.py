"""Regression guards on the stats ledgers: monotonicity and rendering.

``ExecutorStats`` and ``Backend.cache_stats()`` are cumulative ledgers —
the executor diffs them before/after each batch and the metrics registry
absorbs them with never-backwards semantics, so a counter that ever
decreases across batches corrupts both. Gauges (``workers``,
``sim_prefix_bytes``, cache ``entries``/``epoch``...) are exempt: they
report current state, not accumulation.

The formatting guard pins ``to_text`` against field loss or duplication:
with pairwise-distinct sentinel values, every rendered field's value
must appear in the text exactly once.
"""

import re

import pytest

from repro.compiler import transpile
from repro.compiler.nativization import nativize
from repro.core.sequence import NativeGateSequence
from repro.device import small_test_device
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.exec.executor import ExecutorStats
from repro.programs.ghz import ghz

_HOUR_US = 3_600e6

#: Ledger keys that are gauges (point-in-time readings), not counters.
_STATS_GAUGES = frozenset({"workers", "sim_prefix_bytes"})
_CACHE_GAUGES = frozenset(
    {
        "workers",
        "entries",
        "prefix_entries",
        "prefix_bytes",
        "sim_prefix_bytes",
        "dist_entries",
        "lower_entries",
        "epoch",
    }
)


def _flatten(ledger, prefix=""):
    flat = {}
    for key, value in ledger.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = value
    return flat


def _native_jobs(device, seed0):
    compiled = transpile(ghz(3), device)
    jobs = []
    for index, gate in enumerate(("cz", "xy", "cphase")):
        sequence = NativeGateSequence.uniform(compiled.sites, gate)
        circuit = nativize(
            compiled.scheduled,
            sequence.as_site_map(),
            device.native_gates,
            name_suffix=f"_{gate}",
        )
        jobs.append(Job(circuit, 128, seed=seed0 + index, tag="probe"))
    return jobs


def _assert_monotonic(before, after, gauges, label):
    for key, value in before.items():
        base = key.rsplit(".", 1)[-1]
        if base in gauges:
            continue
        assert after.get(key, 0) >= value, (
            f"{label} counter {key} went backwards: "
            f"{value} -> {after.get(key, 0)}"
        )


class TestMonotonicity:
    def test_executor_stats_never_decrease_across_batches(self):
        device = small_test_device(seed=5)
        executor = BatchExecutor(LocalBackend(device))
        snapshots = []
        for round_number in range(4):
            executor.submit_batch(_native_jobs(device, 100 * round_number))
            if round_number == 1:
                # A drift boundary invalidates caches; the cumulative
                # ledgers must still only move forward.
                device.advance_time(2.0 * _HOUR_US)
            snapshots.append(_flatten(executor.stats.snapshot()))
        for before, after in zip(snapshots, snapshots[1:]):
            _assert_monotonic(before, after, _STATS_GAUGES, "ExecutorStats")

    def test_cache_stats_never_decrease_across_batches(self):
        device = small_test_device(seed=5)
        backend = LocalBackend(device)
        executor = BatchExecutor(backend)
        snapshots = []
        for round_number in range(4):
            executor.submit_batch(_native_jobs(device, 100 * round_number))
            if round_number == 1:
                device.advance_time(2.0 * _HOUR_US)
            snapshots.append(_flatten(backend.cache_stats()))
        for before, after in zip(snapshots, snapshots[1:]):
            _assert_monotonic(before, after, _CACHE_GAUGES, "cache_stats")

    def test_batches_make_progress(self):
        """The monotonic sweep above is not vacuous: the counting
        ledgers actually grow between rounds."""
        device = small_test_device(seed=5)
        executor = BatchExecutor(LocalBackend(device))
        executor.submit_batch(_native_jobs(device, 0))
        first = executor.stats.jobs
        executor.submit_batch(_native_jobs(device, 100))
        assert executor.stats.jobs == first + 3
        assert executor.stats.shots == 2 * 3 * 128


class TestRequestHandleTimestamps:
    """The service's queue-wait accounting is measured, not inferred:
    every :class:`~repro.service.RequestHandle` carries monotonic-clock
    stamps for enqueue (``submitted_at``), first scheduler grant
    (``scheduled_at``), and completion (``completed_at``), and the
    derived durations must be non-negative and mutually consistent."""

    def test_timestamps_monotonic_and_durations_consistent(self):
        from repro.service import AngelService, RequestSpec

        spec = RequestSpec(
            program="GHZ_n4", shots=32, probe_shots=8, drift_hours=0.5
        )
        service = AngelService(num_workers=2)
        try:
            handles = [
                service.submit("default", spec),
                service.submit(
                    "default",
                    spec.__class__(
                        program="BV_n4",
                        shots=32,
                        probe_shots=8,
                        drift_hours=0.5,
                    ),
                ),
            ]
            outcomes = [handle.result() for handle in handles]
        finally:
            service.close()
        for handle, outcome in zip(handles, outcomes):
            assert handle.scheduled_at is not None
            assert handle.completed_at is not None
            assert handle.submitted_at <= handle.scheduled_at
            assert handle.scheduled_at <= handle.completed_at
            assert handle.queue_wait_s >= 0.0
            assert handle.service_time_s >= 0.0
            assert handle.latency_s >= 0.0
            assert (
                handle.queue_wait_s + handle.service_time_s
                == pytest.approx(handle.latency_s, abs=1e-6)
            )
            # The outcome carries the same ledger the spans report.
            assert outcome.queue_wait_s == handle.queue_wait_s
            assert outcome.latency_s == handle.latency_s
            assert outcome.service_time_s == handle.service_time_s
            assert outcome.device_time_us > 0.0

    def test_live_handle_durations_are_non_negative(self):
        """Before completion the derived durations must never go
        negative (they fall back to the live clock)."""
        from repro.service.angel_service import RequestHandle

        handle = RequestHandle.__new__(RequestHandle)
        handle.submitted_at = 100.0
        handle.scheduled_at = None
        handle.completed_at = None
        assert handle.queue_wait_s >= 0.0
        assert handle.service_time_s == 0.0
        assert handle.latency_s >= 0.0
        handle.scheduled_at = 101.5
        handle.completed_at = 104.25
        assert handle.queue_wait_s == pytest.approx(1.5)
        assert handle.service_time_s == pytest.approx(2.75)
        assert handle.latency_s == pytest.approx(4.25)


class TestToTextRendering:
    def test_every_field_renders_exactly_once(self):
        """With pairwise-distinct sentinels, each field's rendered value
        appears in ``to_text`` output exactly once."""
        stats = ExecutorStats(
            jobs=101,
            batches=103,
            shots=107,
            device_time_us=109_000_000.0,  # renders as 109.000
            wall_time_s=113.25,  # renders as 113.250
            cache_hits=127,
            cache_misses=131,
            sim_dist_hits=137,
            sim_dist_misses=139,
            sim_prefix_hits=149,
            sim_prefix_misses=151,
            sim_prefix_bytes=157 * 1024,  # renders as 157 KiB
            retries=163,
            job_failures=167,
            breaker_trips=173,
            fallbacks=179,
            pool_fallbacks=181,
            workers=191,
            affinity_hits=193,
            ship_bytes=197 * 1024,  # renders as 197 KiB
            jobs_by_tag={"probe": 199},
            shots_by_tag={"probe": 211},
            wall_time_by_tag_s={"probe": 223.125},
        )
        text = stats.to_text()
        expected = {
            "jobs": "101",
            "batches": "103",
            "shots": "107",
            "device_time_us": "109.000",
            "wall_time_s": "113.250",
            "cache_hits": "127",
            "cache_misses": "131",
            "sim_dist_hits": "137",
            "sim_dist_misses": "139",
            "sim_prefix_hits": "149",
            "sim_prefix_misses": "151",
            "sim_prefix_bytes": "157",
            "retries": "163",
            "job_failures": "167",
            "breaker_trips": "173",
            "fallbacks": "179",
            "pool_fallbacks": "181",
            "workers": "191",
            "affinity_hits": "193",
            "ship_bytes": "197",
            "jobs_by_tag.probe": "199",
            "shots_by_tag.probe": "211",
            "wall_time_by_tag_s.probe": "223.125",
        }
        for fieldname, sentinel in expected.items():
            occurrences = len(
                re.findall(rf"(?<![\d.]){re.escape(sentinel)}(?![\d.])", text)
            )
            assert occurrences == 1, (
                f"{fieldname} (sentinel {sentinel}) rendered "
                f"{occurrences} times in:\n{text}"
            )

    def test_quiet_sections_are_suppressed(self):
        """All-zero optional sections (sim cache / pool / reliability)
        stay out of the rendering; the core lines remain."""
        text = ExecutorStats(jobs=2, batches=1, shots=64).to_text()
        assert "jobs: 2" in text
        assert "sim cache" not in text
        assert "worker pool" not in text
        assert "reliability" not in text

    def test_registry_text_renders_each_metric_once(self):
        """The metrics registry's own renderer never duplicates names."""
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("exec.jobs").add(3)
        registry.counter("exec.shots").add(64)
        registry.gauge("cache.workers").set(2)
        registry.histogram("span.job.wall_s").observe(0.25)
        lines = registry.to_text().splitlines()
        names = [line.split()[0] for line in lines if line.strip()]
        assert len(names) == len(set(names))
        assert set(names) == {
            "exec.jobs",
            "exec.shots",
            "cache.workers",
            "span.job.wall_s",
        }
