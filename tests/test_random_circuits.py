"""Tests for the random circuit generators."""

import numpy as np
import pytest

from repro.circuit.random_circuits import (
    random_circuit,
    random_clifford_circuit,
    random_parameterized_layer,
)


class TestRandomClifford:
    def test_only_clifford_gates(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            circuit = random_clifford_circuit(4, 25, rng)
            assert circuit.is_clifford()

    def test_depth_matches_instruction_count(self):
        rng = np.random.default_rng(1)
        circuit = random_clifford_circuit(3, 17, rng)
        assert len(circuit) == 17

    def test_two_qubit_probability_extremes(self):
        rng = np.random.default_rng(2)
        none_2q = random_clifford_circuit(3, 30, rng, two_qubit_probability=0.0)
        assert none_2q.num_two_qubit_gates() == 0
        all_2q = random_clifford_circuit(3, 30, rng, two_qubit_probability=1.0)
        assert all_2q.num_two_qubit_gates() == 30

    def test_single_qubit_register_never_draws_2q(self):
        rng = np.random.default_rng(3)
        circuit = random_clifford_circuit(1, 20, rng, two_qubit_probability=0.9)
        assert circuit.num_two_qubit_gates() == 0

    def test_seeded_reproducibility(self):
        a = random_clifford_circuit(3, 12, np.random.default_rng(7))
        b = random_clifford_circuit(3, 12, np.random.default_rng(7))
        assert a == b


class TestRandomCircuit:
    def test_parametric_gates_have_angles(self):
        rng = np.random.default_rng(4)
        circuit = random_circuit(3, 40, rng)
        for gate in circuit.gates():
            if gate.name in ("rx", "ry", "rz", "phase"):
                assert -np.pi <= gate.params[0] <= np.pi

    def test_vocabulary(self):
        rng = np.random.default_rng(5)
        circuit = random_circuit(4, 60, rng)
        allowed = {
            "x", "y", "z", "h", "s", "t", "tdg", "rx", "ry", "rz",
            "cnot", "cz", "swap", "iswap",
        }
        assert {g.name for g in circuit} <= allowed


class TestParameterizedLayer:
    def test_one_u3_per_qubit(self):
        rng = np.random.default_rng(6)
        layer = random_parameterized_layer(4, rng)
        assert len(layer) == 4
        assert all(g.name == "u3" for g in layer)

    def test_qubit_subset(self):
        rng = np.random.default_rng(7)
        layer = random_parameterized_layer(5, rng, qubits=(1, 3))
        assert [g.qubits[0] for g in layer] == [1, 3]
