"""Tests for native gate sets and CNOT decompositions (paper Fig. 2)."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import Gate, gate_matrix, u3_matrix
from repro.device.native_gates import (
    DEFAULT_PULSE_DURATIONS_NS,
    NATIVE_TWO_QUBIT_GATES,
    RIGETTI_NATIVE_GATES,
    cnot_decomposition,
    cnot_duration_ns,
    cnot_pulse_count,
    hadamard_native,
    native_two_qubit_gate_instances,
    u3_native,
)
from repro.exceptions import DeviceError
from repro.linalg import unitaries_equal_up_to_phase

CNOT_REVERSED = np.array(
    [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
)


def _circuit_unitary(gates, width=2):
    qc = QuantumCircuit(width)
    for gate in gates:
        qc.append(gate)
    return qc.unitary()


class TestDecompositionCorrectness:
    @pytest.mark.parametrize("native", NATIVE_TWO_QUBIT_GATES)
    def test_cnot_exact(self, native):
        unitary = _circuit_unitary(cnot_decomposition(native, 0, 1))
        assert unitaries_equal_up_to_phase(unitary, gate_matrix("cnot"))

    @pytest.mark.parametrize("native", NATIVE_TWO_QUBIT_GATES)
    def test_cnot_reversed_direction(self, native):
        unitary = _circuit_unitary(cnot_decomposition(native, 1, 0))
        assert unitaries_equal_up_to_phase(unitary, CNOT_REVERSED)

    @pytest.mark.parametrize("native", NATIVE_TWO_QUBIT_GATES)
    def test_decomposition_uses_only_native_gates(self, native):
        for gate in cnot_decomposition(native, 0, 1):
            assert RIGETTI_NATIVE_GATES.is_native(gate), gate

    def test_unknown_native_rejected(self):
        with pytest.raises(DeviceError):
            cnot_decomposition("cr", 0, 1)

    def test_hadamard_native(self):
        unitary = _circuit_unitary(hadamard_native(0), width=1)
        assert unitaries_equal_up_to_phase(unitary, gate_matrix("h"))

    @pytest.mark.parametrize(
        "angles", [(0.3, 0.7, -1.1), (math.pi / 2, 0.0, math.pi), (2.5, -2.0, 0.1)]
    )
    def test_u3_native(self, angles):
        unitary = _circuit_unitary(u3_native(*angles, 0), width=1)
        assert unitaries_equal_up_to_phase(unitary, u3_matrix(*angles))


class TestPulseAccounting:
    def test_pulse_counts_match_paper(self):
        # Fig. 2c: CZ one pulse, XY and CPHASE two each.
        assert cnot_pulse_count("cz") == 1
        assert cnot_pulse_count("xy") == 2
        assert cnot_pulse_count("cphase") == 2

    def test_unknown_gate_pulse_count(self):
        with pytest.raises(DeviceError):
            cnot_pulse_count("cr")

    def test_duration_scales_with_pulses(self):
        assert cnot_duration_ns("xy") == 2 * DEFAULT_PULSE_DURATIONS_NS["xy"]
        assert cnot_duration_ns("cz") == DEFAULT_PULSE_DURATIONS_NS["cz"]

    def test_pulse_instances_compose_to_entangler(self):
        # Two CPHASE(pi/2) pulses compose exactly to CZ.
        pulses = native_two_qubit_gate_instances("cphase", 0, 1)
        assert len(pulses) == 2
        unitary = _circuit_unitary(pulses)
        assert np.allclose(unitary, gate_matrix("cz"))

    def test_xy_pulse_instances(self):
        pulses = native_two_qubit_gate_instances("xy", 0, 1)
        assert len(pulses) == 2
        assert all(g.name == "xy" for g in pulses)


class TestNativeGateSet:
    def test_rx_angle_restriction(self):
        assert RIGETTI_NATIVE_GATES.is_native(Gate("rx", (0,), (math.pi / 2,)))
        assert RIGETTI_NATIVE_GATES.is_native(Gate("rx", (0,), (-math.pi,)))
        assert not RIGETTI_NATIVE_GATES.is_native(Gate("rx", (0,), (0.3,)))

    def test_rz_unrestricted(self):
        assert RIGETTI_NATIVE_GATES.is_native(Gate("rz", (0,), (0.12345,)))

    def test_two_qubit_members(self):
        assert RIGETTI_NATIVE_GATES.is_native(Gate("cz", (0, 1)))
        assert RIGETTI_NATIVE_GATES.is_native(Gate("xy", (0, 1), (math.pi,)))
        assert not RIGETTI_NATIVE_GATES.is_native(Gate("cnot", (0, 1)))

    def test_measure_and_barrier_allowed(self):
        assert RIGETTI_NATIVE_GATES.is_native(Gate("measure", (0,)))
        assert RIGETTI_NATIVE_GATES.is_native(Gate("barrier", ()))

    def test_h_not_native(self):
        assert not RIGETTI_NATIVE_GATES.is_native(Gate("h", (0,)))
