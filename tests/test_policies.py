"""Tests for selection policies: noise-adaptive, random, runtime-best."""

import numpy as np
import pytest

from repro.compiler import transpile
from repro.compiler.nativization import CnotSite
from repro.core.policies import (
    noise_adaptive_sequence,
    random_sequence,
    runtime_best,
)
from repro.device import CalibrationService, small_test_device
from repro.device.calibration import CalibrationData, CalibrationRecord
from repro.programs import ghz_n4, teleport_n2


def _sites():
    return (CnotSite(0, 0, 1), CnotSite(1, 1, 2), CnotSite(2, 0, 1))


OPTIONS = {
    (0, 1): ("xy", "cz", "cphase"),
    (1, 2): ("xy", "cz", "cphase"),
}


def _calibration(values):
    data = CalibrationData()
    for (link, gate), value in values.items():
        data.two_qubit[(link, gate)] = CalibrationRecord(value, 0.0)
    return data


class TestNoiseAdaptive:
    def test_picks_highest_calibrated(self):
        data = _calibration(
            {
                ((0, 1), "xy"): 0.95,
                ((0, 1), "cz"): 0.99,
                ((0, 1), "cphase"): 0.97,
                ((1, 2), "xy"): 0.99,
                ((1, 2), "cz"): 0.90,
                ((1, 2), "cphase"): 0.95,
            }
        )
        seq = noise_adaptive_sequence(_sites(), data, OPTIONS)
        assert seq.gates == ("cz", "xy", "cz")
        assert seq.is_link_uniform()

    def test_ignores_uncalibrated_unsupported(self):
        data = _calibration(
            {((0, 1), "cphase"): 0.9, ((1, 2), "xy"): 0.9}
        )
        seq = noise_adaptive_sequence(_sites(), data, OPTIONS)
        assert seq.gates_on_link((0, 1))[0] == "cphase"
        assert seq.gates_on_link((1, 2))[0] == "xy"

    def test_no_calibration_falls_back_to_first_option(self):
        data = _calibration({((0, 1), "cz"): 0.9})
        seq = noise_adaptive_sequence(_sites(), data, OPTIONS)
        # Link (1,2) has no records: first canonical option.
        assert seq.gates_on_link((1, 2))[0] == "xy"


class TestRandomSequence:
    def test_link_uniform_by_default(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            seq = random_sequence(_sites(), OPTIONS, rng)
            assert seq.is_link_uniform()

    def test_seeded_reproducible(self):
        a = random_sequence(_sites(), OPTIONS, np.random.default_rng(3))
        b = random_sequence(_sites(), OPTIONS, np.random.default_rng(3))
        assert a.gates == b.gates

    def test_covers_the_space(self):
        rng = np.random.default_rng(1)
        seen = {
            random_sequence(_sites(), OPTIONS, rng).gates
            for _ in range(200)
        }
        assert len(seen) == 9  # 3 x 3 link-uniform assignments

    def test_per_site_mode(self):
        rng = np.random.default_rng(2)
        seen = {
            random_sequence(_sites(), OPTIONS, rng, link_uniform=False).gates
            for _ in range(300)
        }
        assert len(seen) > 9  # escapes the link-uniform family


class TestRuntimeBest:
    @pytest.fixture(scope="class")
    def env(self):
        device = small_test_device(4, seed=19)
        service = CalibrationService(device, seed=0)
        service.full_calibration()
        return device, service.data

    def test_enumerates_full_space(self, env):
        device, calibration = env
        compiled = transpile(teleport_n2(), device, calibration)
        best, evaluations = runtime_best(
            compiled, shots=128, granularity="site", seed=1
        )
        assert len(evaluations) == 9  # 3^2 for two CNOT sites
        assert best.success_rate == max(e.success_rate for e in evaluations)

    def test_link_granularity_shrinks_space(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        _, site_evals = runtime_best(
            compiled, shots=64, granularity="site", seed=2
        )
        _, link_evals = runtime_best(
            compiled, shots=64, granularity="link", seed=2
        )
        assert len(site_evals) == 27
        assert len(link_evals) == 27  # GHZ: one CNOT per link, same space

    def test_best_beats_median(self, env):
        device, calibration = env
        compiled = transpile(ghz_n4(), device, calibration)
        best, evaluations = runtime_best(
            compiled, shots=256, granularity="link", seed=3
        )
        rates = sorted(e.success_rate for e in evaluations)
        assert best.success_rate >= rates[len(rates) // 2]
