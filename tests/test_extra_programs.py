"""Tests for the beyond-Table-I benchmark programs."""

import math

import pytest

from repro.programs import (
    adder_n4,
    benchmark_suite,
    fredkin_n3,
    get_benchmark,
    qft,
    qft_n3,
    w_state,
    w_state_n4,
)
from repro.sim.statevector import ideal_distribution


class TestWState:
    def test_uniform_one_hot(self):
        dist = ideal_distribution(w_state_n4())
        one_hot = {"0001", "0010", "0100", "1000"}
        assert set(dist) == one_hot
        for prob in dist.values():
            assert prob == pytest.approx(0.25)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_general_width(self, n):
        dist = ideal_distribution(w_state(n))
        assert len(dist) == n
        for key, prob in dist.items():
            assert key.count("1") == 1
            assert prob == pytest.approx(1.0 / n)

    def test_cnot_count(self):
        assert w_state(4).cnot_count() == 9

    def test_too_narrow(self):
        with pytest.raises(ValueError):
            w_state(1)


class TestQft:
    def test_uniform_magnitudes(self):
        dist = ideal_distribution(qft_n3())
        assert len(dist) == 8
        for prob in dist.values():
            assert prob == pytest.approx(1 / 8)

    def test_matches_dense_dft(self):
        # QFT on |111>: amplitudes are the DFT column of index 7.
        import numpy as np

        circuit = qft(3).without_measurements()
        state = circuit.unitary()[:, 0]
        n = 8
        dft_column = np.array(
            [np.exp(2j * np.pi * 7 * k / n) / np.sqrt(n) for k in range(n)]
        )
        overlap = abs(np.vdot(dft_column, state))
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            qft(0)


class TestReversibleLogic:
    def test_fredkin_swaps_on_control(self):
        dist = ideal_distribution(fredkin_n3())
        assert dist == {"101": pytest.approx(1.0)}

    def test_adder_computes_1_plus_1_plus_1(self):
        dist = ideal_distribution(adder_n4())
        # sum bit (qubit 2) = 1, carry out (qubit 3) = 1.
        assert dist == {"1111": pytest.approx(1.0)}


class TestSuiteRegistration:
    def test_extras_registered(self):
        names = {s.name for s in benchmark_suite(include_extras=True)}
        assert {"W_n4", "QFT_n3", "fredkin_n3", "adder_n4"} <= names

    def test_extras_not_in_table1(self):
        names = {s.name for s in benchmark_suite()}
        assert "W_n4" not in names

    def test_specs_consistent(self):
        for name in ("W_n4", "QFT_n3", "fredkin_n3", "adder_n4"):
            spec = get_benchmark(name)
            circuit = spec.build()
            assert circuit.cnot_count() == spec.logical_cnots
            assert circuit.num_qubits == spec.qubits
