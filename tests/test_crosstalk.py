"""Tests for the spectator ZZ-crosstalk extension."""

import math

import pytest

from repro.circuit import QuantumCircuit
from repro.device import NOISELESS_PROFILE, build_device
from repro.device.native_gates import hadamard_native
from repro.device.topology import linear_topology


def _ramsey_spectator_circuit():
    """Spectator qubit 2 in superposition while link (0,1) is pulsed.

    A ZZ kick from the neighbouring pulse rotates the spectator's phase;
    the closing Hadamard converts that phase into a population change.
    """
    qc = QuantumCircuit(3, name="ramsey_spectator")
    for gate in hadamard_native(2):
        qc.append(gate)
    qc.rx(math.pi, 1)  # prepare the spectator's pulsed neighbour in |1>
    # Four entangling pulses on link (0, 1); qubit 2 is a spectator
    # neighbouring qubit 1.
    for _ in range(4):
        qc.cz(0, 1)
    for gate in hadamard_native(2):
        qc.append(gate)
    qc.measure_all()
    return qc


class TestCrosstalk:
    def test_disabled_by_default(self):
        device = build_device(
            linear_topology(3), seed=0, profile=NOISELESS_PROFILE
        )
        assert device.crosstalk_zz == 0.0

    def test_spectator_unaffected_without_crosstalk(self):
        device = build_device(
            linear_topology(3), seed=0, profile=NOISELESS_PROFILE
        )
        dist = device.noisy_distribution(_ramsey_spectator_circuit())
        # Spectator (bit 2) returns to |0> deterministically.
        for key, prob in dist.items():
            if prob > 1e-5:
                assert key[2] == "0"

    def test_spectator_phase_kick_with_crosstalk(self):
        device = build_device(
            linear_topology(3),
            seed=0,
            profile=NOISELESS_PROFILE,
            crosstalk_zz=0.2,
        )
        dist = device.noisy_distribution(_ramsey_spectator_circuit())
        leaked = sum(p for k, p in dist.items() if k[2] == "1")
        # Four pulses x 0.2 rad ZZ -> sin^2(0.4) leakage on the spectator.
        assert leaked == pytest.approx(math.sin(0.4) ** 2, abs=0.01)

    def test_out_of_register_neighbours_ignored(self):
        # Spectator not simulated (not in the circuit): no crash, no
        # effect on the pulsed pair.
        device = build_device(
            linear_topology(3),
            seed=0,
            profile=NOISELESS_PROFILE,
            crosstalk_zz=0.3,
        )
        qc = QuantumCircuit(2, name="pair_only")
        qc.rx(math.pi, 0)
        qc.cz(0, 1)
        qc.measure_all()
        dist = device.noisy_distribution(qc)
        assert dist["10"] == pytest.approx(1.0, abs=1e-5)

    def test_crosstalk_scales_with_pulse_count(self):
        def leakage(num_pulses):
            device = build_device(
                linear_topology(3),
                seed=0,
                profile=NOISELESS_PROFILE,
                crosstalk_zz=0.1,
            )
            qc = QuantumCircuit(3, name="scaling")
            for gate in hadamard_native(2):
                qc.append(gate)
            for _ in range(num_pulses):
                qc.cz(0, 1)
            for gate in hadamard_native(2):
                qc.append(gate)
            qc.measure_all()
            dist = device.noisy_distribution(qc)
            return sum(p for k, p in dist.items() if k[2] == "1")

        assert leakage(6) > leakage(2)
