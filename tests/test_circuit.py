"""Tests for the QuantumCircuit IR."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.circuit.gates import Gate, gate_matrix
from repro.exceptions import CircuitError
from repro.linalg import is_unitary, kron_n, unitaries_equal_up_to_phase


class TestConstruction:
    def test_requires_positive_width(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_fluent_builder(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).measure_all()
        assert len(qc) == 4
        assert qc.has_measurements

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(CircuitError, match="outside register"):
            QuantumCircuit(2).x(2)

    def test_initial_instructions_copied(self):
        gates = [Gate("h", (0,))]
        qc = QuantumCircuit(1, gates)
        gates.append(Gate("x", (0,)))
        assert len(qc) == 1

    def test_cx_alias(self):
        qc = QuantumCircuit(2).cx(0, 1)
        assert qc[0].name == "cnot"

    def test_equality(self):
        a = QuantumCircuit(2).h(0).cnot(0, 1)
        b = QuantumCircuit(2).h(0).cnot(0, 1)
        assert a == b
        assert a != b.copy().x(1)


class TestQueries:
    def test_count_ops(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2).measure_all()
        ops = qc.count_ops()
        assert ops == {"h": 1, "cnot": 2, "measure": 3}

    def test_cnot_count(self):
        qc = QuantumCircuit(2).cnot(0, 1).cnot(1, 0).swap(0, 1)
        assert qc.cnot_count() == 2
        assert qc.num_two_qubit_gates() == 3

    def test_two_qubit_pairs_sorted(self):
        qc = QuantumCircuit(3).cnot(2, 0).cz(1, 2)
        assert qc.two_qubit_pairs() == [(0, 2), (1, 2)]

    def test_measured_qubits_order(self):
        qc = QuantumCircuit(3).measure(2).measure(0)
        assert qc.measured_qubits() == (2, 0)

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(2).h(0).h(1)
        assert qc.depth() == 1

    def test_depth_serial_dependency(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).x(1)
        assert qc.depth() == 3

    def test_depth_with_barrier(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.h(1)
        assert qc.depth() == 2

    def test_is_clifford(self):
        assert QuantumCircuit(2).h(0).cnot(0, 1).is_clifford()
        assert not QuantumCircuit(1).t(0).is_clifford()

    def test_non_clifford_gates_listed(self):
        qc = QuantumCircuit(1).h(0).t(0).rz(0.1, 0)
        indices = [i for i, _ in qc.non_clifford_gates()]
        assert indices == [1, 2]


class TestTransformations:
    def test_inverse_reverses_unitary(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).rz(0.4, 1)
        product = qc.unitary() @ qc.inverse().unitary()
        assert unitaries_equal_up_to_phase(product, np.eye(4))

    def test_inverse_rejects_measurements(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).measure(0).inverse()

    def test_compose(self):
        qc = QuantumCircuit(2).h(0)
        other = QuantumCircuit(2).cnot(0, 1)
        combined = qc.compose(other)
        assert [g.name for g in combined] == ["h", "cnot"]
        assert len(qc) == 1  # original untouched

    def test_compose_width_check(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).compose(QuantumCircuit(2))

    def test_remap_qubits(self):
        qc = QuantumCircuit(2).cnot(0, 1).remap_qubits([4, 2])
        assert qc[0].qubits == (4, 2)
        assert qc.num_qubits == 5

    def test_remap_requires_full_mapping(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(3).remap_qubits([0, 1])

    def test_without_measurements(self):
        qc = QuantumCircuit(1).h(0).measure(0)
        assert not qc.without_measurements().has_measurements

    def test_toffoli_unitary(self):
        qc = QuantumCircuit(3).toffoli(0, 1, 2)
        expected = np.eye(8, dtype=complex)
        # |110> <-> |111> in big-endian indexing
        expected[[6, 7]] = expected[[7, 6]]
        assert unitaries_equal_up_to_phase(qc.unitary(), expected)


class TestUnitary:
    def test_bell_state_unitary(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        state = qc.unitary() @ np.eye(4)[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = expected[0b11] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_distant_qubit_two_qubit_gate(self):
        # CNOT 0 -> 2 in a 3-qubit register.
        qc = QuantumCircuit(3).x(0).cnot(0, 2)
        state = qc.unitary() @ np.eye(8)[:, 0]
        assert abs(state[0b101]) == pytest.approx(1.0)

    def test_reversed_qubit_order_gate(self):
        # CNOT with control on the less significant qubit.
        qc = QuantumCircuit(2).x(1).cnot(1, 0)
        state = qc.unitary() @ np.eye(4)[:, 0]
        assert abs(state[0b11]) == pytest.approx(1.0)

    def test_single_qubit_expansion_matches_kron(self):
        qc = QuantumCircuit(2).h(1)
        assert np.allclose(qc.unitary(), kron_n(np.eye(2), gate_matrix("h")))

    def test_unitary_rejects_measurement(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).measure(0).unitary()

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_random_circuit_unitary_is_unitary(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(3, 10, rng)
        assert is_unitary(qc.unitary())


class TestRendering:
    def test_to_text_round_readable(self):
        text = QuantumCircuit(2, name="bell").h(0).cnot(0, 1).to_text()
        assert "bell" in text
        assert "cnot [0, 1]" in text

    def test_repr(self):
        assert "num_qubits=2" in repr(QuantumCircuit(2))
