"""Tests for the CHP stabilizer simulator, cross-validated against the
state-vector simulator on random Clifford circuits."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_clifford_circuit
from repro.exceptions import SimulationError
from repro.sim.stabilizer import StabilizerSimulator, StabilizerTableau
from repro.sim.statevector import ideal_distribution


def _dist_close(a, b, atol=1e-9):
    keys = set(a) | set(b)
    return all(abs(a.get(k, 0.0) - b.get(k, 0.0)) < atol for k in keys)


class TestTableauBasics:
    def test_initial_measurement_deterministic_zero(self):
        tableau = StabilizerTableau(3)
        for qubit in range(3):
            assert not tableau.measurement_is_random(qubit)
            assert tableau.measure(qubit) == 0

    def test_x_flips_outcome(self):
        tableau = StabilizerTableau(1)
        tableau.apply_x(0)
        assert tableau.measure(0) == 1

    def test_h_makes_outcome_random(self):
        tableau = StabilizerTableau(1)
        tableau.apply_h(0)
        assert tableau.measurement_is_random(0)

    def test_random_measurement_requires_rng(self):
        tableau = StabilizerTableau(1)
        tableau.apply_h(0)
        with pytest.raises(SimulationError):
            tableau.measure(0)

    def test_forced_outcome_collapses(self):
        tableau = StabilizerTableau(1)
        tableau.apply_h(0)
        assert tableau.measure(0, forced_outcome=1) == 1
        # Post-measurement the qubit is definite.
        assert not tableau.measurement_is_random(0)
        assert tableau.measure(0, forced_outcome=0) == 1

    def test_bell_correlation(self):
        tableau = StabilizerTableau(2)
        tableau.apply_h(0)
        tableau.apply_cnot(0, 1)
        first = tableau.measure(0, forced_outcome=1)
        second = tableau.measure(1)
        assert first == second == 1

    def test_copy_independent(self):
        tableau = StabilizerTableau(1)
        clone = tableau.copy()
        clone.apply_x(0)
        assert tableau.measure(0) == 0
        assert clone.measure(0) == 1


class TestDistribution:
    def test_ghz_distribution(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2)
        dist = StabilizerSimulator().distribution(qc)
        assert dist == {"000": pytest.approx(0.5), "111": pytest.approx(0.5)}

    def test_clifford_rotation_angles(self):
        qc = QuantumCircuit(1).rx(math.pi, 0)
        dist = StabilizerSimulator().distribution(qc)
        assert dist == {"1": pytest.approx(1.0)}

    def test_xy_pi_supported(self):
        qc = QuantumCircuit(2).x(0).xy(math.pi, 0, 1)
        dist = StabilizerSimulator().distribution(qc)
        assert dist == {"01": pytest.approx(1.0)}

    def test_cphase_pi_supported(self):
        qc = QuantumCircuit(2).h(0).h(1).cphase(math.pi, 0, 1).h(1)
        # Equivalent to h(0); cnot(0,1); h-basis -> Bell
        sv = ideal_distribution(qc)
        st_dist = StabilizerSimulator().distribution(qc)
        assert _dist_close(sv, st_dist, atol=1e-9)

    def test_non_clifford_rejected(self):
        qc = QuantumCircuit(1).t(0)
        with pytest.raises(SimulationError):
            StabilizerSimulator().distribution(qc)

    def test_non_clifford_xy_angle_rejected(self):
        qc = QuantumCircuit(2).xy(math.pi / 2, 0, 1)
        with pytest.raises(SimulationError):
            StabilizerSimulator().distribution(qc)

    def test_u3_rejected_with_hint(self):
        qc = QuantumCircuit(1).u3(0.1, 0.2, 0.3, 0)
        with pytest.raises(SimulationError, match="CopyCat"):
            StabilizerSimulator().distribution(qc)

    def test_measured_subset(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).measure(1)
        dist = StabilizerSimulator().distribution(qc)
        assert dist == {"0": pytest.approx(0.5), "1": pytest.approx(0.5)}

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_matches_statevector_on_random_clifford(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_clifford_circuit(4, 20, rng)
        sv = ideal_distribution(qc)
        tab = StabilizerSimulator().distribution(qc)
        assert _dist_close(sv, tab, atol=1e-7)

    def test_scales_beyond_statevector(self):
        # 60-qubit GHZ: trivially out of statevector range, fine here.
        qc = QuantumCircuit(60).h(0)
        for i in range(59):
            qc.cnot(i, i + 1)
        dist = StabilizerSimulator().distribution(qc)
        assert dist["0" * 60] == pytest.approx(0.5)
        assert dist["1" * 60] == pytest.approx(0.5)


class TestSampling:
    def test_sample_counts_total(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        counts = StabilizerSimulator().sample(qc, 500, np.random.default_rng(3))
        assert sum(counts.values()) == 500
        assert set(counts) <= {"00", "11"}

    def test_run_returns_measurement_outcomes(self):
        qc = QuantumCircuit(2).x(0).measure(0).measure(1)
        _, outcomes = StabilizerSimulator().run(qc, np.random.default_rng(0))
        assert outcomes == {0: 1, 1: 0}
