"""Execution-service tests: jobs, backends, executor, ANGEL equivalence."""

import numpy as np
import pytest

from repro.compiler import transpile
from repro.compiler.nativization import nativize
from repro.core.angel import Angel, AngelConfig, _CopycatNativizer
from repro.core.copycat import build_copycat
from repro.core.policies import noise_adaptive_sequence
from repro.core.search import localized_search
from repro.core.sequence import NativeGateSequence, enumerate_sequences
from repro.device import CalibrationService, small_test_device
from repro.exceptions import ExecutionError
from repro.exec import (
    BatchExecutor,
    Job,
    JobResult,
    LocalBackend,
    get_executor,
)
from repro.metrics import success_rate_from_counts
from repro.programs.ghz import ghz


def _env(seed=31, cal_seed=2):
    device = small_test_device(5, seed=seed)
    service = CalibrationService(device, seed=cal_seed)
    service.full_calibration()
    return device, service.data


def _native_ghz(device, n=4):
    compiled = transpile(ghz(n), device)
    sequence = NativeGateSequence.uniform(compiled.sites, "cz")
    return nativize(
        compiled.scheduled, sequence.as_site_map(), device.native_gates
    )


class TestJob:
    def test_rejects_nonpositive_shots(self):
        device, _ = _env()
        circuit = _native_ghz(device)
        with pytest.raises(ExecutionError):
            Job(circuit, 0)

    def test_with_id(self):
        device, _ = _env()
        job = Job(_native_ghz(device), 10, tag="probe")
        stamped = job.with_id("probe-00001")
        assert stamped.job_id == "probe-00001"
        assert job.job_id == ""  # original untouched (frozen)

    def test_result_distribution(self):
        result = JobResult("j", {"00": 3, "11": 1}, shots=4)
        assert result.distribution() == {"00": 0.75, "11": 0.25}
        empty = JobResult("j", {}, shots=0)
        with pytest.raises(ExecutionError):
            empty.distribution()


class TestLocalBackend:
    def test_submit_matches_direct_device_run(self):
        device_a, _ = _env()
        device_b, _ = _env()
        circuit = _native_ghz(device_a)
        backend = LocalBackend(device_a)
        result = backend.submit(Job(circuit, 300, seed=7, tag="t"))
        counts = device_b.run(_native_ghz(device_b), 300, seed=7)
        assert result.counts == counts
        assert result.shots == 300
        assert device_a.clock_us == device_b.clock_us
        assert result.duration_us > 0

    def test_execution_record_metadata(self):
        device, _ = _env()
        backend = LocalBackend(device)
        backend.submit(Job(_native_ghz(device), 50, seed=3, tag="probe",
                           job_id="probe-00042"))
        record = device.execution_log[-1]
        assert record.seed == 3
        assert record.tag == "probe"
        assert record.job_id == "probe-00042"

    def test_parallel_batch_matches_sequential_end_state(self):
        """Parallel batches leave the device clock where sequential does."""
        device_a, _ = _env()
        device_b, _ = _env()
        jobs_a = [
            Job(_native_ghz(device_a), 100, seed=s, tag="probe")
            for s in (1, 2, 3)
        ]
        jobs_b = [
            Job(_native_ghz(device_b), 100, seed=s, tag="probe")
            for s in (1, 2, 3)
        ]
        # max_workers=1 exercises the in-process snapshot path.
        par = LocalBackend(device_a).submit_batch(
            jobs_a, parallel=True, max_workers=1
        )
        seq = LocalBackend(device_b).submit_batch(jobs_b, parallel=False)
        assert device_a.clock_us == device_b.clock_us
        assert [r.started_at_us for r in par] == [
            r.started_at_us for r in seq
        ]
        assert all(sum(r.counts.values()) == 100 for r in par)

    def test_parallel_batch_is_deterministic(self):
        device_a, _ = _env()
        device_b, _ = _env()
        results = []
        for device in (device_a, device_b):
            jobs = [
                Job(_native_ghz(device), 100, seed=s) for s in (5, 6)
            ]
            batch = LocalBackend(device).submit_batch(
                jobs, parallel=True, max_workers=1
            )
            results.append([r.counts for r in batch])
        assert results[0] == results[1]

    def test_parallel_batch_seed_none_uses_device_stream(self):
        """seed=None parallel jobs sample from ``device.sample_rng``:
        deterministic under a fixed device seed, and consuming the same
        stream a direct unseeded run would."""
        results = []
        for _ in range(2):
            device, _ = _env(seed=41)
            jobs = [Job(_native_ghz(device), 100) for _ in range(3)]
            assert all(job.seed is None for job in jobs)
            batch = LocalBackend(device).submit_batch(
                jobs, parallel=True, max_workers=1
            )
            results.append([r.counts for r in batch])
            assert all(
                sum(r.counts.values()) == 100 for r in batch
            )
        assert results[0] == results[1]
        # A different device seed gives a different unseeded stream.
        device_c, _ = _env(seed=42)
        jobs_c = [Job(_native_ghz(device_c), 100) for _ in range(3)]
        batch_c = LocalBackend(device_c).submit_batch(
            jobs_c, parallel=True, max_workers=1
        )
        assert [r.counts for r in batch_c] != results[0]

    def test_pool_failure_falls_back_in_process(self, monkeypatch):
        """Pool breakage degrades to in-process, counted and warned once
        per backend instance (the warning flag is not process-global)."""
        import repro.exec.backend as backend_module

        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process spawning here")

        monkeypatch.setattr(backend_module, "WorkerPool", _BrokenPool)
        device, _ = _env()
        backend = LocalBackend(device)
        executor = BatchExecutor(
            backend, mode="parallel", max_workers=4
        )
        jobs = [
            Job(_native_ghz(device), 50, seed=s, tag="probe")
            for s in (1, 2)
        ]
        with pytest.warns(RuntimeWarning, match="pool unavailable"):
            results = executor.submit_batch(jobs)
        assert all(sum(r.counts.values()) == 50 for r in results)
        assert backend.pool_fallbacks == 1
        assert backend.cache_stats()["pool_fallbacks"] == 1
        assert executor.stats.pool_fallbacks == 1
        assert executor.stats.snapshot()["pool_fallbacks"] == 1
        # Second fallback: counted again, but no second warning.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            executor.submit_batch(
                [Job(_native_ghz(device), 50, seed=s) for s in (3, 4)]
            )
        assert backend.pool_fallbacks == 2
        # A fresh backend instance warns again: the flag is per-instance.
        other = LocalBackend(device)
        with pytest.warns(RuntimeWarning, match="pool unavailable"):
            other.submit_batch(
                [Job(_native_ghz(device), 50, seed=s) for s in (5, 6)],
                parallel=True,
                max_workers=4,
            )
        assert other.pool_fallbacks == 1

    def test_pool_real_errors_propagate(self, monkeypatch):
        """Non-environment exceptions are not swallowed by the fallback."""
        import repro.exec.backend as backend_module

        class _ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise ValueError("a real bug, not a sandbox")

        monkeypatch.setattr(backend_module, "WorkerPool", _ExplodingPool)
        device, _ = _env()
        backend = LocalBackend(device)
        jobs = [Job(_native_ghz(device), 50, seed=s) for s in (1, 2)]
        with pytest.raises(ValueError):
            backend.submit_batch(jobs, parallel=True, max_workers=4)
        assert backend.pool_fallbacks == 0


class TestBatchExecutor:
    def test_rejects_unknown_mode(self):
        device, _ = _env()
        with pytest.raises(ExecutionError):
            BatchExecutor(LocalBackend(device), mode="turbo")

    def test_assigns_job_ids_and_stats(self):
        device, _ = _env()
        executor = BatchExecutor(LocalBackend(device))
        circuit = _native_ghz(device)
        first = executor.submit(Job(circuit, 64, tag="probe"))
        batch = executor.submit_batch(
            [Job(circuit, 32, tag="final"), Job(circuit, 32, tag="final")]
        )
        assert first.job_id == "probe-00001"
        assert [r.job_id for r in batch] == ["final-00002", "final-00003"]
        stats = executor.stats
        assert stats.jobs == 3
        assert stats.batches == 1
        assert stats.shots == 128
        assert stats.jobs_by_tag == {"probe": 1, "final": 2}
        assert stats.shots_by_tag == {"probe": 64, "final": 64}
        assert stats.device_time_us > 0
        assert stats.cache_hits + stats.cache_misses > 0
        snapshot = stats.snapshot()
        assert snapshot["jobs"] == 3
        assert "probe" in stats.to_text()

    def test_get_executor_is_per_device_singleton(self):
        device_a, _ = _env()
        device_b, _ = _env(seed=32)
        assert get_executor(device_a) is get_executor(device_a)
        assert get_executor(device_a) is not get_executor(device_b)


class TestCopycatNativizer:
    def test_matches_reference_nativize(self):
        device, calibration = _env()
        compiled = transpile(ghz(5), device, calibration)
        copycat = build_copycat(compiled.scheduled)
        nativizer = _CopycatNativizer(copycat, device.native_gates)
        assert nativizer.num_sites == compiled.num_cnot_sites
        for number, sequence in enumerate(
            enumerate_sequences(
                compiled.sites, compiled.gate_options(), "link"
            )
        ):
            fast = nativizer.nativize(sequence, number)
            reference = nativize(
                copycat.circuit,
                sequence.as_site_map(),
                native_gates=device.native_gates,
                name_suffix=f"_probe{number}",
            )
            assert fast.name == reference.name
            assert list(fast) == list(reference)


class TestAngelEquivalence:
    def test_ghz5_sequential_matches_direct_device_loop(self):
        """The executor seam is bit-transparent for the paper's algorithm.

        An ANGEL run through the BatchExecutor (sequential mode) must
        reproduce the historical direct-``device.run`` probing loop
        exactly: same probe success rates, same learned sequence, same
        clock advancement, same number of CopyCats executed.
        """
        config = AngelConfig(probe_shots=400, seed=11)

        device_new, cal_new = _env()
        angel = Angel(device_new, cal_new, config)
        compiled_new, result = angel.compile_and_select(ghz(5))

        device_old, cal_old = _env()
        rng = np.random.default_rng(config.seed)
        compiled_old = transpile(ghz(5), device_old, cal_old)
        copycat = build_copycat(
            compiled_old.scheduled,
            max_non_clifford=config.max_non_clifford,
            exclude_hadamard_like=config.exclude_hadamard_like,
        )
        ideal = copycat.ideal_distribution()
        options = compiled_old.gate_options()
        reference = noise_adaptive_sequence(
            compiled_old.sites, cal_old, options
        )
        probes_run = 0

        def probe(sequence):
            nonlocal probes_run
            circuit = nativize(
                copycat.circuit,
                sequence.as_site_map(),
                native_gates=device_old.native_gates,
                name_suffix=f"_probe{probes_run}",
            )
            counts = device_old.run(
                circuit,
                config.probe_shots,
                seed=int(rng.integers(2**31)),
            )
            probes_run += 1
            return success_rate_from_counts(ideal, counts)

        best, trace = localized_search(
            probe, reference, options, max_passes=1
        )

        assert result.copycats_executed == probes_run
        assert result.sequence.gates == best.gates
        assert [p.success_rate for p in result.trace.probes] == [
            p.success_rate for p in trace.probes
        ]
        assert device_new.clock_us == device_old.clock_us
        assert [r.circuit_name for r in device_new.execution_log] == [
            r.circuit_name for r in device_old.execution_log
        ]
        # The new path's extra accounting: probe tags and job ids.
        assert all(
            r.tag == "probe" and r.job_id
            for r in device_new.execution_log
        )
        stats = angel.executor.stats
        assert stats.jobs_by_tag["probe"] == probes_run
        assert stats.shots == probes_run * config.probe_shots
