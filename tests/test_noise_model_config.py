"""Tests for the NoiseModel lookup table."""

import numpy as np
import pytest

from repro.circuit.gates import Gate
from repro.exceptions import SimulationError
from repro.sim.channels import ReadoutError, depolarizing_channel, two_qubit_depolarizing_channel
from repro.sim.noise_model import GateNoiseSpec, NoiseModel


class TestResolution:
    def test_exact_match_wins(self):
        model = NoiseModel()
        exact = GateNoiseSpec(channels=(depolarizing_channel(0.1),))
        blanket = GateNoiseSpec(channels=(depolarizing_channel(0.2),))
        model.set_gate_noise("rx", blanket)
        model.set_gate_noise("rx", exact, qubits=(3,))
        assert model.spec_for(Gate("rx", (3,), (0.5,))) is exact
        assert model.spec_for(Gate("rx", (4,), (0.5,))) is blanket

    def test_qubit_key_is_order_insensitive(self):
        model = NoiseModel()
        spec = GateNoiseSpec(channels=(two_qubit_depolarizing_channel(0.1),))
        model.set_gate_noise("cz", spec, qubits=(5, 2))
        assert model.spec_for(Gate("cz", (2, 5))) is spec
        assert model.spec_for(Gate("cz", (5, 2))) is spec

    def test_arity_defaults(self):
        model = NoiseModel()
        one = GateNoiseSpec(channels=(depolarizing_channel(0.1),))
        two = GateNoiseSpec(channels=(two_qubit_depolarizing_channel(0.2),))
        model.set_arity_default(1, one)
        model.set_arity_default(2, two)
        assert model.spec_for(Gate("h", (0,))) is one
        assert model.spec_for(Gate("cz", (0, 1))) is two

    def test_invalid_arity_default(self):
        with pytest.raises(SimulationError):
            NoiseModel().set_arity_default(3, GateNoiseSpec())

    def test_missing_means_noiseless(self):
        model = NoiseModel()
        assert model.spec_for(Gate("h", (0,))) is None
        assert model.callback(Gate("h", (0,))) == []

    def test_is_noiseless(self):
        model = NoiseModel()
        assert model.is_noiseless()
        model.set_readout_error(0, ReadoutError(0.1, 0.05))
        assert not model.is_noiseless()


class TestOperations:
    def test_coherent_then_channels_order(self):
        coherent = np.array([[0, 1], [1, 0]], dtype=complex)
        spec = GateNoiseSpec(
            coherent=coherent, channels=(depolarizing_channel(0.1),)
        )
        ops = spec.operations((2,))
        assert len(ops) == 2
        assert ops[0][0].label == "coherent_error"
        assert ops[0][1] == (2,)

    def test_coherent_dimension_checked(self):
        spec = GateNoiseSpec(coherent=np.eye(2, dtype=complex))
        with pytest.raises(SimulationError):
            spec.operations((0, 1))

    def test_channel_arity_checked(self):
        spec = GateNoiseSpec(channels=(depolarizing_channel(0.1),))
        with pytest.raises(SimulationError):
            spec.operations((0, 1))

    def test_readout_error_list(self):
        model = NoiseModel()
        error = ReadoutError(0.1, 0.02)
        model.set_readout_error(1, error)
        dense = model.readout_error_list(3)
        assert dense == [None, error, None]
