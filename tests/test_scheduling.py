"""Tests for ASAP scheduling and timing reports."""

import pytest

from repro.circuit import QuantumCircuit
from repro.compiler.scheduling import asap_schedule, schedule_report
from repro.sim.statevector import ideal_distribution


class TestAsapSchedule:
    def test_reorders_into_moment_order(self):
        # x(1) can run in moment 0 alongside h(0); ASAP pulls it forward.
        qc = QuantumCircuit(2).h(0).cnot(0, 1).x(1)
        # Rebuild with x(1) last but logically first-movable:
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        qc.x(1)
        scheduled = asap_schedule(qc)
        assert [g.name for g in scheduled] == ["h", "cnot", "x"]

    def test_pulls_independent_gate_forward(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        qc2 = QuantumCircuit(2)
        qc2.h(0)
        qc2.cnot(0, 1)
        qc2.x(1)
        # Construct a circuit where a later instruction belongs to
        # moment 0 (acts on an untouched qubit).
        qc3 = QuantumCircuit(3).h(0).cnot(0, 1).x(2)
        scheduled = asap_schedule(qc3)
        names = [g.name for g in scheduled]
        assert names.index("x") < names.index("cnot")

    def test_semantics_preserved(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).x(2).cnot(1, 2).measure_all()
        assert ideal_distribution(asap_schedule(qc)) == pytest.approx(
            ideal_distribution(qc)
        )

    def test_name_preserved(self):
        qc = QuantumCircuit(1, name="prog").h(0)
        assert asap_schedule(qc).name == "prog"


class TestScheduleReport:
    def test_moment_count(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).x(1)
        report = schedule_report(qc)
        assert report.num_moments == 3
        assert report.gates_per_moment == (1, 1, 1)

    def test_busy_and_idle(self):
        qc = QuantumCircuit(2).h(0).x(0).z(0)
        report = schedule_report(qc)
        assert report.busy_moments_per_qubit[0] == 3
        assert report.idle_fraction(1) == 1.0
        assert report.idle_fraction(0) == 0.0

    def test_empty_circuit(self):
        report = schedule_report(QuantumCircuit(1))
        assert report.num_moments == 0
        assert report.idle_fraction(0) == 0.0
