"""The multi-tenant compile service: isolation, fairness, dedup.

The tentpole invariant, pinned as a matrix: a request compiled through
:class:`~repro.service.AngelService` yields **bit-identical**
``AngelResult`` sequences/traces and final counts to the same
:class:`~repro.service.RequestSpec` run through
:func:`~repro.service.run_standalone` — for any tenant mix, service
worker count, or backend (local / zero-fault remote), including a spec
whose drift lands exactly on a calibration-refresh boundary. On top of
that: cross-tenant probe dedup changes *who computes*, never *what*;
deficit round-robin bounds a light tenant's queue waits under a heavy
tenant's flood; and one tenant's flaky fault profile never perturbs
another tenant's outcome.
"""

from dataclasses import replace

import pytest

from repro.compiler import transpile
from repro.core import Angel, AngelConfig
from repro.core.sequence import NativeGateSequence
from repro.device.presets import aspen11
from repro.exceptions import ServiceError
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.experiments import ExperimentContext
from repro.programs import get_benchmark
from repro.service import (
    AdmissionError,
    AngelService,
    CloudQPUService,
    DeficitRoundRobin,
    FaultProfile,
    ProbeDistributionStore,
    RateLimitError,
    RequestSpec,
    TenantConfig,
    TokenBucket,
    replay_workload,
    run_standalone,
)
from repro.service.tenant import TenantState

#: Small, fast request specs. GHZ_n4 probes 7 CopyCats (1 + 2*3 links);
#: drift 4.0h lands exactly on the XY/CZ calibration-refresh boundary.
_SPECS = {
    "ghz": RequestSpec(
        program="GHZ_n4", shots=64, probe_shots=16, drift_hours=0.5
    ),
    "bv": RequestSpec(
        program="BV_n4", shots=64, probe_shots=16, drift_hours=0.5
    ),
    "boundary": RequestSpec(
        program="GHZ_n4", shots=64, probe_shots=16, drift_hours=4.0
    ),
}

_STANDALONE_CACHE = {}


def _reference(spec: RequestSpec):
    """Memoized standalone outcome for a spec (the ground truth)."""
    if spec not in _STANDALONE_CACHE:
        _STANDALONE_CACHE[spec] = run_standalone(spec)
    return _STANDALONE_CACHE[spec]


def _assert_bit_identical(outcome, reference) -> None:
    assert outcome.result.sequence == reference.result.sequence
    assert outcome.result.trace == reference.result.trace
    assert (
        outcome.result.reference_sequence
        == reference.result.reference_sequence
    )
    assert outcome.final_counts == reference.final_counts
    assert outcome.probes_run == reference.probes_run


def _spec_mix(num_tenants: int, backend: str):
    """A deterministic tenant->specs workload with overlapping programs."""
    keys = ["ghz", "bv", "boundary"]
    workload = {}
    for index in range(num_tenants):
        base = _SPECS[keys[index % len(keys)]]
        workload[f"t{index}"] = [replace(base, backend=backend)]
    return workload


# ---------------------------------------------------------------------------
# Tentpole: service-vs-standalone bit-equivalence matrix
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["local", "remote"])
@pytest.mark.parametrize("num_workers", [1, 4])
@pytest.mark.parametrize("num_tenants", [1, 4, 8])
def test_service_matches_standalone_matrix(
    num_tenants, num_workers, backend
):
    workload = _spec_mix(num_tenants, backend)
    outcomes = replay_workload(workload, num_workers=num_workers)
    for name, slots in outcomes.items():
        for slot, spec in zip(slots, workload[name]):
            assert not isinstance(slot, BaseException), slot
            _assert_bit_identical(slot, _reference(spec))


def test_concurrent_duplicate_specs_stay_identical():
    # Several tenants compiling the *same* spec simultaneously: dedup
    # may replay distributions across them, results must not move.
    spec = _SPECS["ghz"]
    workload = {f"t{i}": [spec, spec] for i in range(3)}
    outcomes = replay_workload(workload, num_workers=4)
    reference = _reference(spec)
    for slots in outcomes.values():
        for slot in slots:
            assert not isinstance(slot, BaseException), slot
            _assert_bit_identical(slot, reference)


def test_staggered_requests_dedup_with_identical_results():
    spec = _SPECS["ghz"]
    with AngelService(num_workers=2) as service:
        first = service.submit("alice", spec).result(timeout=120)
        second = service.submit("bob", spec).result(timeout=120)
        store_stats = service.store.stats()
    _assert_bit_identical(first, _reference(spec))
    _assert_bit_identical(second, _reference(spec))
    # The second request arrived after the first published: its probe
    # distributions (and the final) replay from the shared store.
    assert second.dedup_hits > 0
    assert first.dedup_hits + second.dedup_hits == store_stats["hits"]
    assert store_stats["publishes"] > 0


def test_dedup_disabled_still_identical():
    spec = _SPECS["ghz"]
    with AngelService(num_workers=2, dedup=False) as service:
        outcome = service.submit("solo", spec).result(timeout=120)
    assert service.store is None
    assert outcome.dedup_hits == 0
    _assert_bit_identical(outcome, _reference(spec))


# ---------------------------------------------------------------------------
# Isolation: faults on one tenant never touch another
# ---------------------------------------------------------------------------
def test_flaky_tenant_does_not_perturb_others():
    clean_spec = replace(_SPECS["ghz"], backend="remote")
    flaky_spec = replace(
        _SPECS["bv"],
        backend="remote",
        fault_profile="flaky",
        fault_seed=7,
    )
    workload = {
        "clean": [clean_spec, clean_spec],
        "flaky": [flaky_spec, flaky_spec],
    }
    outcomes = replay_workload(workload, num_workers=4)
    reference = _reference(clean_spec)
    for slot in outcomes["clean"]:
        assert not isinstance(slot, BaseException), slot
        _assert_bit_identical(slot, reference)
    # The flaky tenant itself is deterministic too: its spec pins the
    # fault stream, so its requests agree with a standalone run.
    flaky_reference = _reference(flaky_spec)
    for slot in outcomes["flaky"]:
        if isinstance(slot, BaseException):
            continue  # a permanent final-job failure is legitimate
        _assert_bit_identical(slot, flaky_reference)


def test_failed_request_resolves_handle_and_ledger():
    with AngelService(num_workers=1) as service:
        handle = service.submit(
            "oops", replace(_SPECS["ghz"], program="no_such_program")
        )
        with pytest.raises(Exception):
            handle.result(timeout=60)
        assert handle.exception(timeout=1) is not None
        service.drain()
        report = service.tenant_report()
    assert report["oops"]["failed"] == 1
    assert report["oops"]["completed"] == 0


# ---------------------------------------------------------------------------
# Fairness: DRR bounds a light tenant's waits under a heavy flood
# ---------------------------------------------------------------------------
def _p95(values):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def test_heavy_tenant_cannot_starve_light_tenant():
    heavy_spec = _SPECS["ghz"]
    light_spec = _SPECS["bv"]
    with AngelService(num_workers=2) as service:
        heavy = [service.submit("heavy", heavy_spec) for _ in range(10)]
        light = [service.submit("light", light_spec) for _ in range(2)]
        heavy_out = [h.result(timeout=600) for h in heavy]
        light_out = [h.result(timeout=600) for h in light]
        report = service.tenant_report()
    # Interleaved service: the light tenant's *last* completion must not
    # wait for the heavy backlog to clear.
    assert max(o.latency_s for o in light_out) < max(
        o.latency_s for o in heavy_out
    )
    # Bounded p95 queue-wait ratio: despite submitting 5x the work, the
    # heavy tenant cannot push the light tenant's p95 queue wait past
    # its own.
    light_p95 = _p95(report["light"]["queue_wait_s"])
    heavy_p95 = _p95(report["heavy"]["queue_wait_s"])
    assert light_p95 <= heavy_p95 * 1.5 + 1e-3
    assert report["heavy"]["completed"] == 10
    assert report["light"]["completed"] == 2


class _Unit:
    """A fake schedulable entry: the scheduler only reads ``cost``."""

    def __init__(self, cost):
        self.cost = cost


def _tenant(name, quantum, costs):
    state = TenantState(TenantConfig(name, quantum=quantum))
    state.queue.extend(_Unit(cost) for cost in costs)
    return state


def test_deficit_round_robin_accrual_and_forfeit():
    scheduler = DeficitRoundRobin()
    a = _tenant("a", 2, [6, 1])
    b = _tenant("b", 2, [1, 1, 1])
    # Round 1: a cannot afford its 6-job batch (deficit 2); b spends
    # its quantum on two 1-job units.
    picked = scheduler.next_round([a, b])
    assert [(t.name, e.cost) for t, e in picked] == [("b", 1), ("b", 1)]
    assert a.deficit == 2
    # Round 2 (cursor rotated to b): b drains and forfeits its
    # leftover deficit; a is still one quantum short.
    picked = scheduler.next_round([a, b])
    assert [(t.name, e.cost) for t, e in picked] == [("b", 1)]
    assert b.deficit == 0
    assert a.deficit == 4
    # Round 3: a finally affords the big batch, spending its whole
    # deficit — the 1-job tail waits for round 4.
    picked = scheduler.next_round([a, b])
    assert [(t.name, e.cost) for t, e in picked] == [("a", 6)]
    assert a.deficit == 0
    picked = scheduler.next_round([a, b])
    assert [(t.name, e.cost) for t, e in picked] == [("a", 1)]
    assert not a.queue


def test_deficit_round_robin_forced_progress():
    state = _tenant("big", 1, [50])
    scheduler = DeficitRoundRobin(round_budget_jobs=8)
    # Quantum 1 never reaches 50 within one round and 50 exceeds the
    # round budget — forced progress still schedules it (on credit)
    # rather than deadlocking.
    picked = scheduler.next_round([state])
    assert [e.cost for _, e in picked] == [50]
    assert state.deficit < 0


def test_deficit_round_robin_round_budget_soft_cap():
    state = _tenant("t", 100, [3] * 10)
    scheduler = DeficitRoundRobin(round_budget_jobs=7)
    picked = scheduler.next_round([state])
    # 3 + 3 fits under the 7-job budget; the third unit would cross it.
    assert [e.cost for _, e in picked] == [3, 3]
    assert len(state.queue) == 8


def test_deficit_round_robin_mid_round_drain_forfeits_deficit():
    # Quantum 6 covers both of a's units with 3 credit to spare; the
    # moment the queue drains mid-round the leftover is forfeited, so a
    # cannot bank idle credit against tenants that stay backlogged.
    a = _tenant("a", 6, [2, 1])
    b = _tenant("b", 2, [2, 2])
    scheduler = DeficitRoundRobin()
    picked = scheduler.next_round([a, b])
    assert [(t.name, e.cost) for t, e in picked] == [
        ("a", 2),
        ("a", 1),
        ("b", 2),
    ]
    assert a.deficit == 0.0  # not the leftover 3
    # New work next round starts from zero credit: one quantum only.
    a.queue.extend(_Unit(cost) for cost in [5, 2])
    picked = scheduler.next_round([a, b])
    assert [(t.name, e.cost) for t, e in picked] == [("b", 2), ("a", 5)]
    assert a.deficit == pytest.approx(1.0)
    assert len(a.queue) == 1  # the 2-job tail could not ride the drain


def test_deficit_round_robin_empty_tenant_never_accrues_or_starves():
    # An always-empty tenant is excluded from the round entirely: it
    # accrues no deficit (no unbounded credit to spend on arrival) and
    # the backlogged tenant is never held back by its presence.
    idle = _tenant("idle", 1000, [])
    busy = _tenant("busy", 2, [2] * 4)
    scheduler = DeficitRoundRobin()
    scheduled = []
    for _ in range(4):
        picked = scheduler.next_round([idle, busy])
        scheduled.extend((t.name, e.cost) for t, e in picked)
        assert idle.deficit == 0.0
    assert scheduled == [("busy", 2)] * 4
    assert not busy.queue
    # When the idle tenant finally submits, it competes from a clean
    # slate: exactly one fresh quantum of credit — 4 idle rounds banked
    # nothing — and the busy tenant still gets served the same round.
    idle.queue.extend(_Unit(cost) for cost in [1, 1500])
    busy.queue.append(_Unit(2))
    picked = scheduler.next_round([idle, busy])
    assert [(t.name, e.cost) for t, e in picked] == [
        ("idle", 1),
        ("busy", 2),
    ]
    assert idle.deficit == pytest.approx(999.0)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
def test_token_bucket_deterministic_clock():
    bucket = TokenBucket(rate=1.0, burst=2, now=0.0)
    assert bucket.try_acquire(now=0.0)
    assert bucket.try_acquire(now=0.0)
    assert not bucket.try_acquire(now=0.0)
    assert bucket.retry_after_s(now=0.0) == pytest.approx(1.0)
    assert bucket.try_acquire(now=1.0)  # one token refilled
    assert not bucket.try_acquire(now=1.0)
    assert bucket.try_acquire(now=10.0)  # refill caps at burst...
    assert bucket.try_acquire(now=10.0)
    assert not bucket.try_acquire(now=10.0)  # ...not at 9 banked tokens


def test_retry_after_hint_clamped_to_positive_floor():
    from repro.service.tenant import MIN_RETRY_AFTER_S

    # A very fast bucket refills in nanoseconds; the raw hint
    # (1 - tokens) / rate would round to ~0 and turn client backoff
    # into a hot retry loop. The hint is clamped to the floor instead.
    bucket = TokenBucket(rate=1e9, burst=1, now=0.0)
    assert bucket.try_acquire(now=0.0)
    hint = bucket.retry_after_s(now=0.0)
    assert hint >= MIN_RETRY_AFTER_S
    # 0.0 is reserved for "a token is available right now".
    assert bucket.retry_after_s(now=1.0) == 0.0
    slow = TokenBucket(rate=0.5, burst=1, now=0.0)
    assert slow.try_acquire(now=0.0)
    # Genuine waits are never shrunk by the clamp.
    assert slow.retry_after_s(now=0.0) == pytest.approx(2.0)


def test_admission_error_carries_retry_hint():
    with AngelService(
        num_workers=1,
        tenants=(TenantConfig("limited", rate=0.001, burst=1),),
    ) as service:
        service.submit("limited", _SPECS["ghz"]).result(timeout=120)
        with pytest.raises(AdmissionError) as excinfo:
            service.submit("limited", _SPECS["ghz"])
        assert excinfo.value.retry_after_s > 0
        report = service.tenant_report()
    assert report["limited"]["rejected"] == 1
    assert report["limited"]["submitted"] == 2


def test_duplicate_tenant_registration_rejected():
    with AngelService(num_workers=1) as service:
        service.add_tenant(TenantConfig("dup"))
        with pytest.raises(ServiceError):
            service.add_tenant(TenantConfig("dup"))


# ---------------------------------------------------------------------------
# Exec-layer coalescing seam: merged groups == separate batches
# ---------------------------------------------------------------------------
def _grouped_jobs(device):
    """Two groups of seeded GHZ-4 jobs against ``device``."""
    compiled = transpile(get_benchmark("GHZ_n4").build(), device)
    native_cz = compiled.nativized(
        NativeGateSequence.uniform(compiled.sites, "cz")
    )
    native_xy = compiled.nativized(
        NativeGateSequence.uniform(compiled.sites, "xy")
    )
    group_a = [
        Job(native_cz, 64, seed=101, tag="probe"),
        Job(native_xy, 64, seed=102, tag="probe"),
    ]
    group_b = [Job(native_cz, 64, seed=103, tag="probe")]
    return [group_a, group_b]


def test_submit_grouped_matches_separate_batches():
    sequential_device = aspen11(seed=23)
    sequential = BatchExecutor(LocalBackend(sequential_device))
    separate = [
        sequential.submit_batch(group)
        for group in _grouped_jobs(sequential_device)
    ]

    grouped_device = aspen11(seed=23)
    grouped_executor = BatchExecutor(LocalBackend(grouped_device))
    grouped = grouped_executor.submit_grouped(_grouped_jobs(grouped_device))

    assert len(grouped) == len(separate)
    for merged_group, separate_group in zip(grouped, separate):
        assert len(merged_group) == len(separate_group)
        for merged, single in zip(merged_group, separate_group):
            assert merged.counts == single.counts
    assert grouped_executor.stats.coalesced_groups == 2
    assert sequential.stats.coalesced_groups == 0


def test_submit_grouped_empty_and_ragged_groups():
    device = aspen11(seed=23)
    executor = BatchExecutor(LocalBackend(device))
    groups = _grouped_jobs(device)
    results = executor.submit_grouped([[], groups[0], [], groups[1]])
    assert [len(group) for group in results] == [0, 2, 0, 1]
    assert executor.submit_grouped([]) == []
    assert executor.submit_grouped([[], []]) == [[], []]


def test_backend_submit_batch_grouped_demuxes():
    flat_device = aspen11(seed=29)
    flat_results = LocalBackend(flat_device).submit_batch(
        [job for group in _grouped_jobs(flat_device) for job in group]
    )
    device = aspen11(seed=29)
    demuxed = LocalBackend(device).submit_batch_grouped(
        _grouped_jobs(device)
    )
    assert [len(group) for group in demuxed] == [2, 1]
    flattened = [result for group in demuxed for result in group]
    for merged, single in zip(flattened, flat_results):
        assert merged.counts == single.counts


# ---------------------------------------------------------------------------
# Window-aware admission
# ---------------------------------------------------------------------------
#: Deterministic windows, no stochastic faults — isolates the alignment
#: logic from fault injection.
_WINDOWED = FaultProfile(
    name="windowed",
    window_us=10_000_000.0,
    recalibration_us=500_000.0,
    max_jobs_per_window=4,
)


def _window_jobs(device, count):
    compiled = transpile(get_benchmark("GHZ_n4").build(), device)
    native = compiled.nativized(
        NativeGateSequence.uniform(compiled.sites, "cz")
    )
    return [
        Job(native, 16, seed=200 + index, tag="probe")
        for index in range(count)
    ]


def test_align_window_waits_out_quota():
    device = aspen11(seed=31)
    service = CloudQPUService(device, _WINDOWED)
    jobs = _window_jobs(device, 2)
    # Fill the window to one short of its quota: a 2-job batch bounces.
    service.execute_batch(_window_jobs(device, 3))
    with pytest.raises(RateLimitError):
        service.execute_batch(jobs)
    before = device.clock_us
    waited = service.align_window(len(jobs))
    assert waited > 0
    assert device.clock_us > before
    assert service.stats.window_aligns == 1
    assert service.stats.window_align_wait_us == pytest.approx(waited)
    outcome = service.execute_batch(jobs)
    assert outcome.failed_indices == []


def test_align_window_noop_when_window_fits():
    device = aspen11(seed=31)
    service = CloudQPUService(device, _WINDOWED)
    before = device.clock_us
    assert service.align_window(4) == 0.0
    assert device.clock_us == before
    assert service.stats.window_aligns == 0


def test_align_window_noop_without_windows():
    device = aspen11(seed=31)
    service = CloudQPUService(device)  # ZERO_FAULTS: no windows
    before = device.clock_us
    assert service.align_window(10_000) == 0.0
    assert device.clock_us == before
    state = service.window_state()
    assert state["remaining_jobs"] is None
    assert state["remaining_us"] is None


def test_execute_batch_align_window_flag():
    device = aspen11(seed=37)
    service = CloudQPUService(device, _WINDOWED)
    service.execute_batch(_window_jobs(device, 3))
    outcome = service.execute_batch(
        _window_jobs(device, 2), align_window=True
    )
    assert outcome.failed_indices == []
    assert service.stats.window_aligns == 1


# ---------------------------------------------------------------------------
# Satellite: executor stats surface dedup/coalescing
# ---------------------------------------------------------------------------
def test_executor_stats_surface_shared_and_coalesced():
    store = ProbeDistributionStore()
    spec = _SPECS["ghz"]
    run_standalone(spec, store)  # publish this spec's distributions
    context = ExperimentContext.create(
        device_name=spec.device_name,
        seed=spec.seed,
        calibration_seed=spec.calibration_seed,
        drift_hours=spec.drift_hours,
    )
    try:
        assert store.attach(context.device)
        angel = Angel(
            context.device,
            context.calibration,
            AngelConfig(
                probe_shots=spec.probe_shots, seed=spec.angel_seed
            ),
            executor=context.executor,
        )
        angel.compile_and_select(get_benchmark(spec.program).build())
        stats = context.executor.stats
        assert stats.sim_shared_hits > 0
        snapshot = stats.snapshot()
        assert snapshot["sim_shared_hits"] == stats.sim_shared_hits
        assert "sim_shared_publishes" in snapshot
        assert "coalesced_groups" in snapshot
        text = stats.to_text()
        assert "probe dedup" in text
        assert "cross-request" in text
    finally:
        context.close()


def test_probe_distribution_store_lru_and_stats():
    store = ProbeDistributionStore(max_entries=2)
    store.put(("k1",), {"00": 0.5, "11": 0.5})
    store.put(("k2",), {"01": 1.0})
    store.put(("k3",), {"10": 1.0})  # evicts k1
    assert store.get(("k1",)) is None
    assert store.get(("k2",)) == {"01": 1.0}
    stats = store.stats()
    assert stats["entries"] == 2
    assert stats["evictions"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    # Returned dicts are copies: mutation cannot poison the store.
    entry = store.get(("k3",))
    entry["10"] = 0.0
    assert store.get(("k3",)) == {"10": 1.0}


# ---------------------------------------------------------------------------
# Satellite: context lifecycle
# ---------------------------------------------------------------------------
def test_context_close_is_idempotent():
    context = ExperimentContext.create(drift_hours=0.5)
    context.close()
    context.close()  # second close is a no-op, not an error


def test_context_manager_closes():
    with ExperimentContext.create(drift_hours=0.5) as context:
        assert context.device is not None
    context.close()  # already closed by __exit__; still a no-op


def test_service_close_is_reentrant_and_rejects_after():
    service = AngelService(num_workers=1)
    service.close()
    service.close()
    with pytest.raises(ServiceError):
        service.submit("late", _SPECS["ghz"])


# ---------------------------------------------------------------------------
# Observability: spans and per-tenant counters
# ---------------------------------------------------------------------------
def test_service_emits_spans_and_tenant_counters():
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs import runtime as obs

    tracer = Tracer()
    registry = MetricsRegistry()
    previous = obs.install(tracer, registry)
    try:
        with AngelService(num_workers=2) as service:
            service.submit("alice", _SPECS["ghz"]).result(timeout=120)
            service.submit("bob", _SPECS["ghz"]).result(timeout=120)
    finally:
        obs.uninstall(previous)
    names = {span.name for span in tracer.spans}
    assert "svc.request" in names
    assert "svc.coalesce" in names
    request_spans = [s for s in tracer.spans if s.name == "svc.request"]
    assert {s.attributes["tenant"] for s in request_spans} == {
        "alice",
        "bob",
    }
    for span in request_spans:
        assert span.attributes["latency_s"] >= 0.0
        assert span.attributes["probes"] > 0
    counters = registry.snapshot()["counters"]
    assert counters["service.tenant.alice.completed"] == 1
    assert counters["service.tenant.bob.completed"] == 1
    assert counters["service.tenant.bob.dedup_hits"] > 0
