"""Tests for the load/latency harness (:mod:`repro.loadgen`).

Four layers, cheapest first:

* arrival-process generators — seeded determinism, statistical sanity,
  serialization round-trips (pure functions, no service);
* :class:`SloAnalyzer` on hand-built span fixtures — exact nearest-rank
  percentiles, host-vs-simulated clock separation, per-tenant and
  per-replica grouping, empty/degenerate inputs;
* :class:`SloPolicy` verdicts — margins, missing metrics, text table;
* one small live run through :class:`LoadGenerator` and the ``repro
  load`` CLI — outcomes bit-identical to ``run_standalone`` and the
  ``--check`` gate exiting nonzero on an intentionally tight bound (the
  acceptance-criteria demonstration).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exceptions import ReproError
from repro.loadgen import (
    ArrivalSpec,
    LoadGenerator,
    SloAnalyzer,
    SloBound,
    SloPolicy,
    TenantLoad,
    WorkloadSpec,
    arrival_offsets,
    burst_offsets,
    closed_loop_think_times,
    diurnal_offsets,
    dump_workload,
    load_workload,
    poisson_offsets,
)
from repro.obs import percentile, percentiles
from repro.service import RequestSpec, run_standalone

try:
    import yaml  # noqa: F401

    HAVE_YAML = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_YAML = False


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
class TestArrivalSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            ArrivalSpec(kind="lognormal")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "poisson", "requests": 0},
            {"kind": "poisson", "rate_rps": 0.0},
            {"kind": "burst", "bursts": 0},
            {"kind": "burst", "burst_size": 0},
            {"kind": "burst", "spacing_s": -0.1},
            {"kind": "diurnal", "base_rps": 0.0},
            {"kind": "diurnal", "base_rps": 4.0, "peak_rps": 2.0},
            {"kind": "diurnal", "period_s": 0.0},
            {"kind": "closed", "clients": 0},
            {"kind": "closed", "think_s": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ReproError):
            ArrivalSpec(**kwargs)

    def test_total_requests_per_kind(self):
        assert ArrivalSpec(kind="poisson", requests=7).total_requests == 7
        assert (
            ArrivalSpec(
                kind="burst", bursts=3, burst_size=5
            ).total_requests
            == 15
        )
        assert (
            ArrivalSpec(
                kind="closed", clients=3, requests_per_client=4
            ).total_requests
            == 12
        )

    def test_roundtrip_through_flat_dict(self):
        spec = ArrivalSpec(
            kind="burst", bursts=3, burst_size=2, jitter_s=0.5
        )
        clone = ArrivalSpec(**dataclasses.asdict(spec))
        assert clone == spec
        # And through JSON, the on-disk config path.
        assert (
            ArrivalSpec(**json.loads(json.dumps(dataclasses.asdict(spec))))
            == spec
        )


class TestArrivalGenerators:
    @pytest.mark.parametrize(
        "spec",
        [
            ArrivalSpec(kind="poisson", requests=16, rate_rps=8.0),
            ArrivalSpec(
                kind="burst", bursts=2, burst_size=4, jitter_s=0.1
            ),
            ArrivalSpec(kind="diurnal", requests=16),
            ArrivalSpec(kind="closed", clients=2, requests_per_client=3),
        ],
        ids=["poisson", "burst", "diurnal", "closed"],
    )
    def test_seeded_schedules_deterministic(self, spec):
        first = arrival_offsets(spec, seed=42)
        second = arrival_offsets(spec, seed=42)
        assert first == second
        assert len(first) == spec.total_requests
        assert first == sorted(first)
        assert all(offset >= 0.0 for offset in first)
        if spec.kind != "burst" or spec.jitter_s:
            assert arrival_offsets(spec, seed=43) != first

    def test_poisson_mean_rate_statistically_sane(self):
        spec = ArrivalSpec(kind="poisson", requests=4000, rate_rps=50.0)
        offsets = poisson_offsets(spec, seed=3)
        mean_gap = offsets[-1] / len(offsets)
        assert mean_gap == pytest.approx(1.0 / 50.0, rel=0.1)

    def test_burst_train_exact_without_jitter(self):
        spec = ArrivalSpec(
            kind="burst",
            bursts=2,
            burst_size=3,
            spacing_s=0.1,
            gap_s=5.0,
        )
        assert burst_offsets(spec, seed=0) == [
            0.0, 0.1, 0.2, 5.0, 5.1, 5.2,
        ]
        # Seed-independent when jitter is off.
        assert burst_offsets(spec, seed=99) == burst_offsets(spec, seed=0)

    def test_burst_jitter_bounded(self):
        spec = ArrivalSpec(
            kind="burst",
            bursts=2,
            burst_size=3,
            spacing_s=0.1,
            gap_s=5.0,
            jitter_s=0.05,
        )
        exact = burst_offsets(dataclasses.replace(spec, jitter_s=0.0), 0)
        jittered = burst_offsets(spec, seed=1)
        assert len(jittered) == len(exact)
        # Each jittered arrival moved at most jitter_s late (the list is
        # re-sorted, so compare multiset-wise via the sorted baseline).
        assert all(
            0.0 <= j - e <= 0.05 + 1e-12
            for j, e in zip(jittered, exact)
        )

    def test_diurnal_rate_between_base_and_peak(self):
        spec = ArrivalSpec(
            kind="diurnal",
            requests=2000,
            base_rps=5.0,
            peak_rps=50.0,
            period_s=10.0,
        )
        offsets = diurnal_offsets(spec, seed=7)
        assert len(offsets) == 2000
        empirical = len(offsets) / offsets[-1]
        assert 5.0 < empirical < 50.0
        # The long-run average of the sinusoid is the midpoint.
        assert empirical == pytest.approx(27.5, rel=0.15)

    def test_closed_loop_think_times_shape_and_determinism(self):
        spec = ArrivalSpec(
            kind="closed", clients=3, requests_per_client=4, think_s=0.2
        )
        times = closed_loop_think_times(spec, seed=5)
        assert len(times) == 3
        assert all(len(client) == 4 for client in times)
        assert times == closed_loop_think_times(spec, seed=5)
        flat = [value for client in times for value in client]
        assert all(value >= 0.0 for value in flat)
        assert np.mean(flat) == pytest.approx(0.2, rel=0.9)

    def test_closed_loop_zero_think_is_all_zeros(self):
        spec = ArrivalSpec(
            kind="closed", clients=2, requests_per_client=3, think_s=0.0
        )
        assert closed_loop_think_times(spec, seed=1) == [
            [0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0],
        ]
        assert arrival_offsets(spec, seed=1) == [0.0] * 6


# ---------------------------------------------------------------------------
# Workload specs
# ---------------------------------------------------------------------------
def _small_workload(**kwargs):
    defaults = dict(
        name="unit",
        seed=9,
        base=RequestSpec(
            program="GHZ_n4", shots=64, probe_shots=16, drift_hours=0.5
        ),
        workers=2,
        tenants=(
            TenantLoad(
                name="alice",
                arrival=ArrivalSpec(
                    kind="burst", bursts=1, burst_size=2, spacing_s=0.0
                ),
                programs=("GHZ_n4", "BV_n4"),
            ),
            TenantLoad(
                name="bob",
                arrival=ArrivalSpec(
                    kind="closed",
                    clients=1,
                    requests_per_client=2,
                    think_s=0.0,
                ),
                programs=("GHZ_n4",),
                overrides=(("shots", 128),),
            ),
        ),
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            _small_workload(tenants=())
        with pytest.raises(ReproError):
            _small_workload(workers=0)
        tenant = _small_workload().tenants[0]
        with pytest.raises(ReproError):
            _small_workload(
                tenants=(tenant, dataclasses.replace(tenant))
            )
        with pytest.raises(ReproError):
            TenantLoad(name="x", overrides=(("not_a_field", 1),))
        with pytest.raises(ReproError):
            TenantLoad(name="x", programs=())

    def test_schedule_deterministic_and_total(self):
        workload = _small_workload()
        first = workload.schedule()
        second = _small_workload().schedule()
        assert first == second
        assert len(first) == workload.total_requests == 4
        offsets = [item.offset_s for item in first]
        assert offsets == sorted(offsets)

    def test_overrides_and_program_cycle_in_schedule(self):
        schedule = _small_workload().schedule()
        alice = [item for item in schedule if item.tenant == "alice"]
        bob = [item for item in schedule if item.tenant == "bob"]
        assert [item.spec.program for item in alice] == [
            "GHZ_n4", "BV_n4",
        ]
        assert all(item.spec.shots == 128 for item in bob)
        assert all(item.client == 0 for item in bob)
        assert all(item.client is None for item in alice)

    def test_random_program_mode_seeded(self):
        tenant = TenantLoad(
            name="mix",
            arrival=ArrivalSpec(kind="poisson", requests=32),
            programs=("GHZ_n4", "BV_n4", "QAOA_n5"),
            program_mode="random",
        )
        base = RequestSpec(program="GHZ_n4")
        picks = [s.program for s in tenant.request_specs(base, seed=4)]
        assert picks == [
            s.program for s in tenant.request_specs(base, seed=4)
        ]
        assert len(set(picks)) > 1
        assert picks != [
            s.program for s in tenant.request_specs(base, seed=5)
        ]

    def test_roundtrip_dict(self):
        workload = _small_workload(
            slo=(SloBound(metric="failed", max_value=0),)
        )
        clone = WorkloadSpec.from_dict(workload.to_dict())
        assert clone == workload
        assert clone.schedule() == workload.schedule()

    def test_roundtrip_json_file(self, tmp_path):
        workload = _small_workload(
            slo=(SloBound(metric="throughput_rps", min_value=0.01),)
        )
        path = tmp_path / "workload.json"
        dump_workload(workload, path)
        assert load_workload(path) == workload

    @pytest.mark.skipif(not HAVE_YAML, reason="PyYAML not installed")
    def test_roundtrip_yaml_file(self, tmp_path):
        workload = _small_workload()
        path = tmp_path / "workload.yaml"
        dump_workload(workload, path)
        assert load_workload(path) == workload

    def test_example_workload_loads(self):
        if not HAVE_YAML:
            pytest.skip("PyYAML not installed")
        workload = load_workload("examples/workload_burst.yaml")
        assert workload.total_requests == 20
        assert len(workload.slo) == 6
        assert workload.schedule() == workload.schedule()


# ---------------------------------------------------------------------------
# Percentiles + analyzer on hand-built fixtures
# ---------------------------------------------------------------------------
class TestPercentile:
    def test_nearest_rank_exact_values(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 75) == 30.0
        assert percentile(values, 95) == 40.0
        assert percentile(values, 99) == 40.0
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile([7.0], 99) == 7.0

    def test_empty_and_bad_q(self):
        assert percentile([], 95) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        assert percentiles([1.0, 2.0]) == {
            "p50": 1.0, "p95": 2.0, "p99": 2.0,
        }


def _request_span(
    tenant,
    latency_s,
    device_time_us,
    queue_wait_s=0.1,
    service_time_s=None,
    probes=4,
    dedup_hits=2,
    replica=None,
    failed=False,
    end_wall_s=None,
):
    attributes = {
        "tenant": tenant,
        "program": "GHZ_n4",
        "latency_s": latency_s,
        "device_time_us": device_time_us,
        "queue_wait_s": queue_wait_s,
        "service_time_s": (
            service_time_s
            if service_time_s is not None
            else latency_s - queue_wait_s
        ),
        "probes": probes,
        "dedup_hits": dedup_hits,
    }
    if replica is not None:
        attributes["replica"] = replica
    if failed:
        attributes["failed"] = True
    return {
        "name": "svc.request",
        "start_wall_s": 0.0,
        "wall_time_s": (
            end_wall_s if end_wall_s is not None else latency_s
        ),
        "attributes": attributes,
    }


class TestSloAnalyzer:
    def test_exact_percentiles_and_clock_separation(self):
        # Host latencies 1..4 s; device times deliberately in a
        # *different* order so a mixed-up clock would show.
        spans = [
            _request_span("t", 1.0, 400.0),
            _request_span("t", 2.0, 300.0),
            _request_span("t", 3.0, 200.0),
            _request_span("t", 4.0, 100.0),
        ]
        report = SloAnalyzer(spans, wall_time_s=8.0).analyze()
        assert report["requests"] == report["completed"] == 4
        assert report["failed"] == 0
        assert report["latency"]["host"]["p50_s"] == 2.0
        assert report["latency"]["host"]["p95_s"] == 4.0
        assert report["latency"]["host"]["p99_s"] == 4.0
        assert report["latency"]["host"]["mean_s"] == 2.5
        assert report["latency"]["host"]["jitter_s"] == pytest.approx(
            np.std([1.0, 2.0, 3.0, 4.0])
        )
        assert report["latency"]["device"]["p50_us"] == 200.0
        assert report["latency"]["device"]["p95_us"] == 400.0
        assert report["throughput_rps"] == pytest.approx(0.5)
        assert report["dedup"]["probes"] == 16
        assert report["dedup"]["hits"] == 8
        assert report["dedup"]["ratio"] == 0.5

    def test_failed_requests_excluded_from_latency(self):
        spans = [
            _request_span("t", 1.0, 100.0),
            _request_span("t", 99.0, 9000.0, failed=True),
        ]
        report = SloAnalyzer(spans, wall_time_s=2.0).analyze()
        assert report["requests"] == 2
        assert report["completed"] == 1
        assert report["failed"] == 1
        assert report["latency"]["host"]["p99_s"] == 1.0
        assert report["throughput_rps"] == pytest.approx(0.5)

    def test_per_tenant_and_per_replica_grouping(self):
        spans = [
            _request_span("alice", 1.0, 100.0, replica=0),
            _request_span("alice", 3.0, 300.0, replica=1),
            _request_span("bob", 5.0, 500.0, replica=1),
        ]
        report = SloAnalyzer(spans, wall_time_s=6.0).analyze()
        assert set(report["per_tenant"]) == {"alice", "bob"}
        assert report["per_tenant"]["alice"]["requests"] == 2
        assert (
            report["per_tenant"]["alice"]["latency"]["host"]["p99_s"]
            == 3.0
        )
        assert (
            report["per_tenant"]["bob"]["latency"]["host"]["p50_s"]
            == 5.0
        )
        assert set(report["per_replica"]) == {"0", "1"}
        assert report["per_replica"]["1"]["requests"] == 2
        assert (
            report["per_replica"]["1"]["latency"]["device"]["p99_us"]
            == 500.0
        )

    def test_rejections_and_coalescing(self):
        spans = [
            _request_span("t", 1.0, 100.0),
            {
                "name": "svc.reject",
                "attributes": {"tenant": "t", "retry_after_s": 0.5},
            },
            {
                "name": "svc.coalesce",
                "attributes": {"units": 6, "jobs": 9},
            },
            {
                "name": "svc.coalesce",
                "attributes": {"units": 2, "jobs": 3},
            },
        ]
        report = SloAnalyzer(spans, wall_time_s=1.0).analyze()
        assert report["rejected"] == 1
        assert report["rejection_rate"] == 0.5
        assert report["coalescing"]["rounds"] == 2
        assert report["coalescing"]["units"] == 8
        assert report["coalescing"]["jobs"] == 12
        assert report["coalescing"]["mean_units_per_round"] == 4.0

    def test_empty_input_is_all_zeros(self):
        report = SloAnalyzer([]).analyze()
        assert report["requests"] == 0
        assert report["completed"] == 0
        assert report["latency"]["host"]["p99_s"] == 0.0
        assert report["throughput_rps"] == 0.0
        assert report["rejection_rate"] == 0.0
        assert report["dedup"]["ratio"] == 0.0
        assert report["coalescing"]["mean_units_per_round"] == 0.0

    def test_wall_time_falls_back_to_span_extent(self):
        spans = [
            _request_span("t", 1.0, 100.0, end_wall_s=4.0),
            _request_span("t", 2.0, 200.0, end_wall_s=2.0),
        ]
        report = SloAnalyzer(spans).analyze()
        assert report["wall_time_s"] == 4.0
        assert report["throughput_rps"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Policy + verdicts
# ---------------------------------------------------------------------------
class TestSloPolicy:
    ANALYSIS = {
        "failed": 0,
        "throughput_rps": 2.0,
        "latency": {"host": {"p95_s": 3.0}},
        "per_tenant": {"alice": {"queue_wait": {"p99_s": 0.25}}},
    }

    def test_bound_requires_a_limit(self):
        with pytest.raises(ReproError):
            SloBound(metric="failed")

    def test_margins_and_pass(self):
        policy = SloPolicy(
            bounds=(
                SloBound(metric="latency.host.p95_s", max_value=5.0),
                SloBound(metric="throughput_rps", min_value=1.0),
                SloBound(
                    metric="per_tenant.alice.queue_wait.p99_s",
                    max_value=0.5,
                ),
            )
        )
        verdict = policy.evaluate(self.ANALYSIS)
        assert verdict.passed
        assert not verdict.violations
        margins = [result.margin for result in verdict.results]
        assert margins == [2.0, 1.0, 0.25]

    def test_violation_and_negative_margin(self):
        policy = SloPolicy(
            bounds=(
                SloBound(metric="latency.host.p95_s", max_value=1.0),
                SloBound(metric="throughput_rps", min_value=1.0),
            )
        )
        verdict = policy.evaluate(self.ANALYSIS)
        assert not verdict.passed
        assert len(verdict.violations) == 1
        assert verdict.violations[0].bound.metric == "latency.host.p95_s"
        assert verdict.violations[0].margin == -2.0
        assert "SLO: FAIL (1 violated)" in verdict.to_text()
        assert "VIOLATED" in verdict.to_text()

    def test_missing_metric_fails_not_skips(self):
        policy = SloPolicy(
            bounds=(SloBound(metric="latency.host.p95_ms", max_value=1),)
        )
        verdict = policy.evaluate(self.ANALYSIS)
        assert not verdict.passed
        assert verdict.results[0].value is None
        assert "missing" in verdict.to_text()

    def test_band_bound_uses_tighter_margin(self):
        policy = SloPolicy(
            bounds=(
                SloBound(
                    metric="throughput_rps",
                    min_value=1.5,
                    max_value=10.0,
                ),
            )
        )
        verdict = policy.evaluate(self.ANALYSIS)
        assert verdict.passed
        assert verdict.results[0].margin == 0.5

    def test_verdict_dict_shape(self):
        verdict = SloPolicy(
            bounds=(SloBound(metric="failed", max_value=0),)
        ).evaluate(self.ANALYSIS)
        data = verdict.to_dict()
        assert data["passed"] is True
        assert data["bounds"][0]["metric"] == "failed"
        assert data["bounds"][0]["max"] == 0
        assert data["bounds"][0]["ok"] is True


# ---------------------------------------------------------------------------
# Live runs: generator + CLI gate
# ---------------------------------------------------------------------------
def _live_workload(slo=()):
    return _small_workload(
        slo=tuple(slo),
        base=RequestSpec(
            program="GHZ_n4", shots=32, probe_shots=8, drift_hours=0.5
        ),
    )


class TestLoadGeneratorLive:
    def test_run_bit_identical_to_standalone(self):
        workload = _live_workload(
            slo=(
                SloBound(metric="failed", max_value=0),
                SloBound(metric="latency.host.p99_s", max_value=300.0),
            )
        )
        generator = LoadGenerator(workload)
        report = generator.run()
        assert report.failed == 0
        assert report.rejected == 0
        assert len(report.completed) == workload.total_requests
        references = {}
        for outcome in report.completed:
            if outcome.spec not in references:
                references[outcome.spec] = run_standalone(outcome.spec)
            reference = references[outcome.spec]
            assert outcome.result.sequence == reference.result.sequence
            assert outcome.result.trace == reference.result.trace
            assert outcome.final_counts == reference.final_counts
            assert outcome.device_time_us == reference.device_time_us
        analysis = report.analyze()
        assert analysis["completed"] == workload.total_requests
        assert analysis["latency"]["host"]["p99_s"] > 0.0
        assert analysis["latency"]["device"]["p99_us"] > 0.0
        assert set(analysis["per_tenant"]) == {"alice", "bob"}
        verdict = report.verdict()
        assert verdict.passed, verdict.to_text()

    def test_invalid_pacing_rejected(self):
        generator = LoadGenerator(_live_workload())
        with pytest.raises(ValueError):
            generator.run(pacing="warp")
        with pytest.raises(ValueError):
            generator.run(pacing="wall", speedup=0.0)


class TestCliLoadGate:
    def _write_workload(self, tmp_path, slo):
        workload = WorkloadSpec(
            name="cli-gate",
            seed=3,
            base=RequestSpec(
                program="GHZ_n4",
                shots=32,
                probe_shots=8,
                drift_hours=0.5,
            ),
            workers=1,
            tenants=(
                TenantLoad(
                    name="solo",
                    arrival=ArrivalSpec(
                        kind="burst",
                        bursts=1,
                        burst_size=2,
                        spacing_s=0.0,
                    ),
                ),
            ),
            slo=tuple(slo),
        )
        path = tmp_path / "workload.json"
        dump_workload(workload, path)
        return path

    def test_check_fails_on_intentionally_tight_bound(
        self, tmp_path, capsys
    ):
        # The acceptance-criteria demonstration: a bound no real run can
        # meet (p95 latency under a nanosecond) must exit nonzero.
        path = self._write_workload(
            tmp_path,
            slo=(
                SloBound(metric="latency.host.p95_s", max_value=1e-9),
            ),
        )
        code = cli_main(["load", "--workload", str(path), "--check"])
        captured = capsys.readouterr()
        assert code != 0
        assert "SLO: FAIL" in captured.out
        assert "CHECK FAILED" in captured.err

    def test_check_passes_with_generous_bounds(self, tmp_path, capsys):
        path = self._write_workload(
            tmp_path,
            slo=(
                SloBound(metric="failed", max_value=0),
                SloBound(metric="latency.host.p95_s", max_value=300.0),
                SloBound(metric="throughput_rps", min_value=1e-4),
            ),
        )
        out = tmp_path / "report.json"
        code = cli_main(
            [
                "load",
                "--workload",
                str(path),
                "--check",
                "--out",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "SLO: PASS" in captured.out
        payload = json.loads(out.read_text())
        assert payload["verdict"]["passed"] is True
        assert payload["analysis"]["completed"] == 2
        assert (
            payload["workload"]["name"] == "cli-gate"
        )
