"""Tests for OpenQASM 2 serialization."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, from_qasm, random_circuit, to_qasm
from repro.exceptions import QasmError
from repro.linalg import unitaries_equal_up_to_phase
from repro.programs import benchmark_suite


class TestExport:
    def test_header_and_registers(self):
        text = to_qasm(QuantumCircuit(3).h(0).measure(0))
        assert text.startswith('OPENQASM 2.0;\ninclude "qelib1.inc";')
        assert "qreg q[3];" in text
        assert "creg c[1];" in text

    def test_gate_spellings(self):
        qc = QuantumCircuit(2).cnot(0, 1).phase(0.5, 0)
        text = to_qasm(qc)
        assert "cx q[0],q[1];" in text
        assert "u1(0.5) q[0];" in text

    def test_pi_fractions_pretty(self):
        text = to_qasm(QuantumCircuit(1).rz(math.pi / 2, 0))
        assert "rz(pi/2)" in text
        text = to_qasm(QuantumCircuit(1).rz(-math.pi, 0))
        assert "rz(-pi)" in text

    def test_measure_mapping(self):
        qc = QuantumCircuit(3).measure(2).measure(0)
        text = to_qasm(qc)
        assert "measure q[2] -> c[0];" in text
        assert "measure q[0] -> c[1];" in text

    def test_barrier(self):
        qc = QuantumCircuit(1).h(0)
        qc.barrier()
        assert "barrier q;" in to_qasm(qc)


class TestImport:
    def test_minimal_program(self):
        qc = from_qasm(
            'OPENQASM 2.0; include "qelib1.inc"; qreg q[2]; '
            "h q[0]; cx q[0],q[1];"
        )
        assert qc.num_qubits == 2
        assert [g.name for g in qc] == ["h", "cnot"]

    def test_angle_expressions(self):
        qc = from_qasm("qreg q[1]; rz(pi/4) q[0]; rx(-pi/2) q[0]; ry(0.25) q[0];")
        assert qc[0].params[0] == pytest.approx(math.pi / 4)
        assert qc[1].params[0] == pytest.approx(-math.pi / 2)
        assert qc[2].params[0] == pytest.approx(0.25)

    def test_aliases(self):
        qc = from_qasm("qreg q[2]; u1(0.3) q[0]; cp(pi) q[0],q[1]; u(0.1,0.2,0.3) q[0];")
        assert [g.name for g in qc] == ["phase", "cphase", "u3"]

    def test_comments_ignored(self):
        qc = from_qasm("qreg q[1]; // register\nx q[0]; // flip")
        assert len(qc) == 1

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("h q[0];")

    def test_double_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; qreg r[1];")

    def test_bad_statement_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; entangle everything;")

    def test_malicious_angle_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; rz(__import__) q[0];")


class TestRoundTrip:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_random_circuit_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        qc = random_circuit(3, 12, rng)
        restored = from_qasm(to_qasm(qc))
        assert unitaries_equal_up_to_phase(qc.unitary(), restored.unitary())

    def test_suite_roundtrip(self):
        for spec in benchmark_suite():
            qc = spec.build()
            restored = from_qasm(to_qasm(qc))
            assert restored.num_qubits == qc.num_qubits
            assert restored.measured_qubits() == qc.measured_qubits()
            stripped = qc.without_measurements()
            assert unitaries_equal_up_to_phase(
                stripped.unitary(), restored.without_measurements().unitary()
            )
