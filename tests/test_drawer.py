"""Tests for the ASCII circuit drawer."""

import math

from repro.circuit import QuantumCircuit, draw_circuit
from repro.programs import ghz_n4


class TestDrawCircuit:
    def test_wire_labels(self):
        text = draw_circuit(QuantumCircuit(3).h(0))
        lines = text.splitlines()
        assert lines[0].startswith("q0:")
        assert any(l.startswith("q2:") for l in lines)

    def test_single_qubit_labels(self):
        text = draw_circuit(QuantumCircuit(1).h(0).t(0).sdg(0))
        assert "H" in text and "T" in text and "Sdg" in text

    def test_cnot_markers(self):
        text = draw_circuit(QuantumCircuit(2).cnot(0, 1))
        lines = text.splitlines()
        assert "*" in lines[0]
        assert "|" in lines[1]
        assert "X" in lines[2]

    def test_cnot_direction(self):
        text = draw_circuit(QuantumCircuit(2).cnot(1, 0))
        lines = text.splitlines()
        assert "X" in lines[0]
        assert "*" in lines[2]

    def test_angle_formatting(self):
        text = draw_circuit(QuantumCircuit(1).rz(math.pi / 2, 0))
        assert "RZ(pi/2)" in text

    def test_arbitrary_angle(self):
        text = draw_circuit(QuantumCircuit(1).rz(0.1234, 0))
        assert "RZ(0.123)" in text

    def test_distant_gate_connector_spans(self):
        text = draw_circuit(QuantumCircuit(3).cnot(0, 2))
        lines = text.splitlines()
        # Both inter-wire gaps carry a connector in the gate's column.
        connector_lines = [l for l in lines if "|" in l]
        assert len(connector_lines) == 2

    def test_measure_marker(self):
        text = draw_circuit(QuantumCircuit(1).measure(0))
        assert "M" in text

    def test_moments_align_columns(self):
        # Two parallel H's must share a column.
        text = draw_circuit(QuantumCircuit(2).h(0).h(1))
        lines = text.splitlines()
        assert lines[0].index("H") == lines[1].index("H")

    def test_barrier_ignored(self):
        qc = QuantumCircuit(1).h(0)
        qc.barrier()
        qc.x(0)
        text = draw_circuit(qc)
        assert "H" in text and "X" in text

    def test_method_on_circuit(self):
        assert ghz_n4().draw() == draw_circuit(ghz_n4())

    def test_xy_and_cphase_tags(self):
        qc = QuantumCircuit(2).xy(math.pi, 0, 1).cphase(math.pi / 2, 0, 1)
        text = draw_circuit(qc)
        assert "XY(pi)" in text
        assert "CPHASE(pi/2)" in text
