"""Tests for the idle-decoherence extension of the device executor."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import Gate
from repro.device import NOISELESS_PROFILE, NoiseProfile, build_device
from repro.device.topology import linear_topology


def _idle_heavy_circuit(width=3):
    """Qubit 0 excited then waiting while qubit 1..2 are busy."""
    qc = QuantumCircuit(width, name="idle_heavy")
    qc.rx(math.pi, 0)
    # A long ladder of work on the other qubits while qubit 0 idles.
    for _ in range(30):
        qc.rx(math.pi, 1)
        qc.rx(math.pi, 1)
        qc.rx(math.pi, 2)
        qc.rx(math.pi, 2)
    qc.measure_all()
    return qc


def _profile_with_short_t1():
    return NoiseProfile(
        **{
            **NOISELESS_PROFILE.__dict__,
            "t1_us_range": (2.0, 2.0),
            "t2_over_t1_range": (1.0, 1.0),
        }
    )


class TestIdleMarkers:
    def test_markers_inserted_per_moment(self):
        device = build_device(
            linear_topology(3), seed=0, profile=NOISELESS_PROFILE,
            idle_noise=True,
        )
        qc = QuantumCircuit(3).rx(math.pi, 0).rx(math.pi, 1).measure_all()
        compact, _ = qc.compacted()
        marked = device._with_idle_markers(compact)
        idles = [g for g in marked if g.name == "idle"]
        # Moment 0: qubit 2 idles; measure moment: all busy.
        assert idles
        assert all(g.params[0] > 0 for g in idles)

    def test_idle_gate_is_identity(self):
        gate = Gate("idle", (0,), (120.0,))
        assert np.allclose(gate.matrix(), np.eye(2))

    def test_disabled_by_default(self):
        device = build_device(
            linear_topology(3), seed=0, profile=NOISELESS_PROFILE
        )
        assert device.idle_noise is False


class TestIdleDecay:
    def test_idle_qubit_decays(self):
        profile = _profile_with_short_t1()
        with_idle = build_device(
            linear_topology(3), seed=0, profile=profile, idle_noise=True
        )
        without_idle = build_device(
            linear_topology(3), seed=0, profile=profile, idle_noise=False
        )
        qc = _idle_heavy_circuit()
        dist_with = with_idle.noisy_distribution(qc)
        dist_without = without_idle.noisy_distribution(qc)
        # Without idle noise (and an otherwise noiseless profile except
        # gate-time relaxation) qubit 0 stays mostly excited; with idle
        # noise it decays measurably more while the others work.
        p1_with = sum(p for k, p in dist_with.items() if k[0] == "1")
        p1_without = sum(p for k, p in dist_without.items() if k[0] == "1")
        assert p1_with < p1_without - 0.05

    def test_busy_qubits_unaffected_by_flag(self):
        # A circuit with no idle time is identical under both flags.
        profile = _profile_with_short_t1()
        with_idle = build_device(
            linear_topology(2), seed=0, profile=profile, idle_noise=True
        )
        without_idle = build_device(
            linear_topology(2), seed=0, profile=profile, idle_noise=False
        )
        qc = QuantumCircuit(1).rx(math.pi, 0).measure(0)
        dist_a = with_idle.noisy_distribution(qc)
        dist_b = without_idle.noisy_distribution(qc)
        for key in set(dist_a) | set(dist_b):
            assert dist_a.get(key, 0.0) == pytest.approx(
                dist_b.get(key, 0.0), abs=1e-12
            )

    def test_run_path_supports_idle(self):
        device = build_device(
            linear_topology(3), seed=1, profile=_profile_with_short_t1(),
            idle_noise=True,
        )
        counts = device.run(_idle_heavy_circuit(), 200, seed=0)
        assert sum(counts.values()) == 200
