"""Named benchmark programs: round-trip, suite wiring, and the payoff.

The four circuits in :mod:`repro.programs.named` reproduce generator
redundancy (zero-angle multiplexer layers, zero-coefficient Trotter
terms, check-and-restore parity pairs, Hadamard-sandwiched oracles).
These tests pin three things: the circuits survive the QASM subset
round-trip, the suite registry's Table-I-style figures match the
builders, and the optimization pipeline actually collects the payoff
each docstring promises — spectator qubits lose their links, Grover
loses every CNOT site — without moving the ideal distribution.
"""

import pytest

from repro.circuit.qasm import from_qasm, to_qasm
from repro.compiler import transpile
from repro.compiler.optimize import optimize_circuit
from repro.device.presets import small_test_device
from repro.programs import (
    basis_trotter_n4,
    grover_n2,
    qec_en_n5,
    wstate_n4,
)
from repro.programs.suite import benchmark_suite, get_benchmark
from repro.sim.statevector import ideal_distribution

NAMED = {
    "wstate_n4": wstate_n4,
    "basis_trotter_n4": basis_trotter_n4,
    "grover_n2": grover_n2,
    "qec_en_n5": qec_en_n5,
}


@pytest.mark.parametrize("name", sorted(NAMED))
def test_qasm_round_trip(name):
    """to_qasm/from_qasm preserves every instruction."""
    original = NAMED[name]()
    restored = from_qasm(to_qasm(original))
    assert restored.num_qubits == original.num_qubits
    assert len(restored) == len(original)
    for ours, theirs in zip(original, restored):
        assert ours.name == theirs.name
        assert ours.qubits == theirs.qubits
        assert ours.params == pytest.approx(theirs.params)


@pytest.mark.parametrize("name", sorted(NAMED))
def test_suite_registration_matches_builder(name):
    spec = get_benchmark(name)
    circuit = spec.build()
    assert spec.builder is NAMED[name]
    assert circuit.num_qubits == spec.qubits
    assert circuit.cnot_count() == spec.logical_cnots
    extras = {s.name for s in benchmark_suite(include_extras=True)}
    assert name in extras
    assert name not in {s.name for s in benchmark_suite()}


def test_ideal_distributions():
    """The documented semantics of each program, from the statevector."""
    third = 1.0 / 3.0
    wstate = ideal_distribution(wstate_n4())
    assert set(wstate) == {"1000", "0100", "0010"}
    for probability in wstate.values():
        assert probability == pytest.approx(third)

    grover = ideal_distribution(grover_n2())
    assert grover == pytest.approx({"11": 1.0})

    qec = ideal_distribution(qec_en_n5())
    assert set(qec) == {"00000", "11100"}
    for probability in qec.values():
        assert probability == pytest.approx(0.5)


@pytest.mark.parametrize("name", sorted(NAMED))
def test_optimization_preserves_ideal_distribution(name):
    device = small_test_device()
    program = NAMED[name]()
    base = transpile(program, device, optimization_level=0)
    opt = transpile(program, device, optimization_level=2)
    left = base.ideal_distribution()
    right = opt.ideal_distribution()
    tv = 0.5 * sum(
        abs(left.get(key, 0.0) - right.get(key, 0.0))
        for key in set(left) | set(right)
    )
    assert tv == pytest.approx(0.0, abs=1e-9)


def test_wstate_spectator_qubit_loses_its_links():
    """All 8 Gray-code CNOTs onto the padded qubit are zero-angle
    scaffolding; after optimization qubit 3 is two-qubit-inactive and
    its routed links leave the 1 + 2L budget."""
    program = wstate_n4()
    assert sum(1 for g in program.gates() if 3 in g.qubits and g.name == "cnot") == 8
    optimized, _ = optimize_circuit(program, 2)
    for gate in optimized.gates():
        if len(gate.qubits) == 2:
            assert 3 not in gate.qubits
    device = small_test_device()
    base = transpile(program, device, optimization_level=0)
    opt = transpile(program, device, optimization_level=2)
    assert len(opt.links_used()) < len(base.links_used())


def test_qec_en_verification_pair_is_removed():
    program = qec_en_n5()
    optimized, report = optimize_circuit(program, 2)
    for gate in optimized.gates():
        if len(gate.qubits) == 2:
            assert 4 not in gate.qubits
    assert report.gates_removed >= 2


def test_grover_loses_every_cnot_site():
    """Both H-sandwiched oracles fold to CZ: 2 sites -> 0, so the
    probe plan collapses to the single reference probe."""
    device = small_test_device()
    base = transpile(grover_n2(), device, optimization_level=0)
    opt = transpile(grover_n2(), device, optimization_level=2)
    assert base.num_cnot_sites == 2
    assert opt.num_cnot_sites == 0


def test_basis_trotter_dead_term_drops_link():
    """The zero-coefficient Z2 Z3 term's conjugating CNOTs vanish, so
    qubit 3 keeps only 1q gates and sheds its link."""
    device = small_test_device()
    base = transpile(basis_trotter_n4(), device, optimization_level=0)
    opt = transpile(basis_trotter_n4(), device, optimization_level=2)
    assert opt.opt_report.gates_removed >= 4
    assert len(opt.links_used()) < len(base.links_used())


def test_builders_return_fresh_circuits():
    first = wstate_n4()
    second = wstate_n4()
    assert first is not second
    first.x(0)
    assert len(second) == len(wstate_n4())
