"""Cross-cutting property-based tests (hypothesis).

These pin the library's structural invariants on randomized inputs:
CopyCats preserve the CNOT skeleton of arbitrary circuits, sequences
behave like immutable per-link assignments, the full pipeline preserves
semantics under any native gate assignment, and seeded runs are
bit-for-bit reproducible.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.compiler.nativization import extract_cnot_sites, nativize
from repro.core.copycat import build_copycat
from repro.core.sequence import NativeGateSequence, enumerate_sequences
from repro.device.native_gates import NATIVE_TWO_QUBIT_GATES
from repro.sim.statevector import ideal_distribution

SEEDS = st.integers(0, 10_000)


def _random_program(seed, width=3, depth=10):
    rng = np.random.default_rng(seed)
    circuit = random_circuit(width, depth, rng)
    circuit.measure_all()
    return circuit


class TestCopycatInvariants:
    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_skeleton_preserved(self, seed):
        program = _random_program(seed)
        copycat = build_copycat(program)
        original_sites = extract_cnot_sites(program)
        copycat_sites = extract_cnot_sites(copycat.circuit)
        assert [(s.control, s.target, s.origin) for s in original_sites] == [
            (s.control, s.target, s.origin) for s in copycat_sites
        ]

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_budget_zero_always_clifford(self, seed):
        program = _random_program(seed)
        copycat = build_copycat(program, max_non_clifford=0)
        assert copycat.circuit.is_clifford()

    @given(seed=SEEDS, budget=st.integers(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_retention_respects_budget(self, seed, budget):
        program = _random_program(seed)
        copycat = build_copycat(program, max_non_clifford=budget)
        assert len(copycat.retained_non_clifford) <= budget

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_replacement_distance_nonnegative(self, seed):
        program = _random_program(seed)
        copycat = build_copycat(program)
        assert copycat.total_replacement_distance >= 0.0
        assert copycat.ideal_distribution()  # simulable either way


class TestSequenceInvariants:
    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_mass_replacement_only_touches_link(self, seed):
        program = _random_program(seed, width=4, depth=14)
        sites = extract_cnot_sites(program)
        if not sites:
            return
        rng = np.random.default_rng(seed)
        sequence = NativeGateSequence.uniform(sites, "cz")
        link = sites[int(rng.integers(len(sites)))].link
        replaced = sequence.with_link_gate(link, "xy")
        for site, old_gate, new_gate in zip(
            sites, sequence.gates, replaced.gates
        ):
            if site.link == link:
                assert new_gate == "xy"
            else:
                assert new_gate == old_gate

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_enumeration_count_matches_product(self, seed):
        program = _random_program(seed, width=3, depth=8)
        sites = extract_cnot_sites(program)
        if len(sites) > 5:
            sites = sites[:5]
        options = {s.link: NATIVE_TWO_QUBIT_GATES for s in sites}
        count = sum(
            1 for _ in enumerate_sequences(sites, options, "site")
        )
        assert count == 3 ** len(sites)


class TestPipelineSemantics:
    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_nativization_distribution_invariant(self, seed):
        program = _random_program(seed)
        sites = extract_cnot_sites(program)
        rng = np.random.default_rng(seed + 1)
        assignment = {
            s.index: NATIVE_TWO_QUBIT_GATES[int(rng.integers(3))]
            for s in sites
        }
        native = nativize(program, assignment)
        ideal = ideal_distribution(program)
        nativized = ideal_distribution(native)
        for key in set(ideal) | set(nativized):
            assert ideal.get(key, 0.0) == pytest.approx(
                nativized.get(key, 0.0), abs=1e-8
            )


class TestDeterminism:
    def test_full_stack_reproducible(self):
        from repro.experiments import ExperimentContext, run_experiment

        def run_once():
            ctx = ExperimentContext.create(seed=77, drift_hours=6.0)
            result = run_experiment(
                "fig18",
                context=ctx,
                benchmarks=("GHZ_n4",),
                final_shots=256,
                probe_shots=128,
                runtime_best_shots=64,
            )
            return result.rows

        assert run_once() == run_once()

    def test_device_trajectory_reproducible(self):
        from repro.device import small_test_device

        def trajectory():
            device = small_test_device(3, seed=5)
            values = []
            for _ in range(5):
                device.advance_time(3.6e9)
                values.append(device.true_pulse_fidelity((0, 1), "cz"))
            return values

        assert trajectory() == trajectory()
