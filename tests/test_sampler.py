"""Tests for counts/distribution utilities."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.sampler import (
    counts_to_distribution,
    marginal_distribution,
    merge_counts,
    most_probable,
    sample_distribution,
    total_shots,
    uniform_distribution,
)


class TestConversions:
    def test_counts_to_distribution(self):
        dist = counts_to_distribution({"00": 75, "11": 25})
        assert dist == {"00": 0.75, "11": 0.25}

    def test_empty_counts_rejected(self):
        with pytest.raises(SimulationError):
            counts_to_distribution({})

    def test_total_shots(self):
        assert total_shots({"0": 3, "1": 4}) == 7

    def test_sample_distribution_totals(self):
        counts = sample_distribution(
            {"0": 0.5, "1": 0.5}, 1000, np.random.default_rng(0)
        )
        assert total_shots(counts) == 1000

    def test_sample_distribution_statistics(self):
        counts = sample_distribution(
            {"0": 0.9, "1": 0.1}, 5000, np.random.default_rng(1)
        )
        assert abs(counts["0"] - 4500) < 200

    def test_sample_rejects_zero_shots(self):
        with pytest.raises(SimulationError):
            sample_distribution({"0": 1.0}, 0, np.random.default_rng(0))

    def test_sample_rejects_empty_mass(self):
        with pytest.raises(SimulationError):
            sample_distribution({"0": 0.0}, 10, np.random.default_rng(0))

    def test_negative_mass_clipped(self):
        counts = sample_distribution(
            {"0": 1.0, "1": -0.001}, 100, np.random.default_rng(0)
        )
        assert counts == {"0": 100}


class TestManipulation:
    def test_merge_counts(self):
        merged = merge_counts({"0": 1, "1": 2}, {"1": 3, "2": 4})
        assert merged == {"0": 1, "1": 5, "2": 4}

    def test_marginal_distribution(self):
        dist = {"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25}
        marginal = marginal_distribution(dist, [0])
        assert marginal == {"0": 0.5, "1": 0.5}

    def test_marginal_reorders_bits(self):
        dist = {"01": 1.0}
        assert marginal_distribution(dist, [1, 0]) == {"10": 1.0}

    def test_most_probable(self):
        dist = {"a": 0.2, "b": 0.5, "c": 0.3}
        assert most_probable(dist, top=2) == [("b", 0.5), ("c", 0.3)]

    def test_most_probable_tie_lexicographic(self):
        assert most_probable({"b": 0.5, "a": 0.5})[0][0] == "a"

    def test_uniform_distribution(self):
        dist = uniform_distribution(2)
        assert dist == {
            "00": 0.25,
            "01": 0.25,
            "10": 0.25,
            "11": 0.25,
        }

    def test_uniform_requires_positive_width(self):
        with pytest.raises(SimulationError):
            uniform_distribution(0)
