"""Fig. 17: device topology and calibrated fidelity/readout map."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig17(benchmark, context):
    result = run_once(
        benchmark, lambda: run_experiment("fig17", context=context)
    )
    emit(result)
    assert len(result.rows) == context.device.topology.num_links
    assert len(result.series["readout_fidelity"]) == 38
