"""Fig. 18 (headline): Baseline vs ANGEL vs Runtime-Best on the full
Table I suite.

Paper shape: ANGEL improves SR by ~1.40x on average (up to 2x) over the
noise-adaptive baseline, with Runtime-Best marginally higher. Absolute
numbers depend on the simulated chip day; the assertion targets the
ordering and a material average improvement.
"""

import math

from repro.experiments import run_experiment
from repro.metrics import geometric_mean

from conftest import emit, run_once


def bench_fig18(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig18",
            context=context,
            final_shots=4096,
            probe_shots=1024,
            runtime_best_shots=1024,
        ),
    )
    emit(result)
    assert len(result.rows) == 8
    angel_ratios = [row[3] for row in result.rows]
    best_ratios = [row[5] for row in result.rows]
    angel_gm = geometric_mean(angel_ratios)
    best_gm = geometric_mean(best_ratios)
    # Paper: 1.40x average. Target the shape: a clear average win with
    # runtime-best at or slightly above ANGEL.
    assert angel_gm > 1.10, f"ANGEL average improvement too small: {angel_gm}"
    assert max(angel_ratios) > 1.5, "no benchmark shows a large win"
    assert best_gm >= angel_gm - 0.05, "oracle should not trail ANGEL"
