"""Table I: the benchmark suite with routed CNOT-site counts."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_table1(benchmark, context):
    result = run_once(
        benchmark, lambda: run_experiment("table1", context=context)
    )
    emit(result)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["toff_n3"][4] == 9  # the paper's post-SWAP count
    assert by_name["GHZ_n4"][3] == 3
