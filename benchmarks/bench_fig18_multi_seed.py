"""Fig. 18 across independent chip days (robustness beyond the paper)."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig18_multi(benchmark):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig18_multi",
            seeds=(11, 23, 47),
            final_shots=2048,
            probe_shots=512,
            runtime_best_shots=512,
        ),
    )
    emit(result)
    pooled = [row for row in result.rows if row[0] == "pooled"][0]
    # Paper: 1.40x average on its single machine/window.
    assert pooled[2] > 1.1, f"pooled ANGEL geomean too small: {pooled[2]}"
    assert pooled[4] >= pooled[2] - 0.08  # oracle ~at or above ANGEL
