"""Multi-tenant compile-service load benchmark.

Standalone script (no pytest-benchmark dependency) replaying a mixed
GHZ / QAOA / BV workload from 8 synthetic tenants through
:class:`~repro.service.AngelService` — token-bucket admission, deficit
round-robin scheduling, coalesced probe rounds, and the cross-tenant
probe-distribution store all in play — and measuring:

* **throughput** — completed compile requests per wall-clock second;
* **compile latency** — p50/p95 from the ``svc.request`` summary spans
  a :class:`~repro.obs.Tracer` collects while the service runs (the
  same spans operators would scrape in production);
* **dedup ratio** — cross-request probe-distribution replays over total
  probe jobs, from the per-tenant ledgers;
* **results unchanged** — every tenant's :class:`~repro.service.
  CompileOutcome` is compared bit-for-bit (sequence, trace, and final
  counts) against :func:`~repro.service.run_standalone` on the same
  :class:`~repro.service.RequestSpec`, pinning the service's core
  invariant under full load.

Writes ``BENCH_load.json`` in the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py [--smoke] [--check]

``--smoke`` trims shot budgets and requests per tenant for CI runners
(still 8 tenants, still all three programs). The acceptance bar
(enforced by ``--check``) is: zero failed requests, every outcome
bit-identical to its standalone reference, and a dedup ratio > 0 on
the overlapping workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.obs import MetricsRegistry, Tracer
from repro.obs import runtime as obs
from repro.service import (
    RequestSpec,
    TenantConfig,
    replay_workload,
    run_standalone,
)

_PROGRAMS = ("GHZ_n4", "QAOA_n5", "BV_n4")


def _percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _build_workload(tenants, requests_per_tenant, shots, probe_shots):
    base = RequestSpec(
        program="GHZ_n4",
        shots=shots,
        probe_shots=probe_shots,
        drift_hours=2.0,
    )
    return {
        f"tenant-{index}": [
            replace(base, program=_PROGRAMS[r % len(_PROGRAMS)])
            for r in range(requests_per_tenant)
        ]
        for index in range(tenants)
    }


def _outcome_matches(outcome, reference) -> bool:
    return (
        outcome.result.sequence == reference.result.sequence
        and outcome.result.trace == reference.result.trace
        and outcome.final_counts == reference.final_counts
    )


def run(tenants, requests_per_tenant, shots, probe_shots, workers):
    workload = _build_workload(
        tenants, requests_per_tenant, shots, probe_shots
    )
    total_requests = sum(len(specs) for specs in workload.values())

    tracer = Tracer()
    registry = MetricsRegistry()
    previous = obs.install(tracer, registry)
    start = time.perf_counter()
    try:
        outcomes = replay_workload(
            workload,
            num_workers=workers,
            tenants=tuple(
                TenantConfig(name) for name in sorted(workload)
            ),
        )
    finally:
        obs.uninstall(previous)
    elapsed = time.perf_counter() - start

    latencies = [
        span.attributes["latency_s"]
        for span in tracer.spans
        if span.name == "svc.request"
    ]
    queue_waits = [
        span.attributes["queue_wait_s"]
        for span in tracer.spans
        if span.name == "svc.request"
    ]

    # Bit-equivalence audit: one standalone reference per distinct spec
    # (the workload reuses specs across tenants, so this stays cheap).
    references = {}
    failed = 0
    mismatches = 0
    probes = dedup_hits = 0
    per_tenant = {}
    for name in sorted(outcomes):
        ok = bad = 0
        for slot, spec in zip(outcomes[name], workload[name]):
            if isinstance(slot, BaseException):
                failed += 1
                continue
            if spec not in references:
                references[spec] = run_standalone(spec)
            if _outcome_matches(slot, references[spec]):
                ok += 1
            else:
                bad += 1
            probes += slot.probes_run
            dedup_hits += slot.dedup_hits
        mismatches += bad
        per_tenant[name] = {"matched": ok, "mismatched": bad}

    dedup_ratio = dedup_hits / probes if probes else 0.0
    return {
        "benchmark": "multi_tenant_service_load",
        "workload": (
            f"{tenants} tenants x {requests_per_tenant} requests "
            f"({'/'.join(_PROGRAMS)}) @ {shots} shots, "
            f"{probe_shots} probe shots, {workers} service workers"
        ),
        "requests": total_requests,
        "failed": failed,
        "wall_time_s": elapsed,
        "throughput_rps": total_requests / elapsed if elapsed else 0.0,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p95_s": _percentile(latencies, 0.95),
        "queue_wait_p95_s": _percentile(queue_waits, 0.95),
        "probes": probes,
        "dedup_hits": dedup_hits,
        "dedup_ratio": dedup_ratio,
        "results_unchanged": mismatches == 0,
        "per_tenant": per_tenant,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced shot/request budget for CI smoke runs",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless no request failed, every outcome is "
        "bit-identical to standalone, and the dedup ratio is > 0",
    )
    args = parser.parse_args(argv)

    tenants = 8
    requests_per_tenant = 1 if args.smoke else 3
    shots = 128 if args.smoke else 1024
    probe_shots = 64 if args.smoke else 256
    workers = 2 if args.smoke else 4
    report = run(tenants, requests_per_tenant, shots, probe_shots, workers)

    out_path = Path(__file__).resolve().parent.parent / "BENCH_load.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload   : {report['workload']}")
    print(
        f"requests   : {report['requests']} "
        f"({report['failed']} failed) in {report['wall_time_s']:.2f}s "
        f"= {report['throughput_rps']:.2f} req/s"
    )
    print(
        f"latency    : p50 {report['latency_p50_s']:.3f}s, "
        f"p95 {report['latency_p95_s']:.3f}s "
        f"(queue-wait p95 {report['queue_wait_p95_s']:.3f}s)"
    )
    print(
        f"dedup      : {report['dedup_hits']}/{report['probes']} "
        f"probe jobs replayed ({report['dedup_ratio']:.1%})"
    )
    print(f"unchanged  : {report['results_unchanged']}")
    print(f"written    : {out_path}")

    if args.check:
        if report["failed"]:
            print(
                f"FAIL: {report['failed']} requests failed",
                file=sys.stderr,
            )
            return 1
        if not report["results_unchanged"]:
            print(
                "FAIL: service outcomes differ from standalone runs",
                file=sys.stderr,
            )
            return 1
        if report["dedup_ratio"] <= 0.0:
            print(
                "FAIL: no cross-request dedup on an overlapping "
                "workload",
                file=sys.stderr,
            )
            return 1
        print("CHECK: load bench within acceptance bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
