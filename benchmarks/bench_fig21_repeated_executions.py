"""Fig. 21: repeated GHZ_n4 executions within a calibration window."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig21(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig21",
            context=context,
            iterations=10,
            gap_hours=1.0,
            shots=1024,
            probe_shots=1024,
        ),
    )
    emit(result)
    assert len(result.rows) == 10
    # Runtime best upper-bounds both policies per iteration by
    # construction of the per-iteration maximum.
    for base, angel, best in zip(
        result.series["baseline"],
        result.series["angel"],
        result.series["runtime_best"],
    ):
        assert best >= max(base, angel) - 0.08  # shot noise slack
