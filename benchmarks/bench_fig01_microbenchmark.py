"""Fig. 1(c): RX(pi)+CNOT micro-benchmark, SR per native gate."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig1c(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig1c", context=context, shots=2048),
    )
    emit(result)
    assert len(result.rows) == 3
    assert all(0.0 <= row[1] <= 1.0 for row in result.rows)
    # Every device job went through the execution service ledger.
    stats = context.executor.stats
    assert stats.jobs > 0 and stats.shots > 0
    print("--- execution-service stats ---")
    print(stats.to_text())
