"""Fig. 9: GHZ_n4 vs VQE_n4 — the optimal combination is program-specific."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig9(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig9", context=context, shots=1024),
    )
    emit(result)
    assert len(result.rows) == 2
    assert len(result.series["ghz_srs"]) == 27
