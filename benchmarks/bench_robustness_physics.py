"""Robustness: does the headline survive richer device physics?

Re-runs the Fig. 18 protocol (benchmark subset) on a device with both
extension mechanisms enabled — moment-scheduled idle decoherence and
spectator ZZ crosstalk. Neither is part of the calibrated baseline
phenomenology; the check is that ANGEL's advantage is not an artifact of
the leaner noise model.
"""

from repro.experiments import ExperimentContext, run_experiment
from repro.metrics import geometric_mean

from conftest import STANDARD_SETUP, emit, run_once


def bench_fig18_rich_physics(benchmark):
    context = ExperimentContext.create(
        **STANDARD_SETUP, idle_noise=True, crosstalk_zz=0.05
    )
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig18",
            context=context,
            benchmarks=("GHZ_n4", "QEC_n4", "toff_n3", "lin_sol_n3"),
            final_shots=2048,
            probe_shots=1024,
            runtime_best_shots=512,
        ),
    )
    emit(result)
    ratios = [row[3] for row in result.rows]
    assert geometric_mean(ratios) > 1.0, "ANGEL advantage vanished"
