"""Merge every ``BENCH_*.json`` into one perf-trajectory report.

Each standalone benchmark pins its own ``BENCH_<name>.json`` at the
repository root. This script reduces them to a single
``BENCH_trajectory.json``: one headline metric per benchmark (the number
its ``--check`` gate is built around), the direction that counts as
better, and a regression flag comparing against the previously pinned
trajectory — so the repo's perf history stays monotone-checkable from
one file instead of nine.

Usage::

    python benchmarks/collect_bench.py [--check] [--strict]

``--check`` exits nonzero if a report is unreadable or a registered
headline is missing. ``--strict`` additionally fails on regression
flags (headline worse than the pinned trajectory by more than the
tolerance); plain ``--check`` only reports them, since wall-clock
ratios vary across machines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Per-benchmark headline: (dotted path into the report, direction,
#: short label). Direction ``higher`` means bigger is better.
HEADLINES = {
    "batched_candidate_engine": (
        "per_probe.mean_speedup", "higher", "mean per-probe speedup (x)"
    ),
    "exec_probe_throughput": ("speedup", "higher", "cache speedup (x)"),
    "sim_cache_probe_workload": (
        "speedup", "higher", "hierarchy speedup (x)"
    ),
    "worker_pool_probe_workload": (
        "speedup", "higher", "pool speedup (x)"
    ),
    "obs_overhead": (
        "enabled_overhead", "lower", "obs overhead (fraction)"
    ),
    "multi_tenant_service_load": (
        "throughput_rps", "higher", "service throughput (req/s)"
    ),
    "service_resilience": (
        "local.wall_time_s", "lower", "local-baseline wall time (s)"
    ),
    "fleet_scaling": (
        "throughput_scaling", "higher", "fleet throughput scaling (x)"
    ),
    "opt_scoreboard": (
        "mean_two_qubit_reduction", "higher", "mean 2q-gate reduction"
    ),
    "slo_load_harness": (
        "throughput_rps", "higher", "load-harness throughput (req/s)"
    ),
}

#: Relative movement in the bad direction that raises a flag. Generous
#: because most headlines are wall-clock ratios measured on whatever
#: machine ran last.
TOLERANCE = 0.40

TRAJECTORY = "BENCH_trajectory.json"


def _dig(report, path):
    value = report
    for key in path.split("."):
        value = value[key]
    return value


def collect(root: Path):
    """Read every BENCH_*.json under *root*; return (entries, errors)."""
    entries = {}
    errors = []
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name == TRAJECTORY:
            continue
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            errors.append(f"{path.name}: unreadable ({exc})")
            continue
        name = report.get("benchmark")
        if name not in HEADLINES:
            errors.append(f"{path.name}: unregistered benchmark {name!r}")
            continue
        metric_path, direction, label = HEADLINES[name]
        try:
            value = float(_dig(report, metric_path))
        except (KeyError, TypeError, ValueError):
            errors.append(
                f"{path.name}: headline {metric_path!r} missing"
            )
            continue
        entries[name] = {
            "file": path.name,
            "metric": metric_path,
            "label": label,
            "direction": direction,
            "value": value,
            "workload": report.get("workload", ""),
        }
    return entries, errors


def flag_regressions(entries, previous):
    """Compare each headline to the pinned trajectory, bad-side only."""
    flags = []
    for name, entry in entries.items():
        prior = previous.get(name)
        if not prior:
            continue
        old, new = prior["value"], entry["value"]
        if old == 0:
            continue
        if entry["direction"] == "higher":
            worse = (old - new) / abs(old)
        else:
            worse = (new - old) / abs(old)
        entry["previous"] = old
        entry["relative_change"] = (new - old) / abs(old)
        if worse > TOLERANCE:
            flags.append(
                f"{name}: {entry['label']} {old:.3f} -> {new:.3f} "
                f"({worse:+.0%} in the wrong direction)"
            )
    return flags


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on unreadable reports or missing headlines",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check, also fail on regression flags",
    )
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    entries, errors = collect(root)

    out_path = root / TRAJECTORY
    previous = {}
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text()).get(
                "benchmarks", {}
            )
        except ValueError:
            previous = {}
    flags = flag_regressions(entries, previous)

    trajectory = {
        "benchmarks": entries,
        "regressions": flags,
        "tolerance": TOLERANCE,
    }
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")

    width = max((len(n) for n in entries), default=10)
    for name in sorted(entries):
        entry = entries[name]
        arrow = "^" if entry["direction"] == "higher" else "v"
        delta = (
            f"  ({entry['relative_change']:+.1%} vs pinned)"
            if "relative_change" in entry
            else ""
        )
        print(
            f"{name:<{width}}  {entry['value']:>10.4f} {arrow} "
            f"{entry['label']}{delta}"
        )
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    for flag in flags:
        print(f"REGRESSION: {flag}", file=sys.stderr)
    print(f"written: {out_path} ({len(entries)} benchmarks)")

    if args.check and errors:
        return 1
    if args.check and args.strict and flags:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
