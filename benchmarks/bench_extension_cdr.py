"""Extension (paper Section VII-B future work): ANGEL x CDR composition."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_extension_cdr(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "extension_cdr",
            context=context,
            num_training=12,
            training_shots=1024,
            target_shots=4096,
        ),
    )
    emit(result)
    by_label = {row[0]: row for row in result.rows}
    raw_errors = [by_label[l][4] for l in ("baseline", "ANGEL")]
    cdr_errors = [by_label[l][5] for l in ("baseline", "ANGEL")]
    # CDR's linear extrapolation is itself shot-noise limited, so judge
    # it in aggregate: the mitigated errors must stay bounded and at
    # least one configuration must improve on its raw error.
    assert max(cdr_errors) < 0.3
    assert any(c < r for c, r in zip(cdr_errors, raw_errors))
