"""Extension (paper Section VI-E limitation 1): multi-pass search."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_extension_passes(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "extension_passes",
            context=context,
            benchmarks=("GHZ_n4", "QEC_n4", "toff_n3"),
            passes=(1, 2, 3),
            probe_shots=1024,
            final_shots=2048,
        ),
    )
    emit(result)
    assert len(result.rows) == 9
    # Probe budget grows with passes but stays linear in links.
    for name in ("GHZ_n4", "QEC_n4", "toff_n3"):
        budgets = [row[2] for row in result.rows if row[0] == name]
        assert budgets == sorted(budgets)
