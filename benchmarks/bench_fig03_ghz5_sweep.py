"""Fig. 3: GHZ_n5 over all 81 native gate combinations.

Paper shape: the runtime-best combination far exceeds the
noise-adaptive one (3x on Aspen-11); we assert a material gap.
"""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig3(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig3", context=context, shots=512),
    )
    emit(result)
    values = result.series["success_rates_in_enumeration_order"]
    assert len(values) == 81
    ratio = {r[0]: r[1] for r in result.rows}["best / noise-adaptive"]
    assert ratio > 1.05, "runtime best should clearly beat noise-adaptive"
    # All 81 sweep measurements flowed through the execution service.
    stats = context.executor.stats
    assert stats.jobs_by_tag.get("measure", 0) >= 81
    assert stats.shots >= 81 * 512
    print("--- execution-service stats ---")
    print(stats.to_text())
