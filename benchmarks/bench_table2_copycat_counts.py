"""Table II: CopyCats required — exhaustive vs ANGEL."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_table2(benchmark, context):
    result = run_once(
        benchmark, lambda: run_experiment("table2", context=context)
    )
    emit(result)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["toff_n3"][3] == "19.7K"  # matches the paper exactly
    assert by_name["toff_n3"][5] == 5
    for row in result.rows:
        assert row[5] <= 1 + 2 * row[2]  # 1 + 2L bound
