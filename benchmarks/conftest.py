"""Shared fixtures for the paper-artifact benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure from the paper
(see DESIGN.md's experiment index) and prints the same rows/series the
paper reports. Run with::

    pytest benchmarks/ --benchmark-only -s

Budgets are reduced relative to the full experiments so the whole
harness completes in minutes; `repro.experiments.runner` runs the
full-budget versions.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext

#: One canonical "chip day": device seed, calibration seed, staleness.
STANDARD_SETUP = dict(seed=23, calibration_seed=3, drift_hours=30.0)


@pytest.fixture()
def context() -> ExperimentContext:
    """A fresh aged-Aspen-11 context per benchmark (order-independent)."""
    return ExperimentContext.create(**STANDARD_SETUP)


def run_once(benchmark, fn):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(result) -> None:
    """Print an experiment's rows (the bench's reproduction artifact)."""
    print()
    print(result.to_text())
