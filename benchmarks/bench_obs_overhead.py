"""Observability overhead benchmark: tracing off vs on.

The hot-path contract of :mod:`repro.obs` is that *disabled* tracing is
allocation-free — an instrumented call site costs one ``active_tracer()``
call and one identity check — so end-to-end overhead with no tracer
installed must stay under **2%** of the uninstrumented sweep, and full
tracing (every span streamed to a JSONL sink) under **15%**.

The workload is the repo's standard perf yardstick: a GHZ-7
localized-search probe sweep on Aspen-11 (per-link reference +
mass-replacement candidate batches, snapshot discipline). Three
measurements:

* ``disabled`` — no tracer installed (the default for every user who
  never passes ``--trace``): the A-side of the <2% bound;
* ``enabled`` — a Tracer bound to the device clock streaming to a JSONL
  sink plus a live MetricsRegistry: the <15% bound;
* a *microbenchmark* of the bare disabled call-site idiom
  (``active_tracer()`` + conditional), reported as ns/site to pin the
  per-site cost the <2% bound rests on.

Writes ``BENCH_obs.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.compiler import transpile
from repro.core.sequence import NativeGateSequence
from repro.device.presets import aspen11
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.obs import JsonlSpanSink, MetricsRegistry, Tracer, observed
from repro.obs import runtime as obs
from repro.programs.ghz import ghz

DISABLED_OVERHEAD_BOUND = 0.02
ENABLED_OVERHEAD_BOUND = 0.15


def _probe_round(device, compiled, shots: int, rng) -> list:
    """One localized-search pass worth of probe jobs (1 + 2L shape,
    reference re-probed per link batch)."""
    reference = NativeGateSequence.uniform(compiled.sites, "cz")
    options = compiled.gate_options()
    jobs = []
    number = 0
    for link in compiled.links_used():
        link_sequences = [reference]
        for gate in sorted(g for g in options[link] if g != "cz"):
            gates = tuple(
                gate if site.link == link else ref_gate
                for site, ref_gate in zip(compiled.sites, reference.gates)
            )
            link_sequences.append(NativeGateSequence(compiled.sites, gates))
        for sequence in link_sequences:
            circuit = compiled.nativized(
                sequence, name_suffix=f"_probe{number}"
            )
            jobs.append(
                Job(
                    circuit,
                    shots,
                    seed=int(rng.integers(2**31)),
                    tag="probe",
                )
            )
            number += 1
    return jobs


def _sweep_time_s(rounds: int, shots: int, tracer=None, registry=None):
    """Wall time of the GHZ-7 probe sweep under one observability mode."""
    device = aspen11(seed=23, sim_cache=True)
    compiled = transpile(ghz(7), device)
    executor = BatchExecutor(
        LocalBackend(device), mode="parallel", max_workers=1
    )
    rng = np.random.default_rng(5)
    jobs_total = 0
    start = time.perf_counter()
    if tracer is None and registry is None:
        for _ in range(rounds):
            jobs = _probe_round(device, compiled, shots, rng)
            jobs_total += len(jobs)
            executor.submit_batch(jobs)
    else:
        with observed(tracer, registry):
            for _ in range(rounds):
                jobs = _probe_round(device, compiled, shots, rng)
                jobs_total += len(jobs)
                executor.submit_batch(jobs)
    elapsed = time.perf_counter() - start
    if tracer is not None:
        tracer.close()
    return elapsed, jobs_total


def _disabled_site_ns(iterations: int = 200_000) -> float:
    """ns per disabled instrumentation site: the exact call-site idiom
    (fetch the active tracer, branch to NULL_SPAN) with no tracer
    installed."""
    start = time.perf_counter()
    for _ in range(iterations):
        tracer = obs.active_tracer()
        span = tracer.span("x") if tracer else obs.NULL_SPAN
        with span:
            pass
    elapsed = time.perf_counter() - start
    return 1e9 * elapsed / iterations


def run(rounds: int, shots: int, trials: int):
    # Interleave the modes across trials and keep the best (minimum)
    # time per mode — standard practice for sub-10% wall-clock deltas on
    # a shared machine.
    times = {"baseline": [], "disabled": [], "enabled": []}
    jobs_total = 0
    trace_dir = tempfile.mkdtemp(prefix="bench_obs_")
    for trial in range(trials):
        # "baseline" and "disabled" are physically the same configuration
        # (no tracer installed); measuring them as separate samples makes
        # the <2% bound honest about run-to-run noise.
        elapsed, jobs_total = _sweep_time_s(rounds, shots)
        times["baseline"].append(elapsed)
        elapsed, _ = _sweep_time_s(rounds, shots)
        times["disabled"].append(elapsed)
        trace_path = os.path.join(trace_dir, f"trial{trial}.jsonl")
        registry = MetricsRegistry()
        tracer = Tracer(
            sink=JsonlSpanSink(trace_path),
            keep_spans=False,
            registry=registry,
        )
        elapsed, _ = _sweep_time_s(rounds, shots, tracer, registry)
        times["enabled"].append(elapsed)
    best = {mode: min(values) for mode, values in times.items()}
    disabled_overhead = best["disabled"] / best["baseline"] - 1.0
    enabled_overhead = best["enabled"] / best["baseline"] - 1.0
    site_ns = _disabled_site_ns()
    return {
        "benchmark": "obs_overhead",
        "workload": (
            f"GHZ-7 localized-search probe sweep on aspen-11 "
            f"({jobs_total} jobs x {trials} trials) @ {shots} shots"
        ),
        "baseline_s": best["baseline"],
        "disabled_s": best["disabled"],
        "enabled_s": best["enabled"],
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "disabled_site_ns": site_ns,
        "bounds": {
            "disabled": DISABLED_OVERHEAD_BOUND,
            "enabled": ENABLED_OVERHEAD_BOUND,
        },
        "samples": times,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced budget for CI"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless disabled overhead < 2% and "
        "enabled < 15%",
    )
    args = parser.parse_args(argv)

    rounds = 1 if args.quick else 2
    trials = 2 if args.quick else 3
    report = run(rounds, shots=256, trials=trials)

    out_path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload : {report['workload']}")
    print(f"baseline : {report['baseline_s']:.3f} s")
    print(
        f"disabled : {report['disabled_s']:.3f} s "
        f"({100 * report['disabled_overhead']:+.2f}%)"
    )
    print(
        f"enabled  : {report['enabled_s']:.3f} s "
        f"({100 * report['enabled_overhead']:+.2f}%)"
    )
    print(f"site cost: {report['disabled_site_ns']:.0f} ns (disabled)")
    print(f"written  : {out_path}")

    if args.check:
        if report["disabled_overhead"] >= DISABLED_OVERHEAD_BOUND:
            print(
                f"FAIL: disabled-tracer overhead "
                f"{100 * report['disabled_overhead']:.2f}% >= "
                f"{100 * DISABLED_OVERHEAD_BOUND:.0f}%",
                file=sys.stderr,
            )
            return 1
        if report["enabled_overhead"] >= ENABLED_OVERHEAD_BOUND:
            print(
                f"FAIL: enabled-tracer overhead "
                f"{100 * report['enabled_overhead']:.2f}% >= "
                f"{100 * ENABLED_OVERHEAD_BOUND:.0f}%",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
