"""Fig. 8: true vs calibration-reported error rates over two days."""

from repro.experiments import ExperimentContext, run_experiment

from conftest import emit, run_once


def bench_fig8(benchmark):
    # Fig. 8 starts right after a full calibration (no pre-aging).
    context = ExperimentContext.create(seed=23, drift_hours=0.0)
    result = run_once(
        benchmark,
        lambda: run_experiment("fig8", context=context, hours=48.0),
    )
    emit(result)
    # Paper shape: reported error plateaus while true error moves.
    for row in result.rows:
        gate, _range, plateau_steps, total_steps, divergence = row
        assert plateau_steps > 0, f"{gate} never plateaued"
        assert divergence > 0, f"{gate} reported == true throughout"
