"""Ablation (beyond the paper): link visit order of the localized search."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_ablation_order(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "ablation_order",
            context=context,
            benchmarks=("GHZ_n4", "QEC_n4", "lin_sol_n3"),
            trials=3,
            probe_shots=1024,
            final_shots=2048,
        ),
    )
    emit(result)
    assert len(result.rows) == 3
