"""Batched candidate-simulation benchmark: grouped-batch engine on/off.

Standalone script (no pytest-benchmark dependency) measuring the GHZ-7
localized-search probe sweep — per-link batches of reference +
mass-replacement candidates on an Aspen-11 subgraph, the paper's
``1 + 2L`` probe shape — with the candidate engine on
(``batched_sim`` + ``clifford_fast_path``) and off, under a
weak-coherent noise profile (coherent angles inside the fast path's
exactness budget, the regime where the stabilizer short-circuit is
allowed to fire). Three sections:

* ``per_probe`` — every unique probe simulated one at a time in both
  modes, timed individually. The headline metric is the mean per-probe
  speedup: Clifford-eligible probes (the all-``cz`` reference and the
  ``xy`` candidates) short-circuit through the stabilizer path at
  10-20x, while non-Clifford ``cphase`` candidates fall back to the
  dense engine at parity. Fast-path distributions are validated against
  the dense engine at a total-variation budget; fallback probes must
  match exactly.
* ``sweep`` — the full grouped probe sweep through the executor,
  engine on vs off, aggregate wall clock and engine counters. Dense
  grouped counts must be **bit-identical** to the sequential path.
* ``cluster_regime`` — a GHZ-5 sweep (5-qubit states, the
  overhead-dominated regime where candidate-axis stacking pays),
  showing stacked-cluster counters and bit-identical counts.

Writes ``BENCH_batch.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched_sim.py [--smoke]

``--smoke`` trims rounds for CI. The acceptance bar (enforced by
``--check``) is a >=3x mean per-probe speedup with bit-identical dense
counts and fast-path TV within budget.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from repro.compiler import transpile
from repro.core.sequence import NativeGateSequence
from repro.device.presets import NOISELESS_PROFILE, aspen11
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.programs.ghz import ghz

_HOUR_US = 3_600e6

#: Stochastic noise plus coherent angles well inside the Clifford fast
#: path's exactness budget (0.02 rad) — the regime where the stabilizer
#: short-circuit is allowed to fire. Same shape as the preset the
#: differential suite validates (tests/test_differential.py), with the
#: *stochastic* rates scaled to the workload's depth: the fast path's
#: white-noise mix is accurate to first order in the accumulated error
#: budget, and the routed GHZ-7 probe is ~8x deeper (241 gates) than
#: the GHZ-4 differential probes, so per-gate rates are scaled down by
#: the same factor to keep total accumulated error — and hence model
#: error — inside the differential TV budget. Simulation *cost* is
#: independent of noise strength, so this does not affect timings.
_WEAK_COHERENT_PROFILE = dataclasses.replace(
    NOISELESS_PROFILE,
    t1_us_range=(1500.0, 2500.0),
    t2_over_t1_range=(1.0, 1.5),
    readout_p01_range=(0.01, 0.03),
    readout_p10_range=(0.005, 0.02),
    rx_depolarizing_range=(2e-5, 8e-5),
    two_qubit_depolarizing_log_range=(math.log(2e-4), math.log(6e-4)),
    rx_over_rotation_std=0.001,
    over_rotation_std=0.002,
    zz_error_std=0.0015,
)

#: Total-variation budget for fast-path probes (same bound the
#: differential test suite enforces for GHZ probes on this profile).
_TV_BUDGET = 0.08


def _make_device(engine: bool, seed: int = 23):
    return aspen11(
        seed=seed,
        profile=_WEAK_COHERENT_PROFILE,
        batched_sim=engine,
        clifford_fast_path=engine,
    )


def _probe_sweep(compiled):
    """One localized-search pass worth of probe circuits, link-batch
    ordered: for every link the reference plus every mass-replacement
    candidate — the paper's ``1 + 2L`` shape with the reference
    re-probed per link batch."""
    reference = NativeGateSequence.uniform(compiled.sites, "cz")
    options = compiled.gate_options()
    circuits = []
    number = 0
    for link in compiled.links_used():
        link_sequences = [("ref", reference)]
        for gate in sorted(g for g in options[link] if g != "cz"):
            gates = tuple(
                gate if site.link == link else ref_gate
                for site, ref_gate in zip(compiled.sites, reference.gates)
            )
            link_sequences.append(
                (gate, NativeGateSequence(tuple(compiled.sites), gates))
            )
        for kind, sequence in link_sequences:
            circuits.append(
                (
                    kind,
                    compiled.nativized(
                        sequence, name_suffix=f"_probe{number}"
                    ),
                )
            )
            number += 1
    return circuits


def _total_variation(left, right):
    keys = set(left) | set(right)
    return 0.5 * sum(
        abs(left.get(k, 0.0) - right.get(k, 0.0)) for k in keys
    )


def _unique_probes(circuits):
    """Drop the per-link reference re-probes (identical circuits the
    caches serve); keeps one reference plus every candidate."""
    unique = []
    seen_ref = False
    for kind, circuit in circuits:
        if kind == "ref":
            if seen_ref:
                continue
            seen_ref = True
        unique.append((kind, circuit))
    return unique


def run_per_probe():
    """Each unique probe simulated alone in both modes, timed
    individually; distributions cross-validated."""
    engine_dev = _make_device(engine=True)
    dense_dev = _make_device(engine=False)
    probes = _unique_probes(_probe_sweep(transpile(ghz(7), engine_dev)))
    dense_probes = _unique_probes(
        _probe_sweep(transpile(ghz(7), dense_dev))
    )
    records = []
    max_tv = 0.0
    for (kind, fast_circ), (_, dense_circ) in zip(probes, dense_probes):
        start = time.perf_counter()
        fast = engine_dev.noisy_distribution(fast_circ)
        fast_s = time.perf_counter() - start
        start = time.perf_counter()
        dense = dense_dev.noisy_distribution(dense_circ)
        dense_s = time.perf_counter() - start
        tv = _total_variation(fast, dense)
        max_tv = max(max_tv, tv)
        records.append(
            {
                "kind": kind,
                "engine_ms": 1e3 * fast_s,
                "dense_ms": 1e3 * dense_s,
                "speedup": dense_s / fast_s,
                "tv": tv,
            }
        )
    speedups = [r["speedup"] for r in records]
    by_kind = {}
    for record in records:
        by_kind.setdefault(record["kind"], []).append(record["speedup"])
    return {
        "probes": len(records),
        "clifford_fast_hits": engine_dev.clifford_fast_hits,
        "clifford_fallbacks": engine_dev.clifford_fallbacks,
        "mean_speedup": float(np.mean(speedups)),
        "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
        "min_speedup": float(min(speedups)),
        "max_speedup": float(max(speedups)),
        "by_kind_mean": {
            kind: float(np.mean(values))
            for kind, values in sorted(by_kind.items())
        },
        "max_tv": max_tv,
        "records": records,
    }


def _run_sweep(program, rounds: int, shots: int, seed: int):
    """The grouped executor sweep, engine on vs off; a fresh drift
    epoch per round so every round pays full per-probe simulation."""
    results = {}
    counts_by_mode = {}
    for mode, engine in (("engine_off", False), ("engine_on", True)):
        device = _make_device(engine=engine, seed=seed)
        compiled = transpile(program, device)
        executor = BatchExecutor(
            LocalBackend(device), mode="parallel", max_workers=1
        )
        rng = np.random.default_rng(5)
        all_counts = []
        jobs_total = 0
        start = time.perf_counter()
        for _ in range(rounds):
            jobs = [
                Job(
                    circuit,
                    shots,
                    seed=int(rng.integers(2**31)),
                    tag="probe",
                )
                for _, circuit in _probe_sweep(compiled)
            ]
            jobs_total += len(jobs)
            batch = executor.submit_batch(jobs)
            all_counts.extend(r.counts for r in batch)
            device.advance_time(_HOUR_US)
        elapsed = time.perf_counter() - start
        counts_by_mode[mode] = all_counts
        stats = executor.stats.snapshot()
        results[mode] = {
            "rounds": rounds,
            "jobs": jobs_total,
            "shots_per_job": shots,
            "wall_time_s": elapsed,
            "ms_per_probe": 1e3 * elapsed / jobs_total,
            "batch_groups": stats["batch_groups"],
            "batch_candidates": stats["batch_candidates"],
            "batch_dedup_hits": stats["batch_dedup_hits"],
            "clifford_fast_hits": stats["clifford_fast_hits"],
            "clifford_fallbacks": stats["clifford_fallbacks"],
        }
    results["aggregate_speedup"] = (
        results["engine_off"]["wall_time_s"]
        / results["engine_on"]["wall_time_s"]
    )
    return results, counts_by_mode


def _run_dense_identity(program, shots: int, seed: int):
    """Grouped dense-batched counts (clifford off) must be bit-identical
    to the sequential engine on the same chip-day and seeds."""
    counts = {}
    for mode, batched in (("sequential", False), ("batched", True)):
        device = aspen11(
            seed=seed,
            profile=_WEAK_COHERENT_PROFILE,
            batched_sim=batched,
            clifford_fast_path=False,
        )
        compiled = transpile(program, device)
        executor = BatchExecutor(
            LocalBackend(device), mode="parallel", max_workers=1
        )
        rng = np.random.default_rng(5)
        jobs = [
            Job(c, shots, seed=int(rng.integers(2**31)), tag="probe")
            for _, c in _probe_sweep(compiled)
        ]
        batch = executor.submit_batch(jobs)
        counts[mode] = [r.counts for r in batch]
        stats = executor.stats.snapshot()
        counts[mode + "_stats"] = {
            "batch_groups": stats["batch_groups"],
            "batch_candidates": stats["batch_candidates"],
            "batch_dedup_hits": stats["batch_dedup_hits"],
        }
    return {
        "identical": counts["batched"] == counts["sequential"],
        "batched_stats": counts["batched_stats"],
    }


def run(rounds: int, shots: int):
    per_probe = run_per_probe()
    sweep, sweep_counts = _run_sweep(ghz(7), rounds, shots, seed=23)
    ghz7_identity = _run_dense_identity(ghz(7), shots, seed=23)
    # GHZ-5 compiles onto 5 physical qubits: the overhead-dominated
    # regime where the planner stacks candidate clusters.
    cluster, _ = _run_sweep(ghz(5), rounds, shots, seed=23)
    ghz5_identity = _run_dense_identity(ghz(5), shots, seed=23)
    return {
        "benchmark": "batched_candidate_engine",
        "workload": (
            "GHZ-7 localized-search probes on aspen-11 "
            f"({per_probe['probes']} unique probes, "
            f"{sweep['engine_on']['jobs']} grouped jobs over "
            f"{rounds} drift-epoch rounds) @ {shots} shots, "
            "weak-coherent profile"
        ),
        "per_probe": per_probe,
        "sweep": sweep,
        "dense_identity_ghz7": ghz7_identity,
        "cluster_regime_ghz5": cluster,
        "dense_identity_ghz5": ghz5_identity,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced budget for CI"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero unless mean per-probe speedup >= 3x with "
            "bit-identical dense counts and fast-path TV in budget"
        ),
    )
    args = parser.parse_args(argv)

    rounds = 1 if args.smoke else 2
    shots = 256
    report = run(rounds, shots)

    out_path = (
        Path(__file__).resolve().parent.parent / "BENCH_batch.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    per_probe = report["per_probe"]
    sweep = report["sweep"]
    print(f"workload          : {report['workload']}")
    print(
        "per-probe speedup : "
        f"mean {per_probe['mean_speedup']:.2f}x, "
        f"geomean {per_probe['geomean_speedup']:.2f}x "
        f"(min {per_probe['min_speedup']:.2f}x, "
        f"max {per_probe['max_speedup']:.2f}x)"
    )
    for kind, value in per_probe["by_kind_mean"].items():
        print(f"  {kind:<8}        : {value:.2f}x")
    print(
        "clifford          : "
        f"{per_probe['clifford_fast_hits']} hits, "
        f"{per_probe['clifford_fallbacks']} fallbacks, "
        f"max TV {per_probe['max_tv']:.4f}"
    )
    print(
        "grouped sweep     : "
        f"{sweep['aggregate_speedup']:.2f}x aggregate "
        f"({sweep['engine_off']['ms_per_probe']:.1f} -> "
        f"{sweep['engine_on']['ms_per_probe']:.1f} ms/probe)"
    )
    print(
        "dense identity    : "
        f"ghz7={report['dense_identity_ghz7']['identical']} "
        f"ghz5={report['dense_identity_ghz5']['identical']}"
    )
    print(
        "cluster regime    : "
        f"{report['cluster_regime_ghz5']['aggregate_speedup']:.2f}x "
        "aggregate on GHZ-5, "
        f"{report['dense_identity_ghz5']['batched_stats']['batch_groups']}"
        " stacked clusters"
    )
    print(f"written           : {out_path}")

    if args.check:
        failures = []
        if per_probe["mean_speedup"] < 3.0:
            failures.append(
                f"mean per-probe speedup "
                f"{per_probe['mean_speedup']:.2f}x < 3x"
            )
        if per_probe["max_tv"] > _TV_BUDGET:
            failures.append(
                f"fast-path TV {per_probe['max_tv']:.4f} > {_TV_BUDGET}"
            )
        if not report["dense_identity_ghz7"]["identical"]:
            failures.append("GHZ-7 dense batched counts diverged")
        if not report["dense_identity_ghz5"]["identical"]:
            failures.append("GHZ-5 dense batched counts diverged")
        if report["dense_identity_ghz5"]["batched_stats"][
            "batch_groups"
        ] == 0:
            failures.append("GHZ-5 sweep formed no stacked clusters")
        if sweep["aggregate_speedup"] < 1.2:
            failures.append(
                f"grouped sweep aggregate "
                f"{sweep['aggregate_speedup']:.2f}x < 1.2x"
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
