"""Ablation (beyond the paper): ANGEL quality vs probe shot budget."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_ablation_shots(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "ablation_shots",
            context=context,
            shot_budgets=(64, 256, 1024, 4096),
            final_shots=4096,
        ),
    )
    emit(result)
    assert len(result.rows) == 4
