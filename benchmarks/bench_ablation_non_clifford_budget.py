"""Ablation (beyond the paper): CopyCat quality vs non-Clifford budget."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_ablation_budget(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "ablation_budget", context=context, budgets=(0, 1, 2, 4), exact=True
        ),
    )
    emit(result)
    assert len(result.rows) == 4
