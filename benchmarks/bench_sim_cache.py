"""Simulation-cache benchmark: hierarchy on vs off on probe workloads.

Standalone script (no pytest-benchmark dependency) measuring a repeated
localized-search probe workload — GHZ-7 on an Aspen-11 subgraph (8
links), per-link batches of reference + mass-replacement candidates,
each sweep re-probed twice for confidence and submitted as
calibration-window snapshot batches — with the simulation
cache hierarchy (layer fusion + prefix-state memoization + distribution
caching) enabled and disabled, and checking the two paths produce
seed-identical counts. Writes ``BENCH_sim.json`` next to this file's
parent directory.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_cache.py [--quick]

``--quick`` trims the round count for CI smoke runs. The acceptance bar
(enforced by ``--check``) is a >=2x hierarchy-over-uncached speedup with
seed-identical counts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.compiler import transpile
from repro.core.sequence import NativeGateSequence
from repro.device.presets import aspen11
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.programs.ghz import ghz


def _probe_round(device, compiled, shots: int, rng) -> list:
    """One localized-search pass worth of probe jobs.

    For every link the program uses: the reference sequence plus every
    mass-replacement candidate (all of that link's sites switched to an
    alternative native gate) — the paper's ``1 + 2L`` probe shape, with
    the reference re-probed per link batch.
    """
    reference = NativeGateSequence.uniform(compiled.sites, "cz")
    options = compiled.gate_options()
    jobs = []
    number = 0
    for link in compiled.links_used():
        link_sequences = [reference]
        alternatives = sorted(
            gate for gate in options[link] if gate != "cz"
        )
        for gate in alternatives:
            gates = tuple(
                gate if site.link == link else ref_gate
                for site, ref_gate in zip(compiled.sites, reference.gates)
            )
            link_sequences.append(
                NativeGateSequence(compiled.sites, gates)
            )
        for sequence in link_sequences:
            circuit = compiled.nativized(
                sequence, name_suffix=f"_probe{number}"
            )
            jobs.append(
                Job(
                    circuit,
                    shots,
                    seed=int(rng.integers(2**31)),
                    tag="probe",
                )
            )
            number += 1
    return jobs


def run(rounds: int, shots: int, repeats: int = 2):
    results = {}
    counts_by_mode = {}
    for mode, cached in (("uncached", False), ("hierarchy", True)):
        device = aspen11(seed=23, sim_cache=cached)
        compiled = transpile(ghz(7), device)
        assert len(compiled.links_used()) >= 4, "need >= 4 Aspen-11 links"
        executor = BatchExecutor(
            LocalBackend(device), mode="parallel", max_workers=1
        )
        rng = np.random.default_rng(5)
        all_counts = []
        jobs_total = 0
        start = time.perf_counter()
        for _ in range(rounds):
            # One calibration-window snapshot batch: the full per-link
            # probe sweep, re-probed ``repeats`` times for confidence
            # (fig. 21 style). Each re-probe draws fresh shots; only the
            # hierarchy path skips re-simulating the distributions.
            jobs = []
            for _ in range(repeats):
                jobs.extend(_probe_round(device, compiled, shots, rng))
            jobs_total += len(jobs)
            batch = executor.submit_batch(jobs)
            all_counts.extend(r.counts for r in batch)
        elapsed = time.perf_counter() - start
        counts_by_mode[mode] = all_counts
        stats = executor.stats.snapshot()
        results[mode] = {
            "rounds": rounds,
            "jobs": jobs_total,
            "shots_per_job": shots,
            "links": len(compiled.links_used()),
            "wall_time_s": elapsed,
            "ms_per_job": 1e3 * elapsed / jobs_total,
            "dist_hits": stats["sim_dist_hits"],
            "dist_misses": stats["sim_dist_misses"],
            "prefix_hits": stats["sim_prefix_hits"],
            "prefix_misses": stats["sim_prefix_misses"],
        }
    # Same device seed + same per-job sampling seeds: the hierarchy must
    # reproduce the uncached counts exactly (every cache hit replays a
    # previously computed distribution; invalidation tracks drift_epoch).
    identical = counts_by_mode["hierarchy"] == counts_by_mode["uncached"]
    speedup = (
        results["uncached"]["wall_time_s"]
        / results["hierarchy"]["wall_time_s"]
    )
    return {
        "benchmark": "sim_cache_probe_workload",
        "workload": (
            "GHZ-7 localized-search probes on aspen-11 "
            f"({results['hierarchy']['links']} links, "
            f"{results['hierarchy']['jobs']} jobs over {rounds} "
            f"snapshot rounds) @ {shots} shots"
        ),
        "uncached": results["uncached"],
        "hierarchy": results["hierarchy"],
        "speedup": speedup,
        "counts_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced budget for CI"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless speedup >= 2x with identical counts",
    )
    args = parser.parse_args(argv)

    rounds = 1 if args.quick else 3
    shots = 256
    report = run(rounds, shots)

    out_path = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload : {report['workload']}")
    print(f"uncached : {report['uncached']['ms_per_job']:.2f} ms/job")
    print(f"hierarchy: {report['hierarchy']['ms_per_job']:.2f} ms/job")
    print(
        f"hits     : {report['hierarchy']['dist_hits']} dist, "
        f"{report['hierarchy']['prefix_hits']} prefix"
    )
    print(f"speedup  : {report['speedup']:.2f}x")
    print(f"identical: {report['counts_identical']}")
    print(f"written  : {out_path}")

    if args.check:
        if not report["counts_identical"]:
            print(
                "FAIL: hierarchy counts differ from uncached",
                file=sys.stderr,
            )
            return 1
        if report["speedup"] < 2.0:
            print(
                f"FAIL: speedup {report['speedup']:.2f}x < 2x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
