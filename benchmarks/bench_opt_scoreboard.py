"""Optimization-pipeline scoreboard over the named benchmark suite.

Standalone script (no pytest-benchmark dependency) compiling each named
benchmark (``wstate_n3``, ``adder_n4``, ``fredkin_n3``,
``basis_trotter_n4``, ``grover_n2``, ``qec_en_n5``) end to end — ANGEL
selection included — at every optimization level, and reporting what the
pre-search passes buy:

* ``scoreboard`` — per benchmark and level: routed size / depth /
  two-qubit count / non-local ratio, CNOT sites and links, the paper's
  ``1 + 2L`` probe budget, actual CopyCat probes executed, end-to-end
  compile wall time, and final success rate. Level 0 is additionally
  checked **bit-identical** against the default pipeline (no
  ``optimization_level`` argument at all).
* ``ghz7_sweep`` — the GHZ-7 ANGEL compile (transpile + probe sweep +
  nativize), level 0 vs level 2. GHZ is logically irreducible, so any
  win here is pure native-circuit cleanup: every probe gets shorter, so
  the probe sweep — the compile-time term the paper bounds — gets
  faster.

Writes ``BENCH_opt.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_opt_scoreboard.py [--smoke]

``--smoke`` trims shots/rounds for CI. The acceptance bar (enforced by
``--check``) is a >=20% mean reduction in routed two-qubit gate count, a
probe-budget reduction on >=4 named benchmarks, an improved GHZ-7
end-to-end compile wall time at level 2, and bit-identical level-0
results. The wall-time bar is enforced only in full mode: the level-2
win on GHZ-7 is a few percent of a multi-second compile, which shared
CI runners cannot resolve reliably, so ``--smoke --check`` reports the
sweep but gates only the deterministic criteria.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.compiler import transpile
from repro.core import Angel, AngelConfig, NativeGateSequence
from repro.exec import Job
from repro.experiments import ExperimentContext
from repro.metrics import success_rate_from_counts
from repro.programs import get_benchmark
from repro.programs.ghz import ghz

NAMED_BENCHMARKS = (
    "wstate_n4",
    "adder_n4",
    "fredkin_n3",
    "basis_trotter_n4",
    "grover_n2",
    "qec_en_n5",
)

_SEED = 11
_FINAL_SEED = 20230
_LEVELS = (0, 1, 2)


def _circuit_stats(circuit):
    ops = [
        g
        for g in circuit
        if not (g.is_measurement or g.is_barrier)
    ]
    two_qubit = sum(1 for g in ops if len(g.qubits) == 2)
    return {
        "size": len(ops),
        "depth": circuit.depth(),
        "two_qubit_gates": two_qubit,
        "non_local_ratio": (two_qubit / len(ops)) if ops else 0.0,
    }


def _compile_and_run(program, context, shots, probe_shots, compiled=None):
    """One end-to-end ANGEL compile + execution inside *context*.

    Returns the record and the CompiledProgram (for identity checks).
    A pre-built *compiled* skips transpile (used by the legacy-path
    identity check, which must transpile outside the context helper).
    """
    start = time.perf_counter()
    if compiled is None:
        compiled = context.transpile(program)
    if compiled.num_cnot_sites:
        angel = Angel(
            context.device,
            context.calibration,
            AngelConfig(probe_shots=probe_shots, seed=_SEED),
            executor=context.executor,
        )
        selection = angel.select(compiled)
        sequence = selection.sequence
        probes = selection.copycats_executed
    else:
        # No CNOT sites: nothing for ANGEL to choose, no probes to pay.
        sequence = NativeGateSequence.uniform(compiled.sites, "cz")
        probes = 0
    native = compiled.nativized(sequence, name_suffix="_bench")
    compile_wall = time.perf_counter() - start
    final = context.executor.submit(
        Job(native, shots, seed=_FINAL_SEED, tag="final")
    )
    success = success_rate_from_counts(
        compiled.ideal_distribution(), final.counts
    )
    links = len(compiled.links_used())
    record = {
        "routed": _circuit_stats(compiled.scheduled),
        "native": _circuit_stats(native),
        "cnot_sites": compiled.num_cnot_sites,
        "links": links,
        "probe_budget": 1 + 2 * links,
        "probes_executed": probes,
        "compile_wall_s": compile_wall,
        "success_rate": success,
        "final_counts": dict(sorted(final.counts.items())),
    }
    return record, compiled


def _run_benchmark(name, shots, probe_shots):
    """All levels for one benchmark, plus the level-0 identity check."""
    levels = {}
    for level in _LEVELS:
        context = ExperimentContext.create(
            seed=_SEED, optimization_level=level
        )
        try:
            program = get_benchmark(name).build()
            record, _ = _compile_and_run(
                program, context, shots, probe_shots
            )
        finally:
            context.close()
        levels[str(level)] = record
    # Legacy path: transpile() with no optimization argument at all must
    # match level 0 bit for bit (counts included) on a fresh chip-day.
    context = ExperimentContext.create(seed=_SEED)
    try:
        program = get_benchmark(name).build()
        legacy_compiled = transpile(
            program, context.device, context.calibration
        )
        legacy, _ = _compile_and_run(
            program, context, shots, probe_shots, compiled=legacy_compiled
        )
    finally:
        context.close()
    level0 = levels["0"]
    identical = (
        legacy["final_counts"] == level0["final_counts"]
        and legacy["routed"] == level0["routed"]
        and legacy["probes_executed"] == level0["probes_executed"]
    )
    base = levels["0"]["routed"]["two_qubit_gates"]
    opt = levels["2"]["routed"]["two_qubit_gates"]
    reduction = (base - opt) / base if base else 0.0
    return {
        "levels": levels,
        "level0_identical": identical,
        "two_qubit_reduction": reduction,
        "probe_budget_delta": (
            levels["0"]["probe_budget"] - levels["2"]["probe_budget"]
        ),
        "success_delta": (
            levels["2"]["success_rate"] - levels["0"]["success_rate"]
        ),
    }


def _time_ghz7_select(level, probe_shots):
    """One timed GHZ-7 ANGEL select + nativize at *level*."""
    context = ExperimentContext.create(
        seed=_SEED, optimization_level=level
    )
    try:
        compiled = context.transpile(ghz(7))
        angel = Angel(
            context.device,
            context.calibration,
            AngelConfig(probe_shots=probe_shots, seed=_SEED),
            executor=context.executor,
        )
        start = time.perf_counter()
        selection = angel.select(compiled)
        compiled.nativized(selection.sequence)
        return time.perf_counter() - start, selection.copycats_executed
    finally:
        context.close()


def _run_ghz7_sweep(rounds, probe_shots):
    """GHZ-7 ANGEL compile wall time, level 0 vs level 2.

    One untimed warmup select absorbs process cold-start (imports, BLAS
    thread spin-up) that would otherwise penalize whichever level runs
    first; the timed rounds then interleave the levels so ambient load
    hits both symmetrically; the min over rounds is the statistic (the
    deterministic compute floor, robust to one-off scheduler noise).

    The sweep must run *before* the scoreboard phase: after a few dozen
    compiles the allocator and page cache are warm enough to collapse
    the channel-construction cost that level 2's smaller circuits save,
    masking the win a first-compile (CLI) user actually sees.
    """
    _time_ghz7_select(0, probe_shots)  # warmup, discarded
    walls = {0: [], 2: []}
    probes = {}
    for _ in range(rounds):
        for level in (0, 2):
            wall, copycats = _time_ghz7_select(level, probe_shots)
            walls[level].append(wall)
            probes[level] = copycats
    results = {}
    for level in (0, 2):
        results[f"level{level}"] = {
            "rounds": rounds,
            "probes": probes[level],
            "mean_wall_s": float(np.mean(walls[level])),
            "min_wall_s": float(np.min(walls[level])),
        }
    results["speedup"] = (
        results["level0"]["min_wall_s"] / results["level2"]["min_wall_s"]
    )
    return results


def run(shots, probe_shots, rounds):
    # Timing first (see _run_ghz7_sweep on why order matters), then the
    # deterministic scoreboard.
    ghz7 = _run_ghz7_sweep(rounds, probe_shots)
    scoreboard = {
        name: _run_benchmark(name, shots, probe_shots)
        for name in NAMED_BENCHMARKS
    }
    reductions = [
        entry["two_qubit_reduction"] for entry in scoreboard.values()
    ]
    budget_wins = sum(
        1
        for entry in scoreboard.values()
        if entry["probe_budget_delta"] > 0
    )
    return {
        "benchmark": "opt_scoreboard",
        "workload": (
            f"{len(NAMED_BENCHMARKS)} named benchmarks x levels "
            f"{list(_LEVELS)} on aspen-11 @ {shots} shots "
            f"({probe_shots} probe shots), plus GHZ-7 ANGEL sweep "
            f"x{rounds} rounds"
        ),
        "scoreboard": scoreboard,
        "mean_two_qubit_reduction": float(np.mean(reductions)),
        "probe_budget_reductions": budget_wins,
        "level0_all_identical": all(
            entry["level0_identical"] for entry in scoreboard.values()
        ),
        "ghz7_sweep": ghz7,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced budget for CI"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero unless mean two-qubit reduction >= 20%%, "
            "probe budget shrinks on >= 4 benchmarks, GHZ-7 compile "
            "gets faster at level 2 (full mode only), and level 0 is "
            "bit-identical"
        ),
    )
    args = parser.parse_args(argv)

    shots = 256 if args.smoke else 1024
    probe_shots = 128 if args.smoke else 256
    rounds = 1 if args.smoke else 3
    report = run(shots, probe_shots, rounds)

    out_path = Path(__file__).resolve().parent.parent / "BENCH_opt.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload            : {report['workload']}")
    header = (
        f"{'benchmark':<17}{'2q L0':>6}{'2q L2':>6}{'redux':>7}"
        f"{'budget L0':>10}{'budget L2':>10}{'d(SR)':>8}{'L0==':>6}"
    )
    print(header)
    for name, entry in report["scoreboard"].items():
        l0, l2 = entry["levels"]["0"], entry["levels"]["2"]
        print(
            f"{name:<17}"
            f"{l0['routed']['two_qubit_gates']:>6}"
            f"{l2['routed']['two_qubit_gates']:>6}"
            f"{entry['two_qubit_reduction']:>6.0%}"
            f"{l0['probe_budget']:>10}"
            f"{l2['probe_budget']:>10}"
            f"{entry['success_delta']:>+8.3f}"
            f"{str(entry['level0_identical']):>6}"
        )
    ghz7 = report["ghz7_sweep"]
    print(
        "mean 2q reduction   : "
        f"{report['mean_two_qubit_reduction']:.1%}"
    )
    print(
        "probe-budget wins   : "
        f"{report['probe_budget_reductions']}/{len(NAMED_BENCHMARKS)}"
    )
    print(
        "ghz7 angel compile  : "
        f"{ghz7['speedup']:.2f}x "
        f"({1e3 * ghz7['level0']['min_wall_s']:.0f} -> "
        f"{1e3 * ghz7['level2']['min_wall_s']:.0f} ms, "
        f"{ghz7['level0']['probes']} probes)"
    )
    print(f"written             : {out_path}")

    if args.check:
        failures = []
        if report["mean_two_qubit_reduction"] < 0.20:
            failures.append(
                f"mean two-qubit reduction "
                f"{report['mean_two_qubit_reduction']:.1%} < 20%"
            )
        if report["probe_budget_reductions"] < 4:
            failures.append(
                f"probe budget shrank on only "
                f"{report['probe_budget_reductions']}/"
                f"{len(NAMED_BENCHMARKS)} benchmarks (< 4)"
            )
        if not report["level0_all_identical"]:
            failures.append("level 0 diverged from the default pipeline")
        # Wall-time bar only in full mode: the GHZ-7 level-2 win is a
        # few percent, below what a shared CI runner can resolve.
        if not args.smoke and ghz7["speedup"] < 1.0:
            failures.append(
                f"GHZ-7 compile at level 2 not faster "
                f"({ghz7['speedup']:.2f}x)"
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
