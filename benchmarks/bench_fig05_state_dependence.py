"""Fig. 5: micro-benchmark SR vs prepared state, per native gate."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig5(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig5", context=context, shots=2048),
    )
    emit(result)
    assert len(result.rows) == 5
    # Paper shape: SR varies with theta for every gate.
    for gate, series in result.series.items():
        assert max(series) - min(series) > 0.0, gate
