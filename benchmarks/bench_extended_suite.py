"""Beyond the paper: the Fig. 18 evaluation on the extra workloads.

Runs the headline three-policy comparison on the non-Table-I programs
(W state, QFT, Fredkin, full adder) to check ANGEL generalizes past the
paper's suite.
"""

from repro.experiments import run_experiment
from repro.metrics import geometric_mean

from conftest import emit, run_once


def bench_extended_suite(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig18",
            context=context,
            benchmarks=("W_n4", "QFT_n3", "fredkin_n3", "adder_n4"),
            final_shots=4096,
            probe_shots=1024,
            runtime_best_shots=512,
        ),
    )
    emit(result)
    assert len(result.rows) == 4
    ratios = [row[3] for row in result.rows]
    # ANGEL should not lose on average on unseen workloads.
    assert geometric_mean(ratios) > 0.95
