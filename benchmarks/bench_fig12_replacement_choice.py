"""Fig. 12: Clifford replacement choice decides CopyCat imitation quality.

Paper shape: Z/S CopyCats correlate strongly with the program
(SCC ~0.87-0.89), the X CopyCat poorly (SCC ~0.13).
"""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig12(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig12", context=context, exact=True),
    )
    emit(result)
    sccs = {row[0]: row[1] for row in result.rows}
    assert sccs["nearest-Clifford CopyCat"] > sccs["X CopyCat"]
    assert max(sccs["Z CopyCat"], sccs["S CopyCat"]) > sccs["X CopyCat"]
