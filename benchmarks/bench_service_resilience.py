"""Service-resilience benchmark: RemoteBackend vs LocalBackend.

Standalone script (no pytest-benchmark dependency) measuring (a) the
zero-fault overhead of routing ANGEL's GHZ-5 probe workload through the
emulated cloud service + resilient RemoteBackend instead of the direct
LocalBackend, and (b) completion + degradation behaviour under each
fault profile. Writes ``BENCH_service.json`` next to ``BENCH_exec.json``
at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_resilience.py [--quick]

``--quick`` trims probe shots for CI smoke runs. The acceptance bar
(enforced by ``--check``) is:

* zero-fault remote is *bit-identical* to local (same learned sequence,
  same probe success rates, same device clock);
* every fault profile completes the full ``1 + 2L`` probe budget
  without raising.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.angel import Angel, AngelConfig
from repro.experiments.context import ExperimentContext
from repro.programs.ghz import ghz
from repro.service import FAULT_PROFILES


def _angel_run(ctx, probe_shots: int, seed: int = 3):
    angel = Angel(
        ctx.device,
        ctx.calibration,
        AngelConfig(probe_shots=probe_shots, seed=seed),
        executor=ctx.executor,
    )
    start = time.perf_counter()
    compiled, result = angel.compile_and_select(ghz(5))
    elapsed = time.perf_counter() - start
    return angel, compiled, result, elapsed


def run(probe_shots: int):
    report = {
        "benchmark": "service_resilience",
        "workload": f"ANGEL GHZ-5 localized search @ {probe_shots} shots",
        "profiles": {},
    }

    # Baseline: the direct local path.
    ctx_local = ExperimentContext.create()
    _, _, result_local, local_s = _angel_run(ctx_local, probe_shots)
    report["local"] = {
        "wall_time_s": local_s,
        "sequence": list(result_local.sequence.gates),
        "clock_us": ctx_local.device.clock_us,
    }

    for name in sorted(FAULT_PROFILES):
        ctx = ExperimentContext.create(
            backend="remote", fault_profile=name, fault_seed=7
        )
        angel, compiled, result, elapsed = _angel_run(ctx, probe_shots)
        stats = ctx.executor.stats.snapshot()
        report["profiles"][name] = {
            "wall_time_s": elapsed,
            "overhead_vs_local": elapsed / local_s if local_s else None,
            "probes_submitted": result.copycats_executed,
            "probe_budget": angel.expected_probe_count(compiled),
            "probes_failed": result.trace.num_failed,
            "degraded_links": len(result.degraded_links),
            "retries": stats["retries"],
            "job_failures": stats["job_failures"],
            "breaker_trips": stats["breaker_trips"],
            "fallbacks": stats["fallbacks"],
            "sequence": list(result.sequence.gates),
            "clock_us": ctx.device.clock_us,
        }

    zero = report["profiles"]["none"]
    report["zero_fault_bit_identical"] = (
        zero["sequence"] == report["local"]["sequence"]
        and zero["clock_us"] == report["local"]["clock_us"]
        and zero["retries"] == 0
        and zero["job_failures"] == 0
    )
    report["all_profiles_completed_budget"] = all(
        p["probes_submitted"] == p["probe_budget"]
        for p in report["profiles"].values()
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced budget for CI"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero unless zero-fault is bit-identical to local "
            "and every profile completes the probe budget"
        ),
    )
    args = parser.parse_args(argv)

    probe_shots = 100 if args.quick else 400
    report = run(probe_shots)

    out_path = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload : {report['workload']}")
    print(f"local    : {report['local']['wall_time_s'] * 1e3:.0f} ms")
    for name, p in report["profiles"].items():
        print(
            f"{name:<9}: {p['wall_time_s'] * 1e3:.0f} ms "
            f"({p['overhead_vs_local']:.2f}x), "
            f"retries={p['retries']}, failed={p['probes_failed']}, "
            f"degraded={p['degraded_links']}"
        )
    print(f"zero-fault bit-identical: {report['zero_fault_bit_identical']}")
    print(f"all budgets completed   : {report['all_profiles_completed_budget']}")
    print(f"written  : {out_path}")

    if args.check:
        if not report["zero_fault_bit_identical"]:
            print(
                "FAIL: zero-fault remote diverges from local",
                file=sys.stderr,
            )
            return 1
        if not report["all_profiles_completed_budget"]:
            print(
                "FAIL: a fault profile did not complete the probe budget",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
