"""Fig. 6 at the paper's actual scale: all links of Aspen-M-1.

The paper ran 1460 circuits (5 thetas x available gates x 103 links,
some links missing gates). Our M-1 preset reproduces the 103-link count
and the missing-gate structure, so the circuit total lands near the
paper's number.
"""

from repro.experiments import ExperimentContext, run_experiment

from conftest import emit, run_once


def bench_fig6_m1(benchmark):
    context = ExperimentContext.create(
        device_name="aspen-m-1", seed=1, drift_hours=30.0
    )
    result = run_once(
        benchmark,
        lambda: run_experiment("fig6", context=context, exact=True),
    )
    emit(result)
    stats = {r[0]: r[1] for r in result.rows}
    assert stats["links characterized"] == 103
    # Paper: 1460 circuits (out of the nominal 1545).
    assert 1200 <= stats["circuits run"] <= 1545
