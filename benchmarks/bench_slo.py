"""Load/latency SLO benchmark over the multi-tenant compile service.

Standalone script (no pytest-benchmark dependency) driving a seeded
burst workload — 4 tenants x 6 requests across GHZ / BV / QAOA — through
:class:`~repro.service.AngelService` via the :mod:`repro.loadgen`
harness, then extracting SLOs from the collected spans:

* **compile latency** — p50/p95/p99 on both clocks: host wall seconds
  and simulated device microseconds (``svc.request`` span attributes);
* **queue wait & jitter** — enqueue->first-grant percentiles measured
  directly from the :class:`~repro.service.RequestHandle` timestamps,
  plus the population stdev of host latency;
* **throughput & coalescing** — completed requests per wall second and
  scheduler-round shapes from the ``svc.coalesce`` spans;
* **results unchanged** — every :class:`~repro.service.CompileOutcome`
  is compared bit-for-bit against :func:`~repro.service.run_standalone`
  on the same spec, and the *simulated-time* latency percentiles are
  recomputed from the standalone references and pinned equal — the
  reproducibility property the CI gate keys on;
* **SLO verdict** — the workload's declared bounds evaluated by
  :class:`~repro.loadgen.SloPolicy`; any violation fails ``--check``.

Writes ``BENCH_slo.json`` in the repository root (merged into
``BENCH_trajectory.json`` by ``collect_bench.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_slo.py [--smoke] [--check]

``--smoke`` trims shot budgets for CI runners (still 4 tenants, still
24 requests, still all three programs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.loadgen import (
    ArrivalSpec,
    LoadGenerator,
    SloBound,
    TenantLoad,
    WorkloadSpec,
)
from repro.obs import percentile
from repro.service import RequestSpec, run_standalone

_PROGRAMS = ("GHZ_n4", "BV_n4", "QAOA_n5")


def _build_workload(shots: int, probe_shots: int, workers: int):
    return WorkloadSpec(
        name="slo-burst",
        seed=23,
        base=RequestSpec(
            program="GHZ_n4",
            shots=shots,
            probe_shots=probe_shots,
            drift_hours=2.0,
        ),
        workers=workers,
        tenants=tuple(
            TenantLoad(
                name=f"tenant-{index}",
                arrival=ArrivalSpec(
                    kind="burst",
                    bursts=2,
                    burst_size=3,
                    spacing_s=0.01,
                    gap_s=1.0,
                ),
                # Offset program cycles so tenants overlap but are not
                # lockstep: dedup and coalescing both stay exercised.
                programs=_PROGRAMS[index % len(_PROGRAMS):]
                + _PROGRAMS[: index % len(_PROGRAMS)],
            )
            for index in range(4)
        ),
        slo=(
            SloBound(metric="failed", max_value=0),
            SloBound(metric="latency.host.p95_s", max_value=120.0),
            SloBound(metric="latency.host.p99_s", max_value=180.0),
            SloBound(metric="queue_wait.p95_s", max_value=120.0),
            SloBound(metric="throughput_rps", min_value=0.02),
            SloBound(metric="dedup.ratio", min_value=0.1),
        ),
    )


def run(shots: int, probe_shots: int, workers: int):
    workload = _build_workload(shots, probe_shots, workers)
    generator = LoadGenerator(workload)
    schedule = generator.schedule()
    report = generator.run()
    analysis = report.analyze()
    verdict = report.verdict()

    # Bit-equivalence audit + reproducible simulated-time percentiles:
    # one standalone reference per distinct spec; the load-run device
    # times must be (as a multiset) exactly the standalone ones.
    references = {}
    mismatches = 0
    load_device_times = []
    reference_device_times = []
    for slots in report.outcomes.values():
        for slot in slots:
            if isinstance(slot, BaseException):
                continue
            if slot.spec not in references:
                references[slot.spec] = run_standalone(slot.spec)
            reference = references[slot.spec]
            matches = (
                slot.result.sequence == reference.result.sequence
                and slot.result.trace == reference.result.trace
                and slot.final_counts == reference.final_counts
                and slot.device_time_us == reference.device_time_us
            )
            mismatches += 0 if matches else 1
            load_device_times.append(slot.device_time_us)
            reference_device_times.append(reference.device_time_us)
    device_percentiles_reproducible = all(
        percentile(load_device_times, q)
        == percentile(reference_device_times, q)
        for q in (50, 95, 99)
    )

    latency = analysis["latency"]
    return {
        "benchmark": "slo_load_harness",
        "workload": (
            f"{len(workload.tenants)} tenants x "
            f"{len(schedule) // len(workload.tenants)} burst requests "
            f"({'/'.join(_PROGRAMS)}) @ {shots} shots, "
            f"{probe_shots} probe shots, {workers} service workers, "
            f"seed {workload.seed}"
        ),
        "requests": len(schedule),
        "failed": report.failed,
        "rejected": report.rejected,
        "wall_time_s": report.wall_time_s,
        "throughput_rps": analysis["throughput_rps"],
        "latency_host_s": {
            "p50": latency["host"]["p50_s"],
            "p95": latency["host"]["p95_s"],
            "p99": latency["host"]["p99_s"],
            "jitter": latency["host"]["jitter_s"],
        },
        "latency_device_us": {
            "p50": latency["device"]["p50_us"],
            "p95": latency["device"]["p95_us"],
            "p99": latency["device"]["p99_us"],
        },
        "queue_wait_s": {
            "p50": analysis["queue_wait"]["p50_s"],
            "p95": analysis["queue_wait"]["p95_s"],
            "p99": analysis["queue_wait"]["p99_s"],
        },
        "dedup_ratio": analysis["dedup"]["ratio"],
        "coalescing_units_per_round": analysis["coalescing"][
            "mean_units_per_round"
        ],
        "results_unchanged": mismatches == 0,
        "device_percentiles_reproducible": device_percentiles_reproducible,
        "slo": verdict.to_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced shot budget for CI smoke runs",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless no request failed, every outcome and "
        "simulated-time percentile is bit-identical to standalone, and "
        "every declared SLO bound holds",
    )
    args = parser.parse_args(argv)

    shots = 64 if args.smoke else 512
    probe_shots = 16 if args.smoke else 128
    workers = 2 if args.smoke else 4
    report = run(shots, probe_shots, workers)

    out_path = Path(__file__).resolve().parent.parent / "BENCH_slo.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload   : {report['workload']}")
    print(
        f"requests   : {report['requests']} "
        f"({report['failed']} failed, {report['rejected']} rejected) "
        f"in {report['wall_time_s']:.2f}s = "
        f"{report['throughput_rps']:.2f} req/s"
    )
    host = report["latency_host_s"]
    device = report["latency_device_us"]
    print(
        f"latency    : host p50 {host['p50']:.3f}s / p95 "
        f"{host['p95']:.3f}s / p99 {host['p99']:.3f}s "
        f"(jitter {host['jitter']:.3f}s)"
    )
    print(
        f"             device p50 {device['p50'] / 1e6:.4f}s / p95 "
        f"{device['p95'] / 1e6:.4f}s / p99 {device['p99'] / 1e6:.4f}s "
        f"simulated"
    )
    queue = report["queue_wait_s"]
    print(
        f"queue wait : p50 {queue['p50']:.3f}s, p95 {queue['p95']:.3f}s, "
        f"p99 {queue['p99']:.3f}s"
    )
    print(
        f"dedup      : {report['dedup_ratio']:.1%} replayed; "
        f"{report['coalescing_units_per_round']:.2f} units/round "
        f"coalesced"
    )
    print(f"unchanged  : {report['results_unchanged']}")
    print(
        f"device pcts: reproducible="
        f"{report['device_percentiles_reproducible']}"
    )
    print(
        f"slo        : "
        f"{'PASS' if report['slo']['passed'] else 'FAIL'} "
        f"({len(report['slo']['bounds'])} bounds)"
    )
    print(f"written    : {out_path}")

    if args.check:
        if report["failed"]:
            print(
                f"FAIL: {report['failed']} requests failed",
                file=sys.stderr,
            )
            return 1
        if not report["results_unchanged"]:
            print(
                "FAIL: load-driven outcomes differ from standalone runs",
                file=sys.stderr,
            )
            return 1
        if not report["device_percentiles_reproducible"]:
            print(
                "FAIL: simulated-time percentiles diverged from the "
                "standalone references",
                file=sys.stderr,
            )
            return 1
        if not report["slo"]["passed"]:
            for bound in report["slo"]["bounds"]:
                if not bound["ok"]:
                    print(
                        f"FAIL: SLO bound violated: {bound}",
                        file=sys.stderr,
                    )
            return 1
        print("CHECK: load harness within acceptance bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
