"""Fleet scaling benchmark: probe throughput across device replicas.

Standalone script (no pytest-benchmark dependency) replaying the same
multi-tenant workload through :class:`~repro.service.AngelService` at
increasing fleet sizes — 1, 2 (and 4 in full mode) independently
drifting Aspen replicas behind the affinity-aware
:class:`~repro.fleet.FleetRouter` — and measuring:

* **probe throughput** — executed probe jobs per second of *device
  makespan*: the busiest replica's cumulative simulated device time is
  the fleet's critical path, and sharding the workload across more
  replicas shortens it. This is the capacity a real fleet buys —
  devices, not host CPU, are the scarce resource (the emulator
  compresses device time, so wall-clock throughput on one GIL-bound
  host is reported but only informational). Service workers are sized
  to the fleet (``workers = replicas``).
* **affinity-hit ratio** — fraction of placements the router served
  from stickiness or prefix/tenant affinity rather than pure load
  balancing (from the router's own counters).
* **results unchanged** — every outcome is compared bit-for-bit
  (sequence, trace, final counts) against
  :func:`~repro.service.run_standalone` on the replica-adjusted spec
  of the replica it actually ran on, pinning the fleet's core
  invariant under load.

Each tenant compiles its own program with its own device seed, so
cross-tenant dedup never confounds the scaling measurement (a 1-replica
fleet would otherwise dedup strictly more than a sharded one).

Writes ``BENCH_fleet.json`` in the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--smoke] [--check]

``--smoke`` trims budgets and fleet sizes for CI runners. The
acceptance bar (``--check``): zero failed requests, every outcome
bit-identical to its per-replica standalone reference, an affinity-hit
ratio > 0 at the largest fleet, and probe throughput at the largest
fleet at least matching the 1-replica fleet.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.fleet import FleetSpec
from repro.obs import MetricsRegistry, Tracer
from repro.obs import runtime as obs
from repro.service import (
    AngelService,
    RequestSpec,
    TenantConfig,
    replay_workload,
    run_standalone,
)

_PROGRAMS = ("GHZ_n4", "BV_n4", "QAOA_n5", "GHZ_n5")


def _build_workload(tenants, requests_per_tenant, shots, probe_shots):
    """Per-tenant distinct programs and seeds (no cross-tenant overlap)."""
    workload = {}
    for index in range(tenants):
        spec = RequestSpec(
            program=_PROGRAMS[index % len(_PROGRAMS)],
            shots=shots,
            probe_shots=probe_shots,
            seed=11 + 17 * index,
            drift_hours=2.0,
        )
        workload[f"tenant-{index}"] = [
            replace(spec) for _ in range(requests_per_tenant)
        ]
    return workload


def _outcome_matches(outcome, reference) -> bool:
    return (
        outcome.result.sequence == reference.result.sequence
        and outcome.result.trace == reference.result.trace
        and outcome.final_counts == reference.final_counts
        and outcome.probes_run == reference.probes_run
    )


def run_fleet(fleet_size, workload, stagger_hours):
    fleet = FleetSpec.create(fleet_size, stagger_hours=stagger_hours)
    total_requests = sum(len(specs) for specs in workload.values())
    tracer = Tracer()
    registry = MetricsRegistry()
    previous = obs.install(tracer, registry)
    service = AngelService(
        num_workers=fleet_size,
        tenants=tuple(TenantConfig(name) for name in sorted(workload)),
        fleet=fleet,
    )
    start = time.perf_counter()
    try:
        outcomes = replay_workload(workload, service=service)
    finally:
        elapsed = time.perf_counter() - start
        service.close()
        obs.uninstall(previous)

    # Bit-equivalence audit against the replica-adjusted standalone
    # reference of whichever replica each request actually landed on.
    references = {}
    failed = mismatches = probes = dedup_hits = 0
    for name in sorted(outcomes):
        for slot, spec in zip(outcomes[name], workload[name]):
            if isinstance(slot, BaseException):
                failed += 1
                continue
            adjusted = fleet.replicas[slot.fleet_replica].adjust(spec)
            key = (adjusted, slot.fleet_replica)
            if key not in references:
                references[key] = run_standalone(adjusted)
            if not _outcome_matches(slot, references[key]):
                mismatches += 1
            probes += slot.probes_run
            dedup_hits += slot.dedup_hits

    report = service.fleet_report()
    router = report["router"]
    makespan_s = max(
        r["device_time_us"] for r in report["replicas"]
    ) / 1e6
    return {
        "fleet_size": fleet_size,
        "workers": fleet_size,
        "requests": total_requests,
        "failed": failed,
        "wall_time_s": elapsed,
        "throughput_rps": total_requests / elapsed if elapsed else 0.0,
        "wall_probe_jobs_per_s": probes / elapsed if elapsed else 0.0,
        "device_makespan_s": makespan_s,
        "probe_jobs_per_device_s": (
            probes / makespan_s if makespan_s else 0.0
        ),
        "probes": probes,
        "dedup_hits": dedup_hits,
        "affinity_hit_ratio": router["affinity_hit_ratio"],
        "migrations": router["migrations"],
        "placements_by_reason": router["by_reason"],
        "per_replica_jobs": {
            r["name"]: r["jobs"] for r in report["replicas"]
        },
        "results_unchanged": mismatches == 0,
    }


def run(fleet_sizes, tenants, requests_per_tenant, shots, probe_shots,
        stagger_hours):
    workload = _build_workload(
        tenants, requests_per_tenant, shots, probe_shots
    )
    runs = [
        run_fleet(size, workload, stagger_hours) for size in fleet_sizes
    ]
    base = runs[0]["probe_jobs_per_device_s"]
    peak = runs[-1]["probe_jobs_per_device_s"]
    return {
        "benchmark": "fleet_scaling",
        "workload": (
            f"{tenants} tenants x {requests_per_tenant} requests "
            f"(distinct program+seed per tenant) @ {shots} shots, "
            f"{probe_shots} probe shots; stagger {stagger_hours}h"
        ),
        "fleet_sizes": list(fleet_sizes),
        "runs": runs,
        "throughput_scaling": peak / base if base else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budgets and fleet sizes for CI smoke runs",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless no request failed, every outcome is "
        "bit-identical to its per-replica standalone reference, the "
        "affinity-hit ratio is > 0, and throughput does not collapse "
        "with fleet size",
    )
    args = parser.parse_args(argv)

    fleet_sizes = (1, 2) if args.smoke else (1, 2, 4)
    tenants = 4 if args.smoke else 8
    requests_per_tenant = 2 if args.smoke else 3
    shots = 128 if args.smoke else 1024
    probe_shots = 64 if args.smoke else 256
    report = run(
        fleet_sizes, tenants, requests_per_tenant, shots, probe_shots,
        stagger_hours=3.0,
    )

    out_path = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload   : {report['workload']}")
    for entry in report["runs"]:
        print(
            f"fleet={entry['fleet_size']}: "
            f"{entry['probe_jobs_per_device_s']:.2f} probe jobs per "
            f"device-second (makespan {entry['device_makespan_s']:.2f}s, "
            f"wall {entry['wall_time_s']:.2f}s), affinity "
            f"{entry['affinity_hit_ratio']:.1%}, "
            f"{entry['migrations']} migrations, unchanged "
            f"{entry['results_unchanged']}"
        )
    print(f"scaling    : x{report['throughput_scaling']:.2f} probe "
          f"throughput from fleet=1 to fleet={report['fleet_sizes'][-1]}")
    print(f"written    : {out_path}")

    if args.check:
        failed = sum(entry["failed"] for entry in report["runs"])
        if failed:
            print(f"FAIL: {failed} requests failed", file=sys.stderr)
            return 1
        if not all(e["results_unchanged"] for e in report["runs"]):
            print(
                "FAIL: fleet outcomes differ from per-replica "
                "standalone runs",
                file=sys.stderr,
            )
            return 1
        if report["runs"][-1]["affinity_hit_ratio"] <= 0.0:
            print(
                "FAIL: router never placed by affinity", file=sys.stderr
            )
            return 1
        if report["throughput_scaling"] < 1.1:
            print(
                "FAIL: device-time probe throughput did not scale with "
                f"fleet size (x{report['throughput_scaling']:.2f})",
                file=sys.stderr,
            )
            return 1
        print("CHECK: fleet bench within acceptance bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
