"""Fig. 19: program vs CopyCat SR correlation across all 81 sequences.

Paper shape: strong positive rank correlation — the CopyCat's SR
ordering tracks the program's.
"""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig19(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig19", context=context, exact=True),
    )
    emit(result)
    scc = {r[0]: r[1] for r in result.rows}["Spearman correlation"]
    assert scc > 0.6, f"CopyCat should imitate the program (SCC {scc})"
