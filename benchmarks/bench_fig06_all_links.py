"""Fig. 6: micro-benchmark SR distribution across every device link.

The paper ran 1460 circuits on Aspen-M-1's 103 links; here the full
Aspen-11 link set is characterized with exact noisy distributions.
"""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig6(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig6", context=context, exact=True),
    )
    emit(result)
    stats = {r[0]: r[1] for r in result.rows}
    # Paper shape: most links have a state-dependent winner, a few have
    # a single always-best gate.
    assert stats["links with state-dependent winner"] > 0
    assert stats["circuits run"] > 500
