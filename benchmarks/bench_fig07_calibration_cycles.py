"""Fig. 7: micro-benchmark winners across two calibration cycles."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig7(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig7", context=context, shots=2048, cycle_gap_hours=24.0
        ),
    )
    emit(result)
    assert len(result.rows) == 5
