"""Worker-pool benchmark: sequential vs in-process vs pooled batches.

Standalone script (no pytest-benchmark dependency) measuring the same
repeated localized-search probe workload as ``bench_sim_cache.py`` —
GHZ-7 on an Aspen-11 subgraph, per-link batches of reference +
mass-replacement candidates, re-probed for confidence, submitted as
calibration-window snapshot batches — three ways:

* ``sequential`` — the paper's probing loop: one job at a time through
  ``device.run``, the clock (and drift epoch) advancing after every job,
  so each job recomputes its distribution against a fresh snapshot.
* ``in_process`` — the parallel snapshot discipline with
  ``max_workers=1``: all of a batch's distributions computed in the
  parent against one snapshot (the off-pool baseline the pool must
  match bit-for-bit).
* ``pooled`` — the same discipline on the persistent
  :class:`~repro.exec.pool.WorkerPool` with prefix-affinity scheduling.

The headline ``speedup`` is pooled over *sequential* (the mode a user
migrates from); ``counts_identical`` checks the epoch-delta
synchronization contract (pooled == in_process, seed for seed); and
``pool_spawns`` pins pool persistence (exactly one spawn per sweep).
Writes ``BENCH_parallel.json`` next to this file's parent directory.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]

``--smoke`` trims the budget and drops to 2 workers for CI runners. The
acceptance bar (enforced by ``--check``) is a >=2x pooled-over-
sequential speedup with identical pooled/in-process counts and a single
pool spawn. On hosts where process pools are unavailable the pooled leg
degrades in-process; the script reports that and exits cleanly rather
than failing the check.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.compiler import transpile
from repro.device.presets import aspen11
from repro.exec import BatchExecutor, LocalBackend
from repro.programs.ghz import ghz

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_sim_cache import _probe_round  # noqa: E402

_MODES = (
    ("sequential", "sequential", None),
    ("in_process", "parallel", 1),
    ("pooled", "parallel", None),  # workers filled in at run time
)


def run(rounds: int, shots: int, workers: int, repeats: int = 2):
    results = {}
    counts_by_mode = {}
    spawns = fallbacks = 0
    for name, mode, max_workers in _MODES:
        if name == "pooled":
            max_workers = workers
        device = aspen11(seed=23, sim_cache=True)
        compiled = transpile(ghz(7), device)
        backend = LocalBackend(device)
        executor = BatchExecutor(
            backend, mode=mode, max_workers=max_workers
        )
        rng = np.random.default_rng(5)
        all_counts = []
        jobs_total = 0
        start = time.perf_counter()
        for _ in range(rounds):
            jobs = []
            for _ in range(repeats):
                jobs.extend(_probe_round(device, compiled, shots, rng))
            jobs_total += len(jobs)
            batch = executor.submit_batch(jobs)
            all_counts.extend(r.counts for r in batch)
        elapsed = time.perf_counter() - start
        backend.close()
        counts_by_mode[name] = all_counts
        stats = executor.stats.snapshot()
        results[name] = {
            "rounds": rounds,
            "jobs": jobs_total,
            "shots_per_job": shots,
            "links": len(compiled.links_used()),
            "max_workers": max_workers,
            "wall_time_s": elapsed,
            "ms_per_job": 1e3 * elapsed / jobs_total,
            "affinity_hits": stats["affinity_hits"],
            "ship_kib": stats["ship_bytes"] / 1024.0,
            "pool_fallbacks": stats["pool_fallbacks"],
        }
        if name == "pooled":
            spawns = backend.pool_spawns
            fallbacks = backend.pool_fallbacks
    # The bit-equivalence contract is on- vs off-pool for the *same*
    # snapshot discipline; sequential sees within-batch drift and is a
    # different (slower) semantics, not a different implementation.
    identical = counts_by_mode["pooled"] == counts_by_mode["in_process"]
    speedup = (
        results["sequential"]["wall_time_s"]
        / results["pooled"]["wall_time_s"]
    )
    return {
        "benchmark": "worker_pool_probe_workload",
        "workload": (
            "GHZ-7 localized-search probes on aspen-11 "
            f"({results['pooled']['links']} links, "
            f"{results['pooled']['jobs']} jobs over {rounds} "
            f"snapshot rounds) @ {shots} shots, {workers} workers"
        ),
        "cpu_count": __import__("os").cpu_count(),
        "sequential": results["sequential"],
        "in_process": results["in_process"],
        "pooled": results["pooled"],
        "speedup": speedup,
        "pooled_vs_in_process": (
            results["in_process"]["wall_time_s"]
            / results["pooled"]["wall_time_s"]
        ),
        "counts_identical": identical,
        "pool_spawns": spawns,
        "pool_fallbacks": fallbacks,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budget + 2 workers for CI smoke runs",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless speedup >= 2x with identical "
        "pooled/in-process counts and exactly one pool spawn",
    )
    args = parser.parse_args(argv)

    rounds = 2 if args.smoke else 3
    workers = 2 if args.smoke else 4
    shots = 256
    report = run(rounds, shots, workers)

    out_path = (
        Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload  : {report['workload']}")
    print(
        f"sequential: {report['sequential']['ms_per_job']:.2f} ms/job"
    )
    print(
        f"in-process: {report['in_process']['ms_per_job']:.2f} ms/job"
    )
    print(
        f"pooled    : {report['pooled']['ms_per_job']:.2f} ms/job "
        f"({report['pooled']['affinity_hits']} affinity hits, "
        f"{report['pooled']['ship_kib']:.0f} KiB shipped)"
    )
    print(f"speedup   : {report['speedup']:.2f}x over sequential")
    print(f"identical : {report['counts_identical']}")
    print(f"spawns    : {report['pool_spawns']}")
    print(f"written   : {out_path}")

    if report["pool_fallbacks"]:
        # Pools unavailable in this environment: the workload already
        # ran (in-process fallback), so report and bail without failing.
        print(
            "SKIP: worker pool unavailable here "
            f"({report['pool_fallbacks']} fallbacks); no pool to check"
        )
        return 0
    if args.check:
        if not report["counts_identical"]:
            print(
                "FAIL: pooled counts differ from in-process",
                file=sys.stderr,
            )
            return 1
        if report["pool_spawns"] != 1:
            print(
                f"FAIL: pool spawned {report['pool_spawns']} times "
                "(expected exactly 1 for the sweep)",
                file=sys.stderr,
            )
            return 1
        if report["speedup"] < 2.0:
            print(
                f"FAIL: speedup {report['speedup']:.2f}x < 2x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
