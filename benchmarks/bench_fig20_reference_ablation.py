"""Fig. 20: noise-adaptive vs random reference initialization."""

import numpy as np

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig20(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig20",
            context=context,
            benchmarks=("GHZ_n4", "VQE_n4", "QEC_n4", "BV_n4"),
            trials=3,
            probe_shots=1024,
            final_shots=2048,
        ),
    )
    emit(result)
    na = [row[1] for row in result.rows]
    rand = [row[2] for row in result.rows]
    # Paper shape: noise-adaptive reference is at least as good overall.
    assert float(np.mean(na)) >= float(np.mean(rand)) - 0.03
