"""Fig. 22: histogram of the runtime-best sequence across iterations."""

from repro.experiments import run_experiment

from conftest import emit, run_once


def bench_fig22(benchmark, context):
    result = run_once(
        benchmark,
        lambda: run_experiment(
            "fig22", context=context, iterations=10, gap_hours=1.0, shots=1024
        ),
    )
    emit(result)
    assert sum(row[1] for row in result.rows) == 10
