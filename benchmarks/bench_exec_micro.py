"""Probe-throughput micro-benchmark: channel cache on vs off.

Standalone script (no pytest-benchmark dependency) measuring the cost of
ANGEL-style CopyCat probes through the execution service with the
device's fused-channel cache enabled and disabled, and checking the two
paths produce the same physics. Writes ``BENCH_exec.json`` next to this
file.

Usage::

    PYTHONPATH=src python benchmarks/bench_exec_micro.py [--quick]

``--quick`` trims the job count for CI smoke runs. The acceptance bar
(enforced by ``--check``) is a >=2x cached-over-uncached speedup with
seed-identical counts in sequential mode.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.compiler import transpile
from repro.core.sequence import NativeGateSequence, enumerate_sequences
from repro.device.presets import small_test_device
from repro.exec import BatchExecutor, Job, LocalBackend
from repro.programs.ghz import ghz


def _make_device(channel_cache: bool, seed: int = 23):
    return small_test_device(6, seed=seed, channel_cache=channel_cache)


def _probe_jobs(device, shots: int, count: int, seed: int = 5):
    """ANGEL-shaped probe workload: GHZ-5 under varying sequences."""
    compiled = transpile(ghz(5), device)
    sequences = list(
        enumerate_sequences(compiled.sites, compiled.gate_options(), "link")
    )
    rng = np.random.default_rng(seed)
    jobs = []
    for number in range(count):
        sequence = sequences[number % len(sequences)]
        circuit = compiled.nativized(sequence, name_suffix=f"_m{number}")
        jobs.append(
            Job(circuit, shots, seed=int(rng.integers(2**31)), tag="probe")
        )
    return jobs


def run(num_jobs: int, shots: int):
    results = {}
    counts_by_mode = {}
    for mode, cached in (("uncached", False), ("cached", True)):
        device = _make_device(channel_cache=cached)
        executor = BatchExecutor(LocalBackend(device))
        jobs = _probe_jobs(device, shots, num_jobs)
        start = time.perf_counter()
        job_results = executor.submit_batch(jobs)
        elapsed = time.perf_counter() - start
        counts_by_mode[mode] = [r.counts for r in job_results]
        results[mode] = {
            "jobs": num_jobs,
            "shots_per_job": shots,
            "wall_time_s": elapsed,
            "ms_per_job": 1e3 * elapsed / num_jobs,
            "cache": executor.stats.snapshot()["cache_hits"],
        }
    # Same device seeds + same sampling seeds: the cached path must
    # reproduce the uncached counts exactly (the cache keys embed the
    # drifting parameter values, so staleness cannot leak in).
    identical = counts_by_mode["cached"] == counts_by_mode["uncached"]
    speedup = (
        results["uncached"]["wall_time_s"] / results["cached"]["wall_time_s"]
    )
    return {
        "benchmark": "exec_probe_throughput",
        "workload": f"GHZ-5 CopyCat-style probes x{num_jobs} @ {shots} shots",
        "uncached": results["uncached"],
        "cached": results["cached"],
        "speedup": speedup,
        "counts_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced budget for CI"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless speedup >= 2x with identical counts",
    )
    args = parser.parse_args(argv)

    num_jobs = 8 if args.quick else 30
    shots = 256
    report = run(num_jobs, shots)

    out_path = Path(__file__).resolve().parent.parent / "BENCH_exec.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"workload : {report['workload']}")
    print(f"uncached : {report['uncached']['ms_per_job']:.2f} ms/job")
    print(f"cached   : {report['cached']['ms_per_job']:.2f} ms/job")
    print(f"speedup  : {report['speedup']:.2f}x")
    print(f"identical: {report['counts_identical']}")
    print(f"written  : {out_path}")

    if args.check:
        if not report["counts_identical"]:
            print("FAIL: cached counts differ from uncached", file=sys.stderr)
            return 1
        if report["speedup"] < 2.0:
            print(
                f"FAIL: speedup {report['speedup']:.2f}x < 2x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
