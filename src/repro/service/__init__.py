"""Cloud-QPU service emulation: the unreliable path to the device.

The paper's workflow ran through a queued cloud service (Amazon Braket),
not a bench instrument. This package models that front door —
:class:`CloudQPUService` injects seeded submission latency, calibration
windows, rate limits, and transient faults in front of the simulated
device — and the client that survives it: :class:`RemoteBackend`
implements the :class:`~repro.exec.backend.Backend` protocol with
retries, backoff + jitter, per-job deadlines, a circuit breaker, and
partial-batch recovery, so everything above the execution seam (ANGEL,
CDR, the experiments, the CLI) runs unchanged against a flaky cloud.

See ``docs/architecture.md`` ("Service layer & failure semantics") for
how failures propagate up to ANGEL's graceful degradation.
"""

from .cloud import BatchOutcome, CloudQPUService, ServiceStats
from .errors import (
    JobFailedError,
    JobRejectedError,
    JobTimeoutError,
    RateLimitError,
    ResultLostError,
    ServiceUnavailableError,
    TransientServiceError,
)
from .faults import FAULT_PROFILES, FaultProfile, ZERO_FAULTS, fault_profile
from .remote import RemoteBackend, RetryPolicy

__all__ = [
    "BatchOutcome",
    "CloudQPUService",
    "ServiceStats",
    "FaultProfile",
    "FAULT_PROFILES",
    "ZERO_FAULTS",
    "fault_profile",
    "RemoteBackend",
    "RetryPolicy",
    "TransientServiceError",
    "JobRejectedError",
    "JobTimeoutError",
    "ResultLostError",
    "ServiceUnavailableError",
    "RateLimitError",
    "JobFailedError",
]
