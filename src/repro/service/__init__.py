"""Cloud-QPU service emulation: the unreliable path to the device.

The paper's workflow ran through a queued cloud service (Amazon Braket),
not a bench instrument. This package models that front door —
:class:`CloudQPUService` injects seeded submission latency, calibration
windows, rate limits, and transient faults in front of the simulated
device — and the client that survives it: :class:`RemoteBackend`
implements the :class:`~repro.exec.backend.Backend` protocol with
retries, backoff + jitter, per-job deadlines, a circuit breaker, and
partial-batch recovery, so everything above the execution seam (ANGEL,
CDR, the experiments, the CLI) runs unchanged against a flaky cloud.

On top of that sits the multi-tenant compile tier:
:class:`AngelService` accepts concurrent :class:`RequestSpec` compile
requests under token-bucket admission (:class:`TenantConfig`), deficit
round-robin fair scheduling (:class:`~repro.service.scheduler.
DeficitRoundRobin`), probe-batch coalescing, and cross-tenant probe
deduplication (:class:`ProbeDistributionStore`) — while keeping every
request bit-identical to a standalone run (:func:`run_standalone`).

See ``docs/architecture.md`` ("Service layer & failure semantics" and
"Multi-tenant compile service") for how failures propagate up to
ANGEL's graceful degradation and how the service tier schedules.
"""

from .cloud import BatchOutcome, CloudQPUService, ServiceStats
from .dedup import ProbeDistributionStore
from .errors import (
    JobFailedError,
    JobRejectedError,
    JobTimeoutError,
    RateLimitError,
    ResultLostError,
    ServiceUnavailableError,
    TransientServiceError,
)
from .faults import FAULT_PROFILES, FaultProfile, ZERO_FAULTS, fault_profile
from .remote import RemoteBackend, RetryPolicy
from .scheduler import DeficitRoundRobin
from .tenant import AdmissionError, TenantConfig, TokenBucket

# The request/session layer pulls in the experiments context (which in
# turn imports this package's service classes above), so it must come
# after them to keep the import acyclic.
from .angel_service import (  # noqa: E402 - deliberate ordering
    AngelService,
    CompileOutcome,
    RequestHandle,
    RequestSpec,
    replay_workload,
    run_standalone,
)

__all__ = [
    "BatchOutcome",
    "CloudQPUService",
    "ServiceStats",
    "FaultProfile",
    "FAULT_PROFILES",
    "ZERO_FAULTS",
    "fault_profile",
    "RemoteBackend",
    "RetryPolicy",
    "TransientServiceError",
    "JobRejectedError",
    "JobTimeoutError",
    "ResultLostError",
    "ServiceUnavailableError",
    "RateLimitError",
    "JobFailedError",
    "AdmissionError",
    "TenantConfig",
    "TokenBucket",
    "DeficitRoundRobin",
    "ProbeDistributionStore",
    "AngelService",
    "RequestSpec",
    "RequestHandle",
    "CompileOutcome",
    "run_standalone",
    "replay_workload",
]
