"""Typed failures of the emulated cloud QPU service.

The split is by *retryability*. :class:`TransientServiceError` subclasses
model faults a well-behaved client is expected to absorb — resubmit after
a backoff and the job may well succeed. :class:`JobFailedError` is the
terminal verdict the :class:`~repro.service.remote.RemoteBackend` hands
to the execution layer once its retry budget, per-job deadline, or
circuit breaker says stop; callers above the seam (the executor, ANGEL's
search) decide whether that aborts the run or degrades it.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..exceptions import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.job import Job

__all__ = [
    "TransientServiceError",
    "JobRejectedError",
    "JobTimeoutError",
    "ResultLostError",
    "ServiceUnavailableError",
    "RateLimitError",
    "JobFailedError",
]


class TransientServiceError(ServiceError):
    """A retryable service fault: resubmitting the job may succeed.

    Attributes:
        retry_after_us: Service hint for the minimum simulated-time wait
            before a resubmission can succeed (0 when the fault carries
            no such structure, e.g. a random rejection).
    """

    def __init__(self, message: str, retry_after_us: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_us = retry_after_us


class JobRejectedError(TransientServiceError):
    """The queue bounced the submission; no device time was spent."""


class JobTimeoutError(TransientServiceError):
    """The job overran its execution slot; device time was burned but
    the service returned no result."""


class ResultLostError(TransientServiceError):
    """The job executed but its result was lost in transit (also raised
    for the dropped suffix of a partial batch failure)."""


class ServiceUnavailableError(TransientServiceError):
    """The device is between calibration windows (recalibrating)."""


class RateLimitError(TransientServiceError):
    """The submission quota for the current window is exhausted."""


class JobFailedError(ServiceError):
    """A job failed *permanently* from the client's point of view.

    Raised by :class:`~repro.service.remote.RemoteBackend` after retry
    exhaustion, a blown per-job deadline, or a fast-fail while the
    circuit breaker is open.

    Attributes:
        job: The job that failed (when known).
        cause: The last transient fault observed before giving up.
    """

    def __init__(
        self,
        message: str,
        job: Optional["Job"] = None,
        cause: Optional[ServiceError] = None,
    ) -> None:
        super().__init__(message)
        self.job = job
        self.cause = cause
