"""RemoteBackend: a fault-tolerant client for the cloud QPU service.

Implements the :class:`~repro.exec.backend.Backend` protocol, so the
:class:`~repro.exec.executor.BatchExecutor` — and everything above it —
drives a flaky cloud service exactly the way it drives the in-process
device. The resilience machinery is the standard distributed-systems
toolkit, all in *simulated* time:

* **Retries with exponential backoff + jitter** — transient faults are
  resubmitted up to ``RetryPolicy.max_attempts`` times; each backoff
  advances the device clock through ``service.wait`` (drift accrues
  while the client waits, never host sleep), honours the service's
  ``retry_after_us`` hint, and is jittered by a seeded generator so runs
  are reproducible.
* **Per-job deadlines** — a job gives up early when its next backoff
  would push total elapsed simulated time past ``deadline_us``.
* **Circuit breaker** — ``breaker_threshold`` consecutive *permanent*
  job failures open the breaker; while open, submissions fast-fail
  without touching the service, and after ``breaker_cooldown_us`` of
  simulated time one trial submission half-opens it.
* **Partial-batch recovery** — a batch resubmission carries only the
  jobs whose slots came back empty, so one lost result never re-runs
  (or re-bills) the rest of the batch.

With a zero-fault profile none of this machinery fires and results are
bit-identical to ``LocalBackend`` sequential execution — the resilient
path costs nothing when the cloud behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ExecutionError
from ..exec.job import Job, JobResult
from ..obs import runtime as obs
from .cloud import CloudQPUService
from .errors import JobFailedError, TransientServiceError

__all__ = ["RetryPolicy", "RemoteBackend"]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side resilience tunables.

    Attributes:
        max_attempts: Total submission attempts per job (1 = no retry).
        base_backoff_us: First backoff duration (simulated time).
        backoff_multiplier: Exponential growth factor per retry.
        jitter: Fractional jitter applied to each backoff (0.1 means
            +-10%, drawn from the backend's seeded generator).
        deadline_us: Per-job simulated-time budget across all attempts;
            ``None`` disables deadlines.
        breaker_threshold: Consecutive permanent failures that open the
            circuit breaker.
        breaker_cooldown_us: Simulated time the breaker stays open
            before allowing a half-open trial.
    """

    max_attempts: int = 4
    base_backoff_us: float = 1_000.0
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    deadline_us: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown_us: float = 100_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError("max_attempts must be >= 1")
        if self.base_backoff_us < 0:
            raise ExecutionError("base_backoff_us must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ExecutionError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ExecutionError("jitter must be in [0, 1)")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ExecutionError("deadline_us must be positive when set")
        if self.breaker_threshold < 1:
            raise ExecutionError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_us < 0:
            raise ExecutionError("breaker_cooldown_us must be >= 0")

    def backoff_us(
        self,
        attempt: int,
        rng: np.random.Generator,
        retry_after_us: float = 0.0,
    ) -> float:
        """The wait before resubmission number ``attempt + 1``."""
        backoff = self.base_backoff_us * self.backoff_multiplier**attempt
        if self.jitter:
            backoff *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(backoff, retry_after_us)


class RemoteBackend:
    """A resilient Backend submitting through a :class:`CloudQPUService`.

    Args:
        service: The emulated cloud service to submit through.
        policy: Retry/deadline/breaker tunables.
        seed: Seed for backoff jitter (kept separate from the service's
            fault stream and the device's physics).
        align_windows: Ask the service for window-aligned batch
            admission — batches that would bounce off the calibration
            window's job quota instead wait (simulated time) for a
            fresh window. Off by default: alignment changes the clock
            trajectory, so it is opt-in for schedulers that own it.
    """

    def __init__(
        self,
        service: CloudQPUService,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        align_windows: bool = False,
    ) -> None:
        self.service = service
        self.policy = policy or RetryPolicy()
        self.align_windows = align_windows
        self._jitter_rng = np.random.default_rng(seed)
        # Client-side reliability counters (diffed into ExecutorStats).
        self.retries = 0
        self.failures = 0
        self.breaker_trips = 0
        self.fast_fails = 0
        self.resubmitted = 0
        self.deadline_exceeded = 0
        self._consecutive_failures = 0
        self._breaker_open_until_us: Optional[float] = None

    @property
    def name(self) -> str:
        return f"remote[{self.service.name}]"

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------
    @property
    def breaker_open(self) -> bool:
        """Whether a submission right now would fast-fail."""
        return (
            self._breaker_open_until_us is not None
            and self.service.device.clock_us < self._breaker_open_until_us
        )

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._breaker_open_until_us = None

    def _record_failure(self, count: int = 1) -> None:
        self.failures += count
        self._consecutive_failures += count
        if self._consecutive_failures >= self.policy.breaker_threshold:
            if not self.breaker_open:
                self.breaker_trips += 1
                obs.event(
                    "remote.breaker_trip",
                    consecutive_failures=self._consecutive_failures,
                    cooldown_us=self.policy.breaker_cooldown_us,
                )
            self._breaker_open_until_us = (
                self.service.device.clock_us + self.policy.breaker_cooldown_us
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> JobResult:
        """Run one job with retries; raises JobFailedError on give-up."""
        if self.breaker_open:
            self.fast_fails += 1
            self.failures += 1
            obs.event("remote.fast_fail", job_id=job.job_id)
            raise JobFailedError(
                f"circuit breaker open: job "
                f"{job.job_id or job.circuit.name!r} not submitted",
                job=job,
            )
        tracer = obs.active_tracer()
        span = (
            tracer.span("remote.submit", job_id=job.job_id, shots=job.shots)
            if tracer
            else obs.NULL_SPAN
        )
        with span:
            start_us = self.service.device.clock_us
            last: Optional[TransientServiceError] = None
            attempts = 0
            for attempt in range(self.policy.max_attempts):
                attempts += 1
                try:
                    result = self.service.execute(job)
                except TransientServiceError as exc:
                    last = exc
                    if attempt + 1 >= self.policy.max_attempts:
                        break
                    backoff = self.policy.backoff_us(
                        attempt, self._jitter_rng, exc.retry_after_us
                    )
                    elapsed = self.service.device.clock_us - start_us
                    if (
                        self.policy.deadline_us is not None
                        and elapsed + backoff > self.policy.deadline_us
                    ):
                        self.deadline_exceeded += 1
                        if tracer:
                            span.event(
                                "remote.deadline_exceeded",
                                elapsed_us=elapsed,
                                backoff_us=backoff,
                            )
                        break
                    self.retries += 1
                    if tracer:
                        span.event(
                            "remote.retry",
                            attempt=attempt + 1,
                            backoff_us=backoff,
                            error=type(exc).__name__,
                        )
                    self.service.wait(backoff)
                else:
                    self._record_success()
                    if tracer:
                        span.set(attempts=attempts)
                    return result
            self._record_failure()
            if tracer:
                span.set(attempts=attempts, failed=True)
        raise JobFailedError(
            f"job {job.job_id or job.circuit.name!r} failed permanently "
            f"after {attempts} attempts: {last}",
            job=job,
            cause=last,
        )

    def submit_batch(
        self,
        jobs: Sequence[Job],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[JobResult]:
        """All-or-nothing batch: any permanent job failure raises."""
        results = self.submit_batch_tolerant(jobs, parallel, max_workers)
        failed = [jobs[i] for i, r in enumerate(results) if r is None]
        if failed:
            raise JobFailedError(
                f"{len(failed)} of {len(jobs)} batch jobs failed "
                f"permanently (first: "
                f"{failed[0].job_id or failed[0].circuit.name!r})",
                job=failed[0],
            )
        return results  # type: ignore[return-value]

    def submit_batch_tolerant(
        self,
        jobs: Sequence[Job],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[Optional[JobResult]]:
        """Batch submission with partial-batch recovery.

        Returns one slot per job in submission order; a ``None`` slot is
        a job that failed permanently (retry budget, deadline, or open
        breaker). Each retry round resubmits *only* the failed slots.
        ``parallel``/``max_workers`` are forwarded to the service, whose
        local fallback runs admitted jobs through the device's snapshot
        batch discipline (persistent worker pool) when asked.
        """
        if not jobs:
            return []
        tracer = obs.active_tracer()
        span = (
            tracer.span("remote.batch", jobs=len(jobs))
            if tracer
            else obs.NULL_SPAN
        )
        with span:
            slots: List[Optional[JobResult]] = [None] * len(jobs)
            pending = list(range(len(jobs)))
            start_us = self.service.device.clock_us
            attempts = 0
            for attempt in range(self.policy.max_attempts):
                attempts += 1
                if self.breaker_open:
                    self.fast_fails += len(pending)
                    if tracer:
                        span.event(
                            "remote.fast_fail", pending=len(pending)
                        )
                    break
                if attempt > 0:
                    self.resubmitted += len(pending)
                try:
                    outcome = self.service.execute_batch(
                        [jobs[i] for i in pending],
                        parallel=parallel,
                        max_workers=max_workers,
                        align_window=self.align_windows,
                    )
                except TransientServiceError as exc:
                    still_pending = pending  # whole batch bounced
                    retry_after_us = exc.retry_after_us
                    if tracer:
                        span.event(
                            "remote.batch_bounced",
                            error=type(exc).__name__,
                            retry_after_us=retry_after_us,
                        )
                else:
                    still_pending = []
                    retry_after_us = 0.0
                    for slot, result in zip(pending, outcome.results):
                        if result is None:
                            still_pending.append(slot)
                        else:
                            slots[slot] = result
                    if len(still_pending) < len(pending):
                        # Progress was made: the service is alive.
                        self._record_success()
                    if not still_pending:
                        if tracer:
                            span.set(attempts=attempts, failed=0)
                        return slots
                pending = still_pending
                if attempt + 1 >= self.policy.max_attempts:
                    break
                backoff = self.policy.backoff_us(
                    attempt, self._jitter_rng, retry_after_us
                )
                elapsed = self.service.device.clock_us - start_us
                if (
                    self.policy.deadline_us is not None
                    and elapsed + backoff > self.policy.deadline_us
                ):
                    self.deadline_exceeded += 1
                    if tracer:
                        span.event(
                            "remote.deadline_exceeded",
                            elapsed_us=elapsed,
                            backoff_us=backoff,
                        )
                    break
                self.retries += len(pending)
                if tracer:
                    span.event(
                        "remote.retry",
                        attempt=attempt + 1,
                        pending=len(pending),
                        backoff_us=backoff,
                    )
                self.service.wait(backoff)
            if pending:
                self._record_failure(len(pending))
            if tracer:
                span.set(attempts=attempts, failed=len(pending))
        return slots

    # ------------------------------------------------------------------
    # Instrumentation passthrough
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Device channel-cache counters, through the service."""
        return self.service.cache_stats()

    def reliability_stats(self) -> Dict[str, int]:
        """Client-side counters the executor diffs into ExecutorStats."""
        return {
            "retries": self.retries,
            "failures": self.failures,
            "breaker_trips": self.breaker_trips,
            "fast_fails": self.fast_fails,
            "resubmitted": self.resubmitted,
            "deadline_exceeded": self.deadline_exceeded,
        }
