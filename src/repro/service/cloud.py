"""A deterministic emulation of a queued cloud QPU service.

The paper's entire evaluation ran on Rigetti Aspen machines *through
Amazon Braket*: jobs waited in a queue, the device disappeared into
recalibration windows, submissions were throttled, and a visible
fraction of jobs simply failed in transit. :class:`CloudQPUService` puts
that operational reality in front of the simulated device without
touching its physics — the device still owns time, drift, and sampling;
the service decides *whether and when* a submission reaches it.

Everything is seeded: the fault stream comes from one
``numpy`` generator owned by the service, drawn in submission order, so
a given (profile, seed, workload) triple replays the exact same
rejections, timeouts, and lost results every run. That determinism is
what lets the resilience tests pin retry counts and the degradation
tests pin which links fall back.

Simulated time discipline: queue latency and client backoffs advance the
*device clock* (``device.advance_time``), so noise drifts while jobs
wait — exactly the staleness mechanism the paper attributes to queued
cloud access (Section VI-C). Nothing here sleeps on the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..exec.backend import LocalBackend
from ..exec.job import Job, JobResult
from ..obs import runtime as obs
from .errors import (
    JobRejectedError,
    JobTimeoutError,
    RateLimitError,
    ResultLostError,
    ServiceError,
    ServiceUnavailableError,
)
from .faults import FaultProfile, ZERO_FAULTS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..device.device import RigettiAspenDevice

__all__ = ["ServiceStats", "BatchOutcome", "CloudQPUService"]


@dataclass
class ServiceStats:
    """Cumulative service-side accounting (what the provider would see)."""

    submitted: int = 0
    completed: int = 0
    rejections: int = 0
    timeouts: int = 0
    lost_results: int = 0
    batch_suffix_drops: int = 0
    rate_limited: int = 0
    unavailable: int = 0
    recalibrations: int = 0
    queue_latency_us: float = 0.0
    #: Batches that proactively waited for a fresh calibration window
    #: (scheduled admission) instead of bouncing off the quota.
    window_aligns: int = 0
    window_align_wait_us: float = 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejections": self.rejections,
            "timeouts": self.timeouts,
            "lost_results": self.lost_results,
            "batch_suffix_drops": self.batch_suffix_drops,
            "rate_limited": self.rate_limited,
            "unavailable": self.unavailable,
            "recalibrations": self.recalibrations,
            "queue_latency_us": self.queue_latency_us,
            "window_aligns": self.window_aligns,
            "window_align_wait_us": self.window_align_wait_us,
        }


@dataclass
class BatchOutcome:
    """Positional results of one batch submission.

    ``results[i]`` is the i-th job's result or ``None``; when ``None``,
    ``errors[i]`` holds the transient fault that claimed it. A client
    doing partial-batch recovery resubmits exactly the ``None`` slots.
    """

    results: List[Optional[JobResult]] = field(default_factory=list)
    errors: List[Optional[ServiceError]] = field(default_factory=list)

    @property
    def failed_indices(self) -> List[int]:
        return [i for i, r in enumerate(self.results) if r is None]


class CloudQPUService:
    """The queued, windowed, failure-prone front door to a device.

    Args:
        device: The simulated QPU behind the service.
        profile: The operational hazards to inject (default: none).
        seed: Seed for the fault stream (independent of the device's
            physics/sampling seeds).
    """

    def __init__(
        self,
        device: "RigettiAspenDevice",
        profile: FaultProfile = ZERO_FAULTS,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.profile = profile
        self._local = LocalBackend(device)
        self._fault_rng = np.random.default_rng(seed)
        self.stats = ServiceStats()
        self._window_start_us = device.clock_us
        self._window_jobs = 0
        self._recalibrating_until_us: Optional[float] = None

    @property
    def name(self) -> str:
        return f"cloud[{self.device.name}]"

    def _observe_fault(self, kind: str, **attributes) -> None:
        """One injected fault: a span event on whoever is measuring us
        plus a ``service.<kind>`` counter when a registry is live."""
        obs.event(f"service.{kind}", **attributes)
        registry = obs.active_registry()
        if registry is not None:
            registry.counter(f"service.{kind}").add(1)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def wait(self, duration_us: float) -> None:
        """Let simulated time pass (client backoff); drift accrues."""
        if duration_us > 0:
            self.device.advance_time(duration_us)

    # ------------------------------------------------------------------
    # Admission: windows and rate limits
    # ------------------------------------------------------------------
    def _admit(self, num_jobs: int) -> None:
        profile = self.profile
        now = self.device.clock_us
        if self._recalibrating_until_us is not None:
            if now < self._recalibrating_until_us:
                self.stats.unavailable += 1
                self._observe_fault(
                    "unavailable",
                    retry_after_us=self._recalibrating_until_us - now,
                )
                raise ServiceUnavailableError(
                    f"{self.name} is recalibrating for another "
                    f"{self._recalibrating_until_us - now:.0f} us",
                    retry_after_us=self._recalibrating_until_us - now,
                )
            # Recalibration complete: a fresh window opens.
            self._recalibrating_until_us = None
            self._window_start_us = now
            self._window_jobs = 0
        if (
            profile.window_us is not None
            and now - self._window_start_us >= profile.window_us
        ):
            self._recalibrating_until_us = now + profile.recalibration_us
            self.stats.recalibrations += 1
            self.stats.unavailable += 1
            self._observe_fault(
                "recalibration", retry_after_us=profile.recalibration_us
            )
            raise ServiceUnavailableError(
                f"{self.name} calibration window expired; recalibrating",
                retry_after_us=profile.recalibration_us,
            )
        if (
            profile.max_jobs_per_window is not None
            and self._window_jobs + num_jobs > profile.max_jobs_per_window
        ):
            self.stats.rate_limited += 1
            self._observe_fault("rate_limited", jobs=num_jobs)
            window_ends_in = (
                self._window_start_us + profile.window_us - now
            )
            raise RateLimitError(
                f"{self.name} window quota "
                f"({profile.max_jobs_per_window} jobs) exhausted",
                retry_after_us=max(window_ends_in, 0.0),
            )
        self._window_jobs += num_jobs
        self.stats.submitted += num_jobs

    def window_state(self) -> Dict[str, object]:
        """Where the current calibration window stands (scheduler view)."""
        profile = self.profile
        now = self.device.clock_us
        remaining_jobs: Optional[int] = None
        if profile.max_jobs_per_window is not None:
            remaining_jobs = max(
                profile.max_jobs_per_window - self._window_jobs, 0
            )
        remaining_us: Optional[float] = None
        if profile.window_us is not None:
            remaining_us = max(
                self._window_start_us + profile.window_us - now, 0.0
            )
        return {
            "window_start_us": self._window_start_us,
            "window_jobs": self._window_jobs,
            "remaining_jobs": remaining_jobs,
            "remaining_us": remaining_us,
            "recalibrating_until_us": self._recalibrating_until_us,
        }

    def align_window(self, num_jobs: int) -> float:
        """Wait (in simulated time) until ``num_jobs`` fit one window.

        A batch that would bounce off the window quota or arrive during
        recalibration instead *waits out* the remainder of the window
        plus the recalibration gap, then lands at the start of a fresh
        window. Drift accrues across the wait exactly as it would for a
        client backing off, but no fault is raised — this is scheduled
        admission, not failure recovery. Returns the simulated
        microseconds waited (0 under a fault-free profile, whose window
        is unbounded). Batches larger than a whole window's quota can
        never fit and are left to :meth:`_admit`'s rate-limit error.
        """
        profile = self.profile
        waited = 0.0
        now = self.device.clock_us
        if self._recalibrating_until_us is not None:
            if now < self._recalibrating_until_us:
                waited += self._recalibrating_until_us - now
                self.wait(self._recalibrating_until_us - now)
            self._recalibrating_until_us = None
            self._window_start_us = self.device.clock_us
            self._window_jobs = 0
            now = self.device.clock_us
        if profile.window_us is None:
            return waited
        window_expired = now - self._window_start_us >= profile.window_us
        over_quota = (
            profile.max_jobs_per_window is not None
            and self._window_jobs + num_jobs > profile.max_jobs_per_window
            and num_jobs <= profile.max_jobs_per_window
        )
        if window_expired or over_quota:
            window_end = self._window_start_us + profile.window_us
            target = max(window_end, now) + profile.recalibration_us
            if target > now:
                waited += target - now
                self.wait(target - now)
            self.stats.recalibrations += 1
            self._window_start_us = self.device.clock_us
            self._window_jobs = 0
        if waited > 0:
            self.stats.window_aligns += 1
            self.stats.window_align_wait_us += waited
            obs.event(
                "service.window_align", jobs=num_jobs, waited_us=waited
            )
        return waited

    def _apply_latency(self) -> None:
        latency = self.profile.submission_latency_us
        if latency > 0:
            self.stats.queue_latency_us += latency
            self.device.advance_time(latency)

    # ------------------------------------------------------------------
    # Execution with fault injection
    # ------------------------------------------------------------------
    def _execute_one(self, job: Job) -> JobResult:
        """Run one admitted job, injecting at most one per-job fault.

        One uniform draw is partitioned across the fault types, so a
        profile's per-job fault rate is exactly ``p_job_fault`` and the
        draw sequence (hence the fault pattern) is seed-reproducible.
        """
        profile = self.profile
        roll = (
            float(self._fault_rng.random())
            if profile.p_job_fault > 0
            else 1.0
        )
        label = job.job_id or job.circuit.name
        if roll < profile.p_reject:
            self.stats.rejections += 1
            self._observe_fault("rejected", job_id=label)
            raise JobRejectedError(f"job {label!r} rejected at submission")
        result = self._local.submit(job)  # device clock advances here
        if roll < profile.p_reject + profile.p_timeout:
            self.stats.timeouts += 1
            self._observe_fault("timeout", job_id=label)
            raise JobTimeoutError(
                f"job {label!r} overran its execution slot"
            )
        if roll < profile.p_job_fault:
            self.stats.lost_results += 1
            self._observe_fault("result_lost", job_id=label)
            raise ResultLostError(f"result of job {label!r} lost in transit")
        self.stats.completed += 1
        return result

    def execute(self, job: Job) -> JobResult:
        """Submit one job; raises a transient fault or returns counts."""
        self._admit(1)
        self._apply_latency()
        return self._execute_one(job)

    def execute_batch(
        self,
        jobs: Sequence[Job],
        parallel: bool = False,
        max_workers: Optional[int] = None,
        align_window: bool = False,
    ) -> BatchOutcome:
        """Submit a batch; per-job faults are reported positionally.

        Admission (window/rate-limit) is all-or-nothing for the batch —
        a rejection there raises. Past admission, each job fails
        independently, plus with ``p_batch_partial`` a random suffix of
        the batch is dropped wholesale (the jobs never execute), which
        is how real batch endpoints fail when a queue worker dies
        mid-batch.

        With ``parallel`` the surviving jobs run through the local
        backend's snapshot batch discipline (worker pool) instead of
        one-at-a-time sequential execution. The fault stream is drawn
        identically — one roll per non-dropped job, in submission order
        — so a given (profile, seed, workload) triple injects the same
        faults either way; what changes is the within-batch drift
        semantics, exactly as for a local parallel batch.

        With ``align_window`` the batch first waits (simulated time) for
        a calibration window it fits into — see :meth:`align_window` —
        instead of risking a rate-limit bounce mid-window.
        """
        if not jobs:
            return BatchOutcome([], [])
        if align_window:
            self.align_window(len(jobs))
        self._admit(len(jobs))
        self._apply_latency()
        drop_from = len(jobs)
        if (
            self.profile.p_batch_partial > 0
            and len(jobs) > 1
            and float(self._fault_rng.random()) < self.profile.p_batch_partial
        ):
            drop_from = int(self._fault_rng.integers(1, len(jobs)))
            self.stats.batch_suffix_drops += 1
            self._observe_fault(
                "batch_suffix_drop", dropped=len(jobs) - drop_from
            )
        if parallel and drop_from > 1:
            return self._execute_batch_parallel(
                jobs, drop_from, max_workers
            )
        outcome = BatchOutcome()
        for index, job in enumerate(jobs):
            if index >= drop_from:
                self.stats.lost_results += 1
                outcome.results.append(None)
                outcome.errors.append(_dropped_error(job, drop_from))
                continue
            try:
                outcome.results.append(self._execute_one(job))
                outcome.errors.append(None)
            except ServiceError as exc:
                outcome.results.append(None)
                outcome.errors.append(exc)
        return outcome

    def _execute_batch_parallel(
        self,
        jobs: Sequence[Job],
        drop_from: int,
        max_workers: Optional[int],
    ) -> BatchOutcome:
        """Snapshot-batch execution of the non-dropped jobs.

        Fault rolls are drawn upfront in submission order (the same
        draws the sequential loop would make); rejected jobs never reach
        the device, while timeout/lost jobs execute — and advance the
        clock — before their results are discarded, mirroring the
        sequential semantics.
        """
        profile = self.profile
        rolls = [
            float(self._fault_rng.random()) if profile.p_job_fault > 0
            else 1.0
            for _ in range(drop_from)
        ]
        live = [i for i in range(drop_from) if rolls[i] >= profile.p_reject]
        executed = {}
        if live:
            batch = self._local.submit_batch(
                [jobs[i] for i in live],
                parallel=len(live) > 1,
                max_workers=max_workers,
            )
            executed = dict(zip(live, batch))
        outcome = BatchOutcome()
        for index, job in enumerate(jobs):
            label = job.job_id or job.circuit.name
            if index >= drop_from:
                self.stats.lost_results += 1
                outcome.results.append(None)
                outcome.errors.append(_dropped_error(job, drop_from))
                continue
            roll = rolls[index]
            if roll < profile.p_reject:
                self.stats.rejections += 1
                self._observe_fault("rejected", job_id=label)
                outcome.results.append(None)
                outcome.errors.append(
                    JobRejectedError(f"job {label!r} rejected at submission")
                )
            elif roll < profile.p_reject + profile.p_timeout:
                self.stats.timeouts += 1
                self._observe_fault("timeout", job_id=label)
                outcome.results.append(None)
                outcome.errors.append(
                    JobTimeoutError(
                        f"job {label!r} overran its execution slot"
                    )
                )
            elif roll < profile.p_job_fault:
                self.stats.lost_results += 1
                self._observe_fault("result_lost", job_id=label)
                outcome.results.append(None)
                outcome.errors.append(
                    ResultLostError(f"result of job {label!r} lost in transit")
                )
            else:
                self.stats.completed += 1
                outcome.results.append(executed[index])
                outcome.errors.append(None)
        return outcome

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Device channel-cache counters (for executor instrumentation)."""
        return self._local.cache_stats()

    def close(self) -> None:
        """Release the local backend's worker pool, if one was spawned."""
        self._local.close()


def _dropped_error(job: Job, drop_from: int) -> ResultLostError:
    return ResultLostError(
        f"job {job.job_id or job.circuit.name!r} dropped "
        f"in a partial batch failure (cut at {drop_from})"
    )
