"""Tenants of the multi-tenant compile service: config, admission, ledger.

A *tenant* is one user of the :class:`~repro.service.angel_service.
AngelService` — its own FIFO request queue, its own token-bucket
admission control, its own fair-scheduling weight, and its own usage
ledger. Everything here is plain bookkeeping: the scheduling policy
lives in :mod:`repro.service.scheduler`, the request lifecycle in
:mod:`repro.service.angel_service`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..exceptions import ServiceError

__all__ = [
    "AdmissionError",
    "TenantConfig",
    "TokenBucket",
    "TenantState",
    "MIN_RETRY_AFTER_S",
]

#: Floor for admission retry hints. Under burst arrivals the bucket can
#: refill between a failed ``try_acquire`` and the ``retry_after_s``
#: probe, which would otherwise hand clients a zero (or, with a very
#: high refill rate, sub-microsecond) hint — and a zero hint turns
#: polite backoff into a hot retry loop.
MIN_RETRY_AFTER_S = 1e-3


class AdmissionError(ServiceError):
    """A submission bounced at admission control (token bucket empty).

    Attributes:
        retry_after_s: Host seconds until one token will be available.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant service policy.

    Attributes:
        name: Tenant identifier (also the metrics label:
            ``service.tenant.<name>.*``).
        rate: Token-bucket refill rate in requests per second;
            ``None`` disables admission control for this tenant.
        burst: Bucket capacity — how many requests may arrive
            back-to-back before the rate limit bites.
        quantum: Deficit-round-robin quantum in probe *jobs* per round.
            A tenant accrues this much deficit each scheduling round it
            has work queued; larger quanta mean a larger share of each
            coalesced window.
    """

    name: str
    rate: Optional[float] = None
    burst: int = 8
    quantum: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("tenant name must be non-empty")
        if self.rate is not None and self.rate <= 0:
            raise ServiceError("tenant rate must be positive when set")
        if self.burst < 1:
            raise ServiceError("tenant burst must be >= 1")
        if self.quantum < 1:
            raise ServiceError("tenant quantum must be >= 1")


class TokenBucket:
    """Classic token-bucket admission control, on host monotonic time.

    ``rate`` tokens per second refill up to ``burst``; each admitted
    request spends one. ``now`` is injectable for deterministic tests.
    """

    def __init__(
        self, rate: float, burst: int, now: Optional[float] = None
    ) -> None:
        if rate <= 0:
            raise ServiceError("token bucket rate must be positive")
        if burst < 1:
            raise ServiceError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._updated = now if now is not None else time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Spend one token if available; never blocks."""
        with self._lock:
            self._refill(now if now is not None else time.monotonic())
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def retry_after_s(self, now: Optional[float] = None) -> float:
        """Host seconds until one token will have refilled.

        Returns ``0.0`` only when a token is available *right now*;
        otherwise the hint is clamped to at least
        :data:`MIN_RETRY_AFTER_S` so callers never busy-spin on a
        zero/negative wait.
        """
        with self._lock:
            self._refill(now if now is not None else time.monotonic())
            if self._tokens >= 1.0:
                return 0.0
            return max(
                MIN_RETRY_AFTER_S, (1.0 - self._tokens) / self.rate
            )


class TenantState:
    """One tenant's live service state: queue, bucket, deficit, ledger.

    The queue holds request entries owned by the service (opaque here);
    the scheduler reads/writes ``deficit`` under the service lock. The
    ledger counters power the ``service.tenant.<name>.*`` metrics and
    the per-tenant rows of the load bench.
    """

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.queue: Deque = deque()
        self.bucket = (
            TokenBucket(config.rate, config.burst)
            if config.rate is not None
            else None
        )
        self.deficit = 0.0
        # Ledger ------------------------------------------------------
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.probes = 0
        self.dedup_hits = 0
        self.rounds = 0
        self.queue_wait_s: List[float] = []
        self.latency_s: List[float] = []

    @property
    def name(self) -> str:
        return self.config.name

    def admit(self) -> None:
        """Admission control for one submission; raises on bounce."""
        self.submitted += 1
        if self.bucket is not None and not self.bucket.try_acquire():
            self.rejected += 1
            # The bucket may have refilled since try_acquire failed
            # (burst arrivals race the refill clock); this admission
            # still bounced, so the hint must stay positive.
            retry_after = max(
                MIN_RETRY_AFTER_S, self.bucket.retry_after_s()
            )
            raise AdmissionError(
                f"tenant {self.name!r} admission bucket empty "
                f"(rate {self.config.rate}/s, burst {self.config.burst}); "
                f"retry in {retry_after:.3f}s",
                retry_after_s=retry_after,
            )

    def ledger(self) -> Dict[str, object]:
        """JSON-able per-tenant usage snapshot."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "probes": self.probes,
            "dedup_hits": self.dedup_hits,
            "rounds": self.rounds,
            "queued": len(self.queue),
            "queue_wait_s": list(self.queue_wait_s),
            "latency_s": list(self.latency_s),
        }
