"""Cross-request probe deduplication for the multi-tenant service.

Two tenants compiling overlapping programs probe the same links with the
same CopyCat prefixes; when their devices sit at the identical physics
state, those probe jobs compute the identical exact distribution. The
:class:`ProbeDistributionStore` is a thread-safe, LRU-bounded map from
``(device parameter fingerprint, (placement, circuit fingerprint),
readout config)`` to the exact noisy output distribution — the same
``(placement, fingerprint, readout)`` key the per-device
:class:`~repro.sim.sim_cache.SimulationCache` memoizes under, widened by
the full physics fingerprint so entries can safely outlive any single
device's drift epoch.

Safety is by construction: a stored distribution is the exact dict some
device computed, and it is only ever served to a device whose
:meth:`~repro.device.device.RigettiAspenDevice.parameter_fingerprint`
matches the producer's. Shot sampling, clock accounting, and drift stay
per-request, so a dedup hit changes *which process computed the
distribution* and nothing else — results remain bit-identical to a
standalone run (pinned by ``tests/test_angel_service.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..device.device import RigettiAspenDevice

__all__ = ["ProbeDistributionStore"]

_DEFAULT_MAX_ENTRIES = 65536


class ProbeDistributionStore:
    """A thread-safe shared memo of exact probe distributions.

    Args:
        max_entries: LRU bound on stored distributions (probe
            distributions are small dicts — a few hundred bytes for
            Table I programs — so the default holds every probe a long
            replay produces).
    """

    def __init__(self, max_entries: int = _DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, Dict[str, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.publishes = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key) -> Optional[Dict[str, float]]:
        """The stored distribution for ``key``, or ``None`` (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return dict(entry)

    def put(self, key, distribution: Dict[str, float]) -> None:
        """Publish a computed distribution (copied; LRU-evicts to fit)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = dict(distribution)
            self.publishes += 1

    def attach(self, device: "RigettiAspenDevice") -> bool:
        """Wire a device's simulation cache through this store.

        Returns whether the device could participate (it needs the
        simulation cache enabled — without it there is no exact
        distribution to share).
        """
        cache = getattr(device, "sim_cache", None)
        if cache is None:
            return False
        cache.attach_shared_store(self, device.parameter_fingerprint)
        return True

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "publishes": self.publishes,
                "evictions": self.evictions,
            }
