"""Deficit-round-robin scheduling over tenant queues.

The compile service turns every in-flight request into a chain of small
schedulable units — one probe batch (or the final shot-execution job)
each. The scheduler's job is to pick, each *round*, which tenants' next
units run in the coalesced execution window, such that a tenant
flooding the queue cannot starve a light one.

The policy is classic deficit round-robin (DRR), with probe *jobs* as
the currency: each round, every backlogged tenant earns its configured
``quantum`` of deficit, then spends deficit on its queued units head
first, stopping at the first unit it cannot afford. Costs vary per unit
(a candidate batch probes every replacement for one link; the reference
and final units cost one job), which is exactly the situation DRR
handles and plain round-robin does not — long-batch tenants pay for
their bulk in skipped rounds.

Two extra rules keep the scheduler live:

* **Round budget** — an optional global cap (in jobs) per round, sized
  to the cloud service's calibration-window quota, so one coalesced
  round never needs more than a window. The cap soft-fails: an
  oversized unit is still scheduled when it is the round's first pick,
  because a unit larger than the whole budget could otherwise never
  run.
* **Forced progress** — if no backlogged tenant can afford its head
  unit (quanta smaller than every pending batch), the largest-deficit
  tenant runs anyway and goes negative, repaying the overdraft in later
  rounds. A round with backlog always schedules something.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .tenant import TenantState

__all__ = ["DeficitRoundRobin"]


class DeficitRoundRobin:
    """DRR over :class:`~repro.service.tenant.TenantState` queues.

    Queue entries are opaque to the scheduler except for an integer
    ``cost`` attribute (jobs in the entry's next schedulable unit).
    Picked entries are *removed* from their queues; the caller re-queues
    unfinished entries at the front after the round executes.

    Args:
        round_budget_jobs: Optional per-round cap on total scheduled
            jobs (align it with the fault profile's
            ``max_jobs_per_window`` to make rounds window-shaped).
    """

    def __init__(self, round_budget_jobs: Optional[int] = None) -> None:
        if round_budget_jobs is not None and round_budget_jobs < 1:
            raise ValueError("round_budget_jobs must be >= 1 when set")
        self.round_budget_jobs = round_budget_jobs
        self.rounds = 0
        self._cursor = 0

    def next_round(
        self, tenants: Sequence[TenantState]
    ) -> List[Tuple[TenantState, object]]:
        """Pick this round's ``(tenant, entry)`` units, in service order.

        Call with the service lock held: queues and deficits are
        mutated. Returns an empty list only when no tenant has work.
        """
        backlogged = [tenant for tenant in tenants if tenant.queue]
        if not backlogged:
            return []
        self.rounds += 1
        # Rotate the starting tenant so the round budget's early-pick
        # advantage is spread evenly instead of always favouring the
        # first-registered tenant.
        start = self._cursor % len(backlogged)
        self._cursor += 1
        order = backlogged[start:] + backlogged[:start]
        budget = self.round_budget_jobs
        picked: List[Tuple[TenantState, object]] = []
        for tenant in order:
            tenant.deficit += tenant.config.quantum
            served = False
            while tenant.queue:
                cost = tenant.queue[0].cost
                if cost > tenant.deficit:
                    break
                if budget is not None and cost > budget and picked:
                    break
                entry = tenant.queue.popleft()
                tenant.deficit -= cost
                if budget is not None:
                    budget = max(budget - cost, 0)
                picked.append((tenant, entry))
                served = True
                if budget == 0:
                    break
            if served:
                tenant.rounds += 1
            if not tenant.queue:
                # Standard DRR: an emptied queue forfeits its leftover
                # deficit, so idle tenants cannot bank credit.
                tenant.deficit = 0.0
            if budget == 0:
                break
        if not picked:
            # Forced progress: run the most-entitled head unit on
            # credit rather than deadlocking on undersized quanta.
            tenant = max(order, key=lambda t: t.deficit)
            entry = tenant.queue.popleft()
            tenant.deficit -= entry.cost
            tenant.rounds += 1
            picked.append((tenant, entry))
        return picked
