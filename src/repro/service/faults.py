"""Fault profiles: how unreliable is the cloud in front of the QPU?

A :class:`FaultProfile` is a frozen, validated bundle of the operational
hazards the emulated service injects — queue latency, calibration
windows, per-window rate limits, and per-job/per-batch transient fault
probabilities. Profiles are pure data: all randomness lives in the
service's seeded generator, so the same profile + seed always produces
the same fault sequence.

The named presets cover the spectrum the evaluation needs:

* ``"none"`` — a perfect cloud; :class:`~repro.service.remote.
  RemoteBackend` under this profile is bit-identical to
  :class:`~repro.exec.backend.LocalBackend` sequential execution (pinned
  by ``tests/test_service.py``).
* ``"light"`` — occasional hiccups, the happy production day.
* ``"heavy"`` — a congested service with calibration windows and rate
  limits in play.
* ``"flaky"`` — >=10% per-job transient failures, the stress profile the
  graceful-degradation acceptance test runs ANGEL under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import ExecutionError

__all__ = ["FaultProfile", "FAULT_PROFILES", "ZERO_FAULTS", "fault_profile"]


@dataclass(frozen=True)
class FaultProfile:
    """Operational hazards of the emulated cloud QPU service.

    Attributes:
        name: Preset name (or any label for ad-hoc profiles).
        submission_latency_us: Simulated queue wait added (device clock
            advances, so noise drifts) per submission — once per job for
            single submissions, once per batch for batch submissions.
        window_us: Calibration window length. When the device clock
            crosses a window boundary the service goes unavailable for
            ``recalibration_us`` (submissions raise
            :class:`~repro.service.errors.ServiceUnavailableError`);
            drift accrues across the downtime, so every window sees
            freshly drifted parameters. ``None`` disables windows.
        recalibration_us: Downtime between consecutive windows.
        max_jobs_per_window: Submission quota per window (requires
            ``window_us``); exceeding it raises
            :class:`~repro.service.errors.RateLimitError` until the next
            window. ``None`` disables rate limiting.
        p_reject: Per-job probability the queue bounces the submission
            before execution (no device time spent).
        p_timeout: Per-job probability the job overruns its slot — the
            device time is burned but no result comes back.
        p_lost_result: Per-job probability the result is lost in
            transit after a successful execution.
        p_batch_partial: Per-batch probability that a suffix of the
            batch is dropped (jobs after a random cut point never
            execute and report lost results).
    """

    name: str = "none"
    submission_latency_us: float = 0.0
    window_us: Optional[float] = None
    recalibration_us: float = 0.0
    max_jobs_per_window: Optional[int] = None
    p_reject: float = 0.0
    p_timeout: float = 0.0
    p_lost_result: float = 0.0
    p_batch_partial: float = 0.0

    def __post_init__(self) -> None:
        for field_name in (
            "p_reject",
            "p_timeout",
            "p_lost_result",
            "p_batch_partial",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ExecutionError(
                    f"{field_name} must be a probability, got {value}"
                )
        if self.p_reject + self.p_timeout + self.p_lost_result > 1.0:
            raise ExecutionError(
                "per-job fault probabilities must sum to at most 1"
            )
        if self.submission_latency_us < 0:
            raise ExecutionError("submission_latency_us must be >= 0")
        if self.window_us is not None and self.window_us <= 0:
            raise ExecutionError("window_us must be positive when set")
        if self.recalibration_us < 0:
            raise ExecutionError("recalibration_us must be >= 0")
        if self.max_jobs_per_window is not None:
            if self.window_us is None:
                raise ExecutionError(
                    "max_jobs_per_window requires window_us (the quota "
                    "resets per window)"
                )
            if self.max_jobs_per_window < 1:
                raise ExecutionError("max_jobs_per_window must be >= 1")

    @property
    def p_job_fault(self) -> float:
        """Total per-job transient fault probability."""
        return self.p_reject + self.p_timeout + self.p_lost_result

    @property
    def injects_faults(self) -> bool:
        return self.p_job_fault > 0 or self.p_batch_partial > 0


ZERO_FAULTS = FaultProfile(name="none")

FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": ZERO_FAULTS,
    "light": FaultProfile(
        name="light",
        submission_latency_us=200.0,
        p_reject=0.02,
        p_timeout=0.01,
        p_lost_result=0.02,
        p_batch_partial=0.05,
    ),
    "heavy": FaultProfile(
        name="heavy",
        submission_latency_us=1_000.0,
        window_us=10_000_000.0,
        recalibration_us=500_000.0,
        max_jobs_per_window=256,
        p_reject=0.05,
        p_timeout=0.04,
        p_lost_result=0.05,
        p_batch_partial=0.15,
    ),
    "flaky": FaultProfile(
        name="flaky",
        p_reject=0.06,
        p_timeout=0.03,
        p_lost_result=0.05,
        p_batch_partial=0.10,
    ),
}


def fault_profile(name: str) -> FaultProfile:
    """Look up a named preset (``none``/``light``/``heavy``/``flaky``)."""
    try:
        return FAULT_PROFILES[name]
    except KeyError as exc:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ExecutionError(
            f"unknown fault profile {name!r}; known: {known}"
        ) from exc
