"""A multi-tenant compile service in front of the ANGEL stack.

:class:`AngelService` accepts many concurrent compile requests — each a
frozen :class:`RequestSpec` naming a benchmark, a device configuration,
and a backend — and runs them through the existing ``Backend`` seam
with fair scheduling, probe-batch coalescing, and cross-tenant probe
deduplication:

* **Isolation** — every request builds its *own* device, calibration,
  and executor stack (exactly :meth:`~repro.experiments.context.
  ExperimentContext.create`), so requests never share mutable physics.
  The non-negotiable invariant, pinned by ``tests/test_angel_service.
  py``: a request compiled through the service is **bit-identical** to
  the same spec run through :func:`run_standalone`, for any tenant mix,
  worker count, or fault profile.
* **Fairness** — requests advance one *schedulable unit* (one CopyCat
  probe batch, or the final shot execution) per grant, under deficit
  round-robin across tenants (:mod:`repro.service.scheduler`) with
  token-bucket admission (:mod:`repro.service.tenant`).
* **Coalescing** — each scheduler round's units execute together in one
  ``svc.coalesce`` window on a thread pool; a request's probe batch
  goes through ``BatchExecutor.submit_grouped``, the executor-level
  merge/demux seam, and remote requests can window-align their batches
  (:meth:`~repro.service.cloud.CloudQPUService.align_window`).
* **Dedup** — all request devices attach to one
  :class:`~repro.service.dedup.ProbeDistributionStore`, so identical
  probe distributions (same placement, circuit fingerprint, readout,
  and full device-parameter fingerprint) are computed once per physics
  state and replayed exactly everywhere else, with per-tenant
  ``dedup_hits`` ledgers.

* **Fleet mode** — with ``fleet=N`` the service fronts a device fleet
  (:mod:`repro.fleet`): requests are routed to independently drifting
  Aspen replicas by an affinity-aware router, and the dedup store is
  partitioned per replica. A 1-replica fleet stays bit-identical to
  :func:`run_standalone`, and a pinned request's outcome is
  independent of how other tenants' requests are routed.

The request lifecycle emits a ``svc.request`` summary span (queue wait,
latency, probes, dedup hits) and ``service.tenant.<name>.*`` registry
counters when observability is installed; fleet mode adds ``fleet.*``
spans, events, and per-replica counters.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..compiler.passes import transpile
from ..core import Angel, AngelConfig, AngelResult
from ..exceptions import ServiceError
from ..exec import Job
from ..exec.executor import BatchExecutor
from ..experiments.context import ExperimentContext
from ..fleet import FleetService, FleetSpec, ReplicaBinding
from ..obs import runtime as obs
from ..programs import get_benchmark
from .dedup import ProbeDistributionStore
from .scheduler import DeficitRoundRobin
from .tenant import AdmissionError, TenantConfig, TenantState

__all__ = [
    "RequestSpec",
    "CompileOutcome",
    "RequestHandle",
    "AngelService",
    "run_standalone",
    "replay_workload",
]


@dataclass(frozen=True)
class RequestSpec:
    """One compile request, frozen: everything a run is a function of.

    The same spec run through :func:`run_standalone` and through an
    :class:`AngelService` produces bit-identical results — the spec
    pins the device build (seed, calibration, drift), the backend and
    its fault stream, and the ANGEL search seed.
    """

    program: str
    shots: int = 1024
    probe_shots: int = 1024
    device_name: str = "aspen-11"
    seed: int = 11
    calibration_seed: int = 3
    drift_hours: float = 2.0
    max_passes: int = 1
    angel_seed: int = 0
    backend: str = "local"
    fault_profile: str = "none"
    fault_seed: int = 0
    #: Engine toggles (see :meth:`ExperimentContext.create`): the
    #: batched candidate engine is on by default; the Clifford fast
    #: path is opt-in because its counts are differential-test-bounded
    #: approximations rather than bit-identical.
    batched_sim: bool = True
    clifford_fast_path: bool = False
    #: Window-aligned batch admission for remote backends (see
    #: :meth:`CloudQPUService.align_window`). Part of the spec so the
    #: standalone reference run takes the identical clock trajectory.
    align_windows: bool = False
    #: Pin this request to one fleet replica (index into the fleet).
    #: ``None`` lets the :class:`~repro.fleet.FleetRouter` choose.
    #: Ignored outside fleet mode — :func:`run_standalone` always runs
    #: the spec as written; the fleet reference for a pinned request is
    #: ``run_standalone(fleet.spec.replicas[i].adjust(spec))``.
    replica: Optional[int] = None
    #: Pre-routing optimization level (see :func:`repro.compiler.
    #: transpile`). Part of the spec — the service and the standalone
    #: reference transpile at the same level, so service-vs-standalone
    #: bit-equivalence holds at every level.
    opt_level: int = 0


@dataclass(frozen=True)
class CompileOutcome:
    """What a completed request returns.

    ``final_counts`` are the nativized program's shot counts;
    ``dedup_hits`` counts probe distributions this request took from
    the shared store instead of recomputing.
    """

    spec: RequestSpec
    tenant: Optional[str]
    result: AngelResult
    final_counts: Dict[str, int]
    probes_run: int
    dedup_hits: int
    queue_wait_s: float = 0.0
    latency_s: float = 0.0
    #: Fleet replica index the request ran on (``None`` outside fleet
    #: mode) — lets audits pick the right standalone reference.
    fleet_replica: Optional[int] = None
    #: Host seconds between the first scheduling grant and completion
    #: (``latency_s`` minus ``queue_wait_s``, measured directly).
    service_time_s: float = 0.0
    #: Simulated device occupancy this request consumed (the executor's
    #: cumulative job durations) — deterministic for a deterministic
    #: spec, which makes simulated-time SLO percentiles reproducible.
    device_time_us: float = 0.0


class RequestHandle:
    """Async handle for a submitted request (``concurrent.futures``-ish).

    ``result()`` blocks until the request completes and returns its
    :class:`CompileOutcome`, re-raising the request's failure if it
    failed permanently.
    """

    def __init__(self, tenant: str, spec: RequestSpec) -> None:
        self.tenant = tenant
        self.spec = spec
        self._event = threading.Event()
        self._outcome: Optional[CompileOutcome] = None
        self._exception: Optional[BaseException] = None
        # Lifecycle timestamps (host monotonic seconds), stamped by the
        # service: enqueue at construction, the first scheduling grant,
        # and completion. Queue wait and service time are measured
        # directly from these — not inferred from span gaps.
        self.submitted_at: float = time.monotonic()
        self.scheduled_at: Optional[float] = None
        self.completed_at: Optional[float] = None

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def queue_wait_s(self) -> float:
        """Enqueue -> first scheduling grant (live until scheduled)."""
        anchor = self.scheduled_at
        if anchor is None:
            anchor = (
                self.completed_at
                if self.completed_at is not None
                else time.monotonic()
            )
        return anchor - self.submitted_at

    @property
    def service_time_s(self) -> float:
        """First scheduling grant -> completion (0.0 until finished)."""
        if self.completed_at is None or self.scheduled_at is None:
            return 0.0
        return self.completed_at - self.scheduled_at

    @property
    def latency_s(self) -> float:
        """Enqueue -> completion (live while the request is in flight)."""
        anchor = (
            self.completed_at
            if self.completed_at is not None
            else time.monotonic()
        )
        return anchor - self.submitted_at

    def result(self, timeout: Optional[float] = None) -> CompileOutcome:
        if not self._event.wait(timeout):
            raise ServiceError(
                f"request {self.spec.program!r} (tenant {self.tenant!r}) "
                f"did not complete within {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        assert self._outcome is not None
        return self._outcome

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise ServiceError("request still pending")
        return self._exception

    def _resolve(
        self,
        outcome: Optional[CompileOutcome] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._outcome = outcome
        self._exception = exception
        self._event.set()


class _Request:
    """One request's private compile stack, stepped unit by unit.

    Owns an :class:`ExperimentContext` built from the spec (device,
    calibration, backend, executor), an :class:`AngelProbePlan`, and —
    after the plan completes — the final nativized shot execution. Both
    the service and :func:`run_standalone` drive requests through this
    class, so the two paths cannot diverge.
    """

    def __init__(
        self,
        spec: RequestSpec,
        store: Optional[ProbeDistributionStore] = None,
        fleet: Optional[FleetService] = None,
        request_key: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.outcome_counts: Optional[Dict[str, int]] = None
        self.result: Optional[AngelResult] = None
        self.fleet = fleet
        self.binding: Optional[ReplicaBinding] = None
        if fleet is not None:
            # Bind lazily at build time (the request's first scheduling
            # grant) so the router sees live queue depths. The binding
            # replaces the shared store with the replica's partition
            # and rewrites the device recipe to the replica's.
            self.binding = fleet.bind(
                request_key or f"anonymous/{id(self):x}", tenant, spec
            )
            effective = self.binding.adjusted(spec)
            store = self.binding.replica.store
        else:
            effective = spec
        try:
            self.context = ExperimentContext.create(
                device_name=effective.device_name,
                seed=effective.seed,
                calibration_seed=effective.calibration_seed,
                drift_hours=effective.drift_hours,
                backend=effective.backend,
                fault_profile=effective.fault_profile,
                fault_seed=effective.fault_seed,
                batched_sim=effective.batched_sim,
                clifford_fast_path=effective.clifford_fast_path,
            )
        except BaseException:
            self._release_binding()
            raise
        try:
            self.executor = self.context.executor
            backend = self.executor.backend
            if hasattr(backend, "align_windows"):
                backend.align_windows = spec.align_windows
            if self.binding is not None:
                # Same backend, same jobs, same order — the fleet facade
                # only adds per-replica accounting, so results stay
                # bit-identical to the unwrapped path.
                self.executor = BatchExecutor(
                    self.binding.wrap_backend(backend),
                    mode=self.executor.mode,
                    max_workers=self.executor.max_workers,
                )
            self.deduped = (
                store.attach(self.context.device)
                if store is not None
                else False
            )
            circuit = get_benchmark(spec.program).build()
            self.angel = Angel(
                self.context.device,
                self.context.calibration,
                AngelConfig(
                    probe_shots=spec.probe_shots,
                    max_passes=spec.max_passes,
                    seed=spec.angel_seed,
                ),
                executor=self.executor,
            )
            self.compiled = transpile(
                circuit,
                self.context.device,
                self.context.calibration,
                optimization_level=spec.opt_level,
            )
            self.plan = self.angel.plan(self.compiled, observe=True)
        except BaseException:
            self._release_binding()
            self.context.close()
            raise

    @property
    def finished(self) -> bool:
        return self.outcome_counts is not None

    @property
    def cost(self) -> int:
        """Jobs in the next schedulable unit (final execution costs 1)."""
        if self.plan.done:
            return 1
        return len(self.plan.current_batch)

    def step(self) -> None:
        """Run the next unit: one probe batch, or the final execution.

        Probe batches go through the executor's grouped (coalescing)
        path with per-job failure tolerance — failed probes degrade
        links exactly as in :meth:`Angel.select`. The final job is
        all-or-nothing: a permanent failure raises and fails the
        request.
        """
        if self.finished:
            raise ServiceError("request already finished")
        if not self.plan.done:
            jobs = self.plan.next_jobs()
            results = self.executor.submit_grouped(
                [jobs], allow_failures=True
            )[0]
            self.plan.deliver(results)
            return
        self.plan.record_outcome(self.executor)
        self.result = self.plan.result()
        native = self.angel.nativize(self.compiled, self.result)
        final_seed = int(self.angel._rng.integers(2**31))
        final = self.executor.submit(
            Job(native, self.spec.shots, seed=final_seed, tag="final")
        )
        self.outcome_counts = dict(final.counts)

    @property
    def dedup_hits(self) -> int:
        cache = getattr(self.context.device, "sim_cache", None)
        return cache.shared_hits if cache is not None else 0

    @property
    def probes_run(self) -> int:
        return self.plan.probes_run

    @property
    def device_time_us(self) -> float:
        """Simulated device occupancy consumed so far (executor ledger)."""
        return float(self.executor.stats.device_time_us)

    def _release_binding(self) -> None:
        if self.fleet is not None and self.binding is not None:
            self.fleet.release(self.binding)
            self.binding = None

    def close(self) -> None:
        self._release_binding()
        self.context.close()


def run_standalone(
    spec: RequestSpec,
    store: Optional[ProbeDistributionStore] = None,
) -> CompileOutcome:
    """The reference implementation: one request, start to finish.

    This is the semantics the service is held to — same
    :class:`_Request` stepping, just sequential and alone. A shared
    ``store`` may be supplied to reproduce dedup behaviour; hits are
    exact replays, so the outcome is unchanged either way.
    """
    request = _Request(spec, store)
    try:
        while not request.finished:
            request.step()
        assert request.result is not None
        return CompileOutcome(
            spec=spec,
            tenant=None,
            result=request.result,
            final_counts=request.outcome_counts or {},
            probes_run=request.probes_run,
            dedup_hits=request.dedup_hits,
            device_time_us=request.device_time_us,
        )
    finally:
        request.close()


class _ServiceEntry:
    """One queued request inside the service: spec + handle + timing."""

    def __init__(
        self,
        spec: RequestSpec,
        tenant: TenantState,
        handle: RequestHandle,
        store: Optional[ProbeDistributionStore],
        fleet: Optional[FleetService] = None,
        request_key: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.tenant = tenant
        self.handle = handle
        self.store = store
        self.fleet = fleet
        self.request_key = request_key
        self.request: Optional[_Request] = None
        self.error: Optional[BaseException] = None

    @property
    def cost(self) -> int:
        # Before the request stack exists, the first grant pays for
        # preparation plus the one-job reference probe.
        if self.request is None:
            return 1
        return self.request.cost

    @property
    def finished(self) -> bool:
        return self.request is not None and self.request.finished

    def run_step(self) -> None:
        """Advance one unit on a pool thread; resolve handle on exit."""
        try:
            if self.request is None:
                # The first scheduling grant: queue wait ends here, and
                # the handle records the boundary directly.
                self.handle.scheduled_at = time.monotonic()
                self.request = _Request(
                    self.spec,
                    self.store,
                    fleet=self.fleet,
                    request_key=self.request_key,
                    tenant=self.tenant.name,
                )
            self.request.step()
        except BaseException as exc:  # noqa: BLE001 - forwarded to handle
            self.error = exc


class AngelService:
    """The multi-tenant front door: submit specs, collect outcomes.

    Args:
        num_workers: Pool threads executing scheduled units — the
            service's concurrency, orthogonal to any per-request
            simulation parallelism.
        round_budget_jobs: Per-round job cap for the DRR scheduler
            (window-shaped coalescing); ``None`` leaves rounds
            unbounded.
        dedup: Share probe distributions across requests through a
            :class:`ProbeDistributionStore`.
        tenants: Tenant configurations to pre-register. Unknown tenant
            names submit under a default config (no rate limit).
        fleet: Run in fleet mode — an ``int`` (``FleetSpec.create(n)``),
            a :class:`~repro.fleet.FleetSpec`, or a prebuilt
            :class:`~repro.fleet.FleetService`. Requests are routed to
            drifting device replicas and the dedup store is partitioned
            per replica (``store`` stays ``None``).
        fleet_placements: Recorded ``{request_key: replica_index}``
            placements to replay verbatim (fleet mode only).
    """

    def __init__(
        self,
        num_workers: int = 2,
        round_budget_jobs: Optional[int] = None,
        dedup: bool = True,
        tenants: Sequence[TenantConfig] = (),
        fleet: Optional[Union[int, FleetSpec, FleetService]] = None,
        fleet_placements: Optional[Mapping[str, int]] = None,
    ) -> None:
        if num_workers < 1:
            raise ServiceError("num_workers must be >= 1")
        self.num_workers = num_workers
        if fleet is not None and not isinstance(fleet, FleetService):
            fleet = FleetService(
                fleet,
                dedup=dedup,
                replay=(
                    dict(fleet_placements) if fleet_placements else None
                ),
            )
        self.fleet: Optional[FleetService] = fleet
        self.store = (
            ProbeDistributionStore() if dedup and fleet is None else None
        )
        self.scheduler = DeficitRoundRobin(round_budget_jobs)
        self._tenants: Dict[str, TenantState] = {}
        for config in tenants:
            self.add_tenant(config)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._inflight = 0
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="angel-svc"
        )
        self._scheduler_thread = threading.Thread(
            target=self._run, name="angel-svc-scheduler", daemon=True
        )
        self._scheduler_thread.start()

    # ------------------------------------------------------------------
    # Tenants and submission
    # ------------------------------------------------------------------
    def add_tenant(self, config: TenantConfig) -> TenantState:
        state = self._tenants.get(config.name)
        if state is not None:
            raise ServiceError(f"tenant {config.name!r} already registered")
        state = TenantState(config)
        self._tenants[config.name] = state
        return state

    def _tenant_state(self, tenant: Union[str, TenantConfig]) -> TenantState:
        if isinstance(tenant, TenantConfig):
            state = self._tenants.get(tenant.name)
            return state if state is not None else self.add_tenant(tenant)
        state = self._tenants.get(tenant)
        if state is None:
            state = self.add_tenant(TenantConfig(tenant))
        return state

    def submit(
        self, tenant: Union[str, TenantConfig], spec: RequestSpec
    ) -> RequestHandle:
        """Queue one request for ``tenant``; never blocks on execution.

        Raises :class:`~repro.service.tenant.AdmissionError` when the
        tenant's token bucket is empty.
        """
        with self._work:
            if self._closed:
                raise ServiceError("service is closed")
            state = self._tenant_state(tenant)
            try:
                state.admit()
            except AdmissionError as exc:
                self._observe_reject(state, spec, exc)
                raise
            handle = RequestHandle(state.name, spec)
            # Deterministic per-tenant key: replayable placements need
            # the same request to carry the same key across runs.
            request_key = f"{state.name}/{state.submitted}"
            state.queue.append(
                _ServiceEntry(
                    spec,
                    state,
                    handle,
                    self.store,
                    fleet=self.fleet,
                    request_key=request_key,
                )
            )
            self._inflight += 1
            self._work.notify_all()
        return handle

    def _observe_reject(
        self,
        tenant: TenantState,
        spec: RequestSpec,
        error: "AdmissionError",
    ) -> None:
        """A zero-duration ``svc.reject`` span per admission bounce, so
        rejection rates are computable from the trace alone."""
        tracer = obs.active_tracer()
        if tracer:
            with tracer.span(
                "svc.reject",
                tenant=tenant.name,
                program=spec.program,
            ) as span:
                span.set(retry_after_s=error.retry_after_s)
        registry = obs.active_registry()
        if registry is not None:
            registry.counter(
                f"service.tenant.{tenant.name}.rejected"
            ).add(1)

    # ------------------------------------------------------------------
    # Scheduler loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._work:
                self._work.wait_for(
                    lambda: self._closed
                    or any(t.queue for t in self._tenants.values())
                )
                picked = self.scheduler.next_round(
                    list(self._tenants.values())
                )
                if not picked:
                    if self._closed:
                        return
                    continue
                round_number = self.scheduler.rounds
            self._execute_round(round_number, picked)

    def _execute_round(self, round_number: int, picked) -> None:
        tracer = obs.active_tracer()
        span = (
            tracer.span(
                "svc.coalesce",
                round=round_number,
                units=len(picked),
                jobs=sum(entry.cost for _, entry in picked),
                tenants=len({tenant.name for tenant, _ in picked}),
            )
            if tracer
            else obs.NULL_SPAN
        )
        with span:
            futures = [
                self._pool.submit(entry.run_step) for _, entry in picked
            ]
            wait(futures)
        with self._work:
            for tenant, entry in reversed(picked):
                if entry.error is not None:
                    self._complete(tenant, entry)
                elif entry.finished:
                    self._complete(tenant, entry)
                else:
                    # Unfinished requests rejoin at the *front* so a
                    # tenant's own requests stay FIFO.
                    tenant.queue.appendleft(entry)
            self._work.notify_all()

    def _complete(self, tenant: TenantState, entry: _ServiceEntry) -> None:
        """Resolve a finished/failed entry (service lock held)."""
        self._inflight -= 1
        handle = entry.handle
        handle.completed_at = time.monotonic()
        queue_wait = handle.queue_wait_s
        latency = handle.latency_s
        service_time = handle.service_time_s
        tenant.queue_wait_s.append(queue_wait)
        tenant.latency_s.append(latency)
        request = entry.request
        probes = request.probes_run if request is not None else 0
        dedup_hits = request.dedup_hits if request is not None else 0
        device_time_us = (
            request.device_time_us if request is not None else 0.0
        )
        replica = (
            request.binding.index
            if request is not None and request.binding is not None
            else None
        )
        failed = entry.error is not None
        if failed:
            tenant.failed += 1
        else:
            tenant.completed += 1
            tenant.probes += probes
            tenant.dedup_hits += dedup_hits
        self._observe_request(
            tenant,
            entry,
            queue_wait,
            latency,
            probes,
            dedup_hits,
            service_time=service_time,
            device_time_us=device_time_us,
            replica=replica,
        )
        if request is not None:
            try:
                request.close()
            except BaseException as exc:  # pragma: no cover - best effort
                entry.error = entry.error or exc
        if failed:
            handle._resolve(exception=entry.error)
            return
        assert request is not None and request.result is not None
        handle._resolve(
            outcome=CompileOutcome(
                spec=entry.spec,
                tenant=tenant.name,
                result=request.result,
                final_counts=request.outcome_counts or {},
                probes_run=probes,
                dedup_hits=dedup_hits,
                queue_wait_s=queue_wait,
                latency_s=latency,
                fleet_replica=replica,
                service_time_s=service_time,
                device_time_us=device_time_us,
            )
        )

    def _observe_request(
        self,
        tenant: TenantState,
        entry: _ServiceEntry,
        queue_wait: float,
        latency: float,
        probes: int,
        dedup_hits: int,
        service_time: float = 0.0,
        device_time_us: float = 0.0,
        replica: Optional[int] = None,
    ) -> None:
        tracer = obs.active_tracer()
        if tracer:
            # A summary span: the request ran across many rounds and
            # threads, so its lifetime cannot be one ``with`` block —
            # the span's attributes carry the authoritative timings.
            with tracer.span(
                "svc.request",
                tenant=tenant.name,
                program=entry.spec.program,
                backend=entry.spec.backend,
            ) as span:
                span.set(
                    queue_wait_s=round(queue_wait, 9),
                    latency_s=round(latency, 9),
                    service_time_s=round(service_time, 9),
                    device_time_us=device_time_us,
                    probes=probes,
                    dedup_hits=dedup_hits,
                    failed=entry.error is not None,
                )
                if replica is not None:
                    span.set(replica=replica)
        registry = obs.active_registry()
        if registry is not None:
            prefix = f"service.tenant.{tenant.name}"
            key = "failed" if entry.error is not None else "completed"
            registry.counter(f"{prefix}.{key}").add(1)
            registry.counter(f"{prefix}.probes").add(probes)
            registry.counter(f"{prefix}.dedup_hits").add(dedup_hits)
            registry.histogram(f"{prefix}.latency_s").observe(latency)
            registry.histogram(f"{prefix}.queue_wait_s").observe(queue_wait)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted request has resolved."""
        with self._work:
            if not self._work.wait_for(
                lambda: self._inflight == 0, timeout
            ):
                raise ServiceError(
                    f"{self._inflight} requests still in flight after "
                    f"{timeout}s"
                )

    def tenant_report(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant ledgers (admissions, completions, waits, dedup)."""
        with self._lock:
            return {
                name: state.ledger()
                for name, state in sorted(self._tenants.items())
            }

    def fleet_report(self) -> Optional[Dict[str, object]]:
        """Per-replica ledgers and router counters (``None`` off-fleet)."""
        return self.fleet.report() if self.fleet is not None else None

    def store_stats(self) -> List[Dict[str, object]]:
        """Probe-distribution store counters, one row per partition.

        One row for the shared store, or one per fleet replica — each
        with the replica label attached so the serve summary can render
        the partitioning.
        """
        if self.fleet is not None:
            rows = []
            for replica in self.fleet.replicas:
                if replica.store is None:
                    continue
                row: Dict[str, object] = {"partition": replica.name}
                row.update(replica.store.stats())
                rows.append(row)
            return rows
        if self.store is None:
            return []
        row = {"partition": "shared"}
        row.update(self.store.stats())
        return [row]

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain outstanding work, stop the scheduler, free the pool."""
        self.drain(timeout)
        with self._work:
            if self._closed:
                return
            self._closed = True
            self._work.notify_all()
        self._scheduler_thread.join(timeout=timeout or 60.0)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "AngelService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_workload(
    workload: Mapping[str, Sequence[RequestSpec]],
    num_workers: int = 2,
    round_budget_jobs: Optional[int] = None,
    dedup: bool = True,
    tenants: Sequence[TenantConfig] = (),
    service: Optional[AngelService] = None,
    fleet: Optional[Union[int, FleetSpec, FleetService]] = None,
    fleet_placements: Optional[Mapping[str, int]] = None,
) -> Dict[str, List[Union[CompileOutcome, BaseException]]]:
    """Submit a whole multi-tenant workload and collect every outcome.

    ``workload`` maps tenant name to that tenant's request specs, in
    submission order. Failed requests come back as their exception in
    the corresponding slot (a flaky tenant failing must not sink the
    replay). Creates and closes a service unless one is passed in.
    """
    owned = service is None
    if service is None:
        service = AngelService(
            num_workers=num_workers,
            round_budget_jobs=round_budget_jobs,
            dedup=dedup,
            tenants=tenants,
            fleet=fleet,
            fleet_placements=fleet_placements,
        )
    try:
        handles = {
            name: [service.submit(name, spec) for spec in specs]
            for name, specs in workload.items()
        }
        service.drain()
        results: Dict[str, List[Union[CompileOutcome, BaseException]]] = {}
        for name, tenant_handles in handles.items():
            slots: List[Union[CompileOutcome, BaseException]] = []
            for handle in tenant_handles:
                try:
                    slots.append(handle.result())
                except BaseException as exc:  # noqa: BLE001 - recorded
                    slots.append(exc)
            results[name] = slots
        return results
    finally:
        if owned:
            service.close()


def _spec_variants(
    base: RequestSpec, count: int, programs: Sequence[str]
) -> List[RequestSpec]:
    """``count`` specs cycling through ``programs`` (workload helper)."""
    return [
        replace(base, program=programs[index % len(programs)])
        for index in range(count)
    ]
