"""Density-matrix simulator — the physics engine of the simulated device.

The state is a rank-``2n`` tensor: axes ``0..n-1`` are ket (row) indices
and axes ``n..2n-1`` are bra (column) indices, big-endian within each
half. Gates and Kraus channels are applied by contracting against the
relevant axes on both sides, costing ``O(4^n)`` per operator — ample for
the paper's 2–5 qubit benchmarks and usable up to ~10 qubits.

This simulator exists because the paper's effects are *open-system*
effects: depolarizing noise, T1/T2 decay, coherent over-rotations, and
readout confusion. A state-vector Monte-Carlo could model them too, but
the density matrix gives exact noisy distributions, which keeps the
experiment harness deterministic apart from explicit shot sampling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..exceptions import SimulationError
from .channels import KrausChannel, ReadoutError, Superoperator

__all__ = ["DensityMatrix", "DensityMatrixSimulator"]

_MAX_QUBITS = 10


class DensityMatrix:
    """A mutable mixed state on *num_qubits* qubits."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise SimulationError("need at least one qubit")
        if num_qubits > _MAX_QUBITS:
            raise SimulationError(
                f"density matrix limited to {_MAX_QUBITS} qubits"
            )
        self.num_qubits = num_qubits
        dim = 2**num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        self._tensor = rho.reshape((2,) * (2 * num_qubits))

    @property
    def matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` copy of the state."""
        dim = 2**self.num_qubits
        return self._tensor.reshape(dim, dim).copy()

    def snapshot(self) -> np.ndarray:
        """Copy of the state tensor, suitable for caching."""
        return self._tensor.copy()

    @classmethod
    def from_snapshot(cls, num_qubits: int, tensor: np.ndarray) -> "DensityMatrix":
        """Rebuild a state from a :meth:`snapshot` tensor (copied)."""
        state = cls(num_qubits)
        if tensor.shape != state._tensor.shape:
            raise SimulationError(
                f"snapshot shape {tensor.shape} does not match "
                f"{num_qubits}-qubit state"
            )
        state._tensor = np.array(tensor, dtype=complex, copy=True)
        return state

    def trace(self) -> float:
        return float(np.real(np.trace(self.matrix)))

    def purity(self) -> float:
        rho = self.matrix
        return float(np.real(np.trace(rho @ rho)))

    def _apply_left(
        self, matrix: np.ndarray, axes: Tuple[int, ...]
    ) -> None:
        """Contract *matrix* against the given tensor axes (in place)."""
        k = len(axes)
        op = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
        contracted = np.tensordot(
            op, self._tensor, axes=(list(range(k, 2 * k)), list(axes))
        )
        # Restore axis order: tensordot put the acted-on axes first.
        # argsort(current) is the inverse permutation — O(k log k)
        # instead of the O(k^2) list.index scan per axis.
        total_axes = 2 * self.num_qubits
        others = [a for a in range(total_axes) if a not in axes]
        current = np.array(list(axes) + others)
        self._tensor = np.transpose(contracted, np.argsort(current))

    def apply_unitary(self, matrix: np.ndarray, qubits: Tuple[int, ...]) -> None:
        """Apply ``rho -> U rho U^dag`` on the given qubits."""
        matrix = np.asarray(matrix, dtype=complex)
        ket_axes = tuple(qubits)
        bra_axes = tuple(q + self.num_qubits for q in qubits)
        self._apply_left(matrix, ket_axes)
        self._apply_left(matrix.conj(), bra_axes)

    def apply_gate(self, gate: Gate) -> None:
        if not gate.is_unitary:
            raise SimulationError(f"cannot apply non-unitary {gate.name!r}")
        self.apply_unitary(gate.matrix(), gate.qubits)

    def apply_channel(self, channel: KrausChannel, qubits: Tuple[int, ...]) -> None:
        """Apply a Kraus channel to the given qubits."""
        if channel.num_qubits != len(qubits):
            raise SimulationError(
                f"channel acts on {channel.num_qubits} qubits, "
                f"given {len(qubits)}"
            )
        ket_axes = tuple(qubits)
        bra_axes = tuple(q + self.num_qubits for q in qubits)
        original = self._tensor
        accumulated: Optional[np.ndarray] = None
        for op in channel.operators:
            self._tensor = original
            self._apply_left(np.asarray(op), ket_axes)
            self._apply_left(np.asarray(op).conj(), bra_axes)
            if accumulated is None:
                accumulated = self._tensor
            else:
                accumulated = accumulated + self._tensor
        assert accumulated is not None
        self._tensor = accumulated

    def apply_superoperator(
        self, superop: Superoperator, qubits: Tuple[int, ...]
    ) -> None:
        """Apply a vectorized channel in one contraction.

        The superoperator's row/column halves are (ket, bra) pairs, so
        contracting it against the state's ket axes *and* bra axes of
        the acted-on qubits applies the whole channel — however many
        Kraus operators it was fused from — in a single tensordot.
        """
        if superop.num_qubits != len(qubits):
            raise SimulationError(
                f"superoperator acts on {superop.num_qubits} qubits, "
                f"given {len(qubits)}"
            )
        axes = tuple(qubits) + tuple(q + self.num_qubits for q in qubits)
        self._apply_left(superop.matrix, axes)

    def probabilities(self, qubits: Optional[Iterable[int]] = None) -> np.ndarray:
        """Diagonal (measurement) probabilities over *qubits*.

        Marginalizes the unlisted qubits. Result is big-endian over the
        listed qubits in the given order.
        """
        dim = 2**self.num_qubits
        diag = np.real(np.diagonal(self._tensor.reshape(dim, dim)))
        diag = np.clip(diag, 0.0, None)
        tensor = diag.reshape((2,) * self.num_qubits)
        if qubits is None:
            return tensor.reshape(-1)
        qubits = tuple(qubits)
        others = tuple(q for q in range(self.num_qubits) if q not in qubits)
        marginal = tensor.sum(axis=others) if others else tensor
        kept_sorted = tuple(sorted(qubits))
        perm = [kept_sorted.index(q) for q in qubits]
        return np.transpose(marginal, perm).reshape(-1)


class DensityMatrixSimulator:
    """Execute circuits with optional per-instruction noise.

    The simulator is policy-free: callers supply a ``noise_callback`` that
    maps each instruction to the channels to apply after it. The device
    model (:mod:`repro.device`) provides that callback from its calibrated
    physics; tests can inject hand-built channels.

    An optional ``operation_compiler`` short-circuits the per-gate path:
    given an instruction it may return a full replacement sequence of
    ``(operator, qubits)`` pairs — ideal unitary *included* — where each
    operator is a :class:`~repro.sim.channels.Superoperator`,
    :class:`~repro.sim.channels.KrausChannel`, or plain unitary matrix.
    Returning ``None`` falls back to ``apply_gate`` + ``noise_callback``
    for that instruction. The device's channel cache uses this hook to
    execute each gate-plus-noise as one fused contraction.
    """

    def __init__(self, noise_callback=None, operation_compiler=None) -> None:
        self.noise_callback = noise_callback
        self.operation_compiler = operation_compiler

    def run(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Evolve |0..0><0..0| through the circuit's unitary part."""
        state = DensityMatrix(circuit.num_qubits)
        compiler = self.operation_compiler
        for gate in circuit:
            if not gate.is_unitary:
                continue
            if compiler is not None:
                operations = compiler(gate)
                if operations is not None:
                    for operator, qubits in operations:
                        if isinstance(operator, Superoperator):
                            state.apply_superoperator(operator, tuple(qubits))
                        elif isinstance(operator, KrausChannel):
                            state.apply_channel(operator, tuple(qubits))
                        else:
                            state.apply_unitary(operator, tuple(qubits))
                    continue
            state.apply_gate(gate)
            if self.noise_callback is not None:
                for channel, qubits in self.noise_callback(gate):
                    state.apply_channel(channel, tuple(qubits))
        return state

    def distribution(
        self,
        circuit: QuantumCircuit,
        readout_errors: Optional[Sequence[Optional[ReadoutError]]] = None,
    ) -> Dict[str, float]:
        """Exact noisy output distribution over the measured qubits.

        Args:
            circuit: The circuit; its measured qubits define the output
                register (all qubits if it has no measurements).
            readout_errors: Optional per-physical-qubit readout confusion;
                indexed by qubit, entries may be ``None`` for ideal
                readout.
        """
        state = self.run(circuit)
        measured = circuit.measured_qubits() or tuple(range(circuit.num_qubits))
        probs = state.probabilities(measured)
        if readout_errors is not None:
            probs = _apply_readout_confusion(probs, measured, readout_errors)
        width = len(measured)
        return {
            format(i, f"0{width}b"): float(p)
            for i, p in enumerate(probs)
            if p > 1e-14
        }

    def sample(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: np.random.Generator,
        readout_errors: Optional[Sequence[Optional[ReadoutError]]] = None,
    ) -> Dict[str, int]:
        """Shot-sampled counts from the noisy distribution."""
        distribution = self.distribution(circuit, readout_errors)
        keys = sorted(distribution)
        probs = np.array([distribution[k] for k in keys])
        probs = probs / probs.sum()
        outcomes = rng.choice(len(keys), size=shots, p=probs)
        values, frequencies = np.unique(outcomes, return_counts=True)
        return {
            keys[int(value)]: int(frequency)
            for value, frequency in zip(values, frequencies)
        }


def _apply_readout_confusion(
    probs: np.ndarray,
    measured: Tuple[int, ...],
    readout_errors: Sequence[Optional[ReadoutError]],
) -> np.ndarray:
    """Apply per-qubit confusion matrices to a probability vector."""
    width = len(measured)
    tensor = probs.reshape((2,) * width)
    for position, qubit in enumerate(measured):
        error = readout_errors[qubit] if qubit < len(readout_errors) else None
        if error is None:
            continue
        confusion = error.confusion_matrix()
        tensor = np.tensordot(confusion, tensor, axes=([1], [position]))
        tensor = np.moveaxis(tensor, 0, position)
    flat = tensor.reshape(-1)
    return np.clip(flat, 0.0, None) / max(flat.sum(), 1e-300)
