"""Memoization of noise-channel construction, invalidated by drift.

Building a gate's noise tail — coherent-error unitaries, depolarizing
Kraus sets, thermal-relaxation channels, and the fused per-gate
superoperators derived from them — is pure in the device's *current*
noise parameters: the same parameter values always produce the same
operators. The device therefore memoizes those constructions here and
clears the cache whenever :meth:`~repro.device.device.RigettiAspenDevice.
advance_time` moves the parameters (each such move bumps the device's
``drift_epoch``), so a cached entry can never outlive the parameter
values it was built from.

The cache is deliberately generic — ``get(key, factory)`` — so it lives
below both the device layer (which knows the physics constructors) and
the execution layer (which reports its hit rates through
``ExecutorStats``) without importing either.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["ChannelCache"]

#: Entries kept before the cache starts evicting its least recently
#: used entry on each insertion. Generous: a full Aspen-M-1 device has
#: ~100 (link, gate) pairs and ~80 qubits.
_DEFAULT_MAX_ENTRIES = 8192


class ChannelCache:
    """A drift-aware memo table for channel/superoperator construction.

    Attributes:
        hits / misses: Lookup counters since construction (never reset
            by invalidation, so throughput studies can integrate them).
        evictions: Entries dropped one at a time to stay within
            capacity (LRU: the least recently used entry goes first).
        invalidations: How many times the cache was cleared by drift.
        epoch: The drift epoch the current entries were built under.
    """

    def __init__(self, max_entries: int = _DEFAULT_MAX_ENTRIES) -> None:
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.epoch = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for *key*, building it on first use.

        A full cache evicts its least recently used entry rather than
        dropping the whole working set. Hits refresh recency, so
        non-uniform reuse (hot per-gate entries among one-shot prefix or
        distribution keys) keeps the hot set resident — the reason this
        is LRU and not the cheaper FIFO.
        """
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            while len(self._entries) >= self._max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            value = factory()
            self._entries[key] = value
            return value
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def invalidate(self, epoch: int) -> None:
        """Drop every entry: the parameters they encode no longer hold."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1
        self.epoch = epoch

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "epoch": self.epoch,
        }

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
