"""Per-instruction noise specifications for the density-matrix simulator.

A :class:`NoiseModel` maps each executed gate to the error operations that
follow it:

1. an optional *coherent* error unitary (over-rotation / parasitic ZZ) —
   the state-dependent component that randomized benchmarking averages
   away but applications feel (the paper's core physics);
2. a sequence of Kraus channels (depolarizing, thermal relaxation, ...).

Specs are keyed by ``(gate name, qubit tuple)`` with fallbacks to
``(gate name, None)`` (any qubits) so tests can install blanket noise in
one line while the device model installs fully link-specific physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.gates import Gate
from ..exceptions import SimulationError
from .channels import KrausChannel, ReadoutError, unitary_channel

__all__ = ["GateNoiseSpec", "NoiseModel"]


@dataclass(frozen=True)
class GateNoiseSpec:
    """Noise attached to one gate type/location.

    Attributes:
        coherent: Optional unitary error applied right after the ideal
            gate, on the gate's own qubits (dimension must match).
        channels: Kraus channels applied afterwards, each on the gate's
            own qubits.
    """

    coherent: Optional[np.ndarray] = None
    channels: Tuple[KrausChannel, ...] = ()

    def operations(
        self, qubits: Tuple[int, ...]
    ) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        ops: List[Tuple[KrausChannel, Tuple[int, ...]]] = []
        if self.coherent is not None:
            expected = 2 ** len(qubits)
            if self.coherent.shape != (expected, expected):
                raise SimulationError(
                    "coherent error dimension does not match gate arity"
                )
            ops.append((unitary_channel(self.coherent, "coherent_error"), qubits))
        for channel in self.channels:
            if channel.num_qubits != len(qubits):
                raise SimulationError(
                    f"channel {channel.label} arity mismatch for {qubits}"
                )
            ops.append((channel, qubits))
        return ops


class NoiseModel:
    """Lookup table from instructions to their trailing noise operations.

    Resolution order for a gate ``g`` on qubits ``q``:

    1. exact key ``(g.name, tuple(sorted(q)))``;
    2. per-gate-name default ``(g.name, None)``;
    3. arity default ``("*1q*", None)`` or ``("*2q*", None)``.

    Missing entries mean the gate is noiseless.
    """

    ANY_1Q = "*1q*"
    ANY_2Q = "*2q*"

    def __init__(self) -> None:
        self._specs: Dict[Tuple[str, Optional[Tuple[int, ...]]], GateNoiseSpec] = {}
        self.readout_errors: Dict[int, ReadoutError] = {}

    def set_gate_noise(
        self,
        gate_name: str,
        spec: GateNoiseSpec,
        qubits: Optional[Sequence[int]] = None,
    ) -> None:
        """Attach *spec* to gate *gate_name*, optionally location-specific."""
        key_qubits = tuple(sorted(qubits)) if qubits is not None else None
        self._specs[(gate_name, key_qubits)] = spec

    def set_arity_default(self, arity: int, spec: GateNoiseSpec) -> None:
        """Blanket noise for all 1- or 2-qubit gates without a closer match."""
        if arity == 1:
            self._specs[(self.ANY_1Q, None)] = spec
        elif arity == 2:
            self._specs[(self.ANY_2Q, None)] = spec
        else:
            raise SimulationError("arity defaults support 1 or 2 qubits only")

    def set_readout_error(self, qubit: int, error: ReadoutError) -> None:
        self.readout_errors[qubit] = error

    def readout_error_list(self, num_qubits: int) -> List[Optional[ReadoutError]]:
        """Per-qubit readout errors as a dense list for the simulator."""
        return [self.readout_errors.get(q) for q in range(num_qubits)]

    def spec_for(self, gate: Gate) -> Optional[GateNoiseSpec]:
        exact = self._specs.get((gate.name, tuple(sorted(gate.qubits))))
        if exact is not None:
            return exact
        by_name = self._specs.get((gate.name, None))
        if by_name is not None:
            return by_name
        if len(gate.qubits) == 1:
            return self._specs.get((self.ANY_1Q, None))
        if len(gate.qubits) == 2:
            return self._specs.get((self.ANY_2Q, None))
        return None

    def callback(self, gate: Gate) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        """The noise operations following *gate* (simulator hook)."""
        spec = self.spec_for(gate)
        if spec is None:
            return []
        return spec.operations(gate.qubits)

    def is_noiseless(self) -> bool:
        return not self._specs and not self.readout_errors
