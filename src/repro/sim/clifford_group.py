"""Enumeration of small Clifford groups as (tableau -> circuit) tables.

Randomized benchmarking needs two things the stabilizer simulator alone
does not provide: *uniform sampling* of Clifford group elements as
executable circuits, and the *single-element inverse* of a composed
sequence (the final recovery gate). Both reduce to a lookup table from a
canonical tableau key to a short generator word, which this module
builds by breadth-first search over {H, S, CNOT} products:

* 1 qubit: 24 elements (cross-checked against
  :mod:`repro.circuit.clifford`);
* 2 qubits: 11,520 elements — the full two-qubit Clifford group, each
  with a word of at most the BFS diameter (~11 gates).

Keys canonicalize the global-phase-free action of the element: the
images of the generators X_i and Z_i (the full tableau rows including
signs), which determine a Clifford uniquely up to phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..exceptions import SimulationError
from .stabilizer import StabilizerTableau

__all__ = [
    "CliffordElement",
    "CliffordGroup",
    "clifford_group",
    "tableau_key",
]

#: Generator vocabulary per qubit count: (gate name, qubit indices).
_GENERATORS: Dict[int, Tuple[Tuple[str, Tuple[int, ...]], ...]] = {
    1: (("h", (0,)), ("s", (0,))),
    2: (
        ("h", (0,)),
        ("h", (1,)),
        ("s", (0,)),
        ("s", (1,)),
        ("cnot", (0, 1)),
        ("cnot", (1, 0)),
    ),
}

_GROUP_ORDER = {1: 24, 2: 11_520}

_APPLY = {
    "h": lambda tab, q: tab.apply_h(q[0]),
    "s": lambda tab, q: tab.apply_s(q[0]),
    "sdg": lambda tab, q: tab.apply_sdg(q[0]),
    "x": lambda tab, q: tab.apply_x(q[0]),
    "y": lambda tab, q: tab.apply_y(q[0]),
    "z": lambda tab, q: tab.apply_z(q[0]),
    "cnot": lambda tab, q: tab.apply_cnot(q[0], q[1]),
    "cz": lambda tab, q: tab.apply_cz(q[0], q[1]),
    "swap": lambda tab, q: tab.apply_swap(q[0], q[1]),
    "iswap": lambda tab, q: tab.apply_iswap(q[0], q[1]),
}

Word = Tuple[Tuple[str, Tuple[int, ...]], ...]


def tableau_key(tableau: StabilizerTableau) -> bytes:
    """Canonical hashable key for a tableau's Clifford action."""
    return (
        np.packbits(tableau.x).tobytes()
        + np.packbits(tableau.z).tobytes()
        + np.packbits(tableau.r).tobytes()
    )


def _apply_word(tableau: StabilizerTableau, word: Word) -> None:
    for name, qubits in word:
        _APPLY[name](tableau, qubits)


def word_tableau(num_qubits: int, word: Word) -> StabilizerTableau:
    """The tableau of a gate word applied to the identity."""
    tableau = StabilizerTableau(num_qubits)
    _apply_word(tableau, word)
    return tableau


_INVERSE_GATE = {"h": "h", "s": "sdg", "sdg": "s", "cnot": "cnot",
                 "x": "x", "y": "y", "z": "z", "cz": "cz", "swap": "swap"}


def inverse_word(word: Word) -> Word:
    """The gate word realizing the inverse element."""
    return tuple(
        (_INVERSE_GATE[name], qubits) for name, qubits in reversed(word)
    )


@dataclass(frozen=True)
class CliffordElement:
    """One group element: its canonical key and a realizing gate word."""

    num_qubits: int
    key: bytes
    word: Word

    def circuit(self, qubits: Optional[Sequence[int]] = None) -> QuantumCircuit:
        """The element as a circuit, optionally on specific qubit ids."""
        targets = tuple(qubits) if qubits is not None else tuple(
            range(self.num_qubits)
        )
        if len(targets) != self.num_qubits:
            raise SimulationError(
                f"element acts on {self.num_qubits} qubits, got {targets}"
            )
        width = max(targets) + 1
        circuit = QuantumCircuit(width, name="clifford")
        for name, local in self.word:
            circuit.append(Gate(name, tuple(targets[q] for q in local)))
        return circuit

    def gates(self, qubits: Sequence[int]) -> List[Gate]:
        return [
            Gate(name, tuple(qubits[q] for q in local))
            for name, local in self.word
        ]


class CliffordGroup:
    """The full Clifford group on 1 or 2 qubits, enumerated by BFS.

    Provides uniform sampling, composition-free inverse lookup, and the
    key of an arbitrary composed sequence — everything randomized
    benchmarking needs.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits not in _GENERATORS:
            raise SimulationError(
                "Clifford group enumeration supports 1 or 2 qubits"
            )
        self.num_qubits = num_qubits
        self._elements: Dict[bytes, CliffordElement] = {}
        self._inverse_key: Dict[bytes, bytes] = {}
        self._enumerate()
        self._keys: List[bytes] = sorted(self._elements)

    def _enumerate(self) -> None:
        identity = StabilizerTableau(self.num_qubits)
        identity_key = tableau_key(identity)
        self._elements[identity_key] = CliffordElement(
            self.num_qubits, identity_key, ()
        )
        frontier: List[Tuple[bytes, Word]] = [(identity_key, ())]
        generators = _GENERATORS[self.num_qubits]
        while frontier:
            next_frontier: List[Tuple[bytes, Word]] = []
            for _key, word in frontier:
                for generator in generators:
                    new_word: Word = word + (generator,)
                    tableau = word_tableau(self.num_qubits, new_word)
                    new_key = tableau_key(tableau)
                    if new_key in self._elements:
                        continue
                    self._elements[new_key] = CliffordElement(
                        self.num_qubits, new_key, new_word
                    )
                    next_frontier.append((new_key, new_word))
            frontier = next_frontier
        if len(self._elements) != _GROUP_ORDER[self.num_qubits]:
            raise SimulationError(  # pragma: no cover - structural
                f"enumerated {len(self._elements)} elements, expected "
                f"{_GROUP_ORDER[self.num_qubits]}"
            )
        for key, element in self._elements.items():
            inv_tableau = word_tableau(
                self.num_qubits, inverse_word(element.word)
            )
            self._inverse_key[key] = tableau_key(inv_tableau)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def element(self, key: bytes) -> CliffordElement:
        try:
            return self._elements[key]
        except KeyError as exc:
            raise SimulationError("unknown Clifford key") from exc

    def sample(self, rng: np.random.Generator) -> CliffordElement:
        """A uniformly random group element."""
        return self._elements[self._keys[int(rng.integers(len(self._keys)))]]

    def inverse(self, key: bytes) -> CliffordElement:
        """The group inverse of the element with the given key."""
        return self.element(self._inverse_key[key])

    def key_of_word(self, word: Word) -> bytes:
        """Canonical key of an arbitrary gate word over the vocabulary."""
        return tableau_key(word_tableau(self.num_qubits, word))

    def compose_keys(self, first: bytes, then: bytes) -> bytes:
        """Key of ``then . first`` (apply *first*, then *then*)."""
        word = self.element(first).word + self.element(then).word
        return self.key_of_word(word)


_CACHE: Dict[int, CliffordGroup] = {}


def clifford_group(num_qubits: int) -> CliffordGroup:
    """Cached accessor for the 1- or 2-qubit Clifford group."""
    if num_qubits not in _CACHE:
        _CACHE[num_qubits] = CliffordGroup(num_qubits)
    return _CACHE[num_qubits]
