"""Counts and distribution utilities.

Executions everywhere in the library produce ``Counts`` — a mapping from
big-endian bitstrings to shot counts — while metrics operate on normalized
distributions. This module holds the conversions and small manipulations
(marginals, merging, top outcomes) shared by the device executor,
experiments, and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError

__all__ = [
    "Counts",
    "Distribution",
    "counts_to_distribution",
    "sample_distribution",
    "merge_counts",
    "marginal_distribution",
    "most_probable",
    "total_shots",
    "uniform_distribution",
]

Counts = Dict[str, int]
Distribution = Dict[str, float]


def total_shots(counts: Mapping[str, int]) -> int:
    return int(sum(counts.values()))


def counts_to_distribution(counts: Mapping[str, int]) -> Distribution:
    """Normalize counts to a probability distribution."""
    total = total_shots(counts)
    if total <= 0:
        raise SimulationError("cannot normalize empty counts")
    return {key: value / total for key, value in counts.items()}


def sample_distribution(
    distribution: Mapping[str, float], shots: int, rng: np.random.Generator
) -> Counts:
    """Draw *shots* samples from a distribution, returning counts."""
    if shots <= 0:
        raise SimulationError("shots must be positive")
    keys = sorted(distribution)
    probs = np.array([max(0.0, distribution[k]) for k in keys], dtype=float)
    norm = probs.sum()
    if norm <= 0:
        raise SimulationError("distribution has no probability mass")
    probs /= norm
    counts: Counts = {}
    for outcome in rng.choice(len(keys), size=shots, p=probs):
        key = keys[int(outcome)]
        counts[key] = counts.get(key, 0) + 1
    return counts


def merge_counts(*many: Mapping[str, int]) -> Counts:
    """Sum several counts dictionaries."""
    merged: Counts = {}
    for counts in many:
        for key, value in counts.items():
            merged[key] = merged.get(key, 0) + int(value)
    return merged


def marginal_distribution(
    distribution: Mapping[str, float], positions: Sequence[int]
) -> Distribution:
    """Marginalize a distribution onto the given bit positions (in order)."""
    result: Distribution = {}
    for key, prob in distribution.items():
        reduced = "".join(key[p] for p in positions)
        result[reduced] = result.get(reduced, 0.0) + prob
    return result


def most_probable(
    distribution: Mapping[str, float], top: int = 1
) -> List[Tuple[str, float]]:
    """The *top* most likely outcomes, ties broken lexicographically."""
    ranked = sorted(distribution.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


def uniform_distribution(width: int) -> Distribution:
    """The uniform distribution over all bitstrings of the given width."""
    if width < 1:
        raise SimulationError("width must be positive")
    prob = 1.0 / (2**width)
    return {format(i, f"0{width}b"): prob for i in range(2**width)}
