"""Kraus-operator quantum channels.

These are the noise primitives the simulated device composes per gate:
depolarizing (incoherent scrambling), amplitude damping (T1 energy
relaxation), phase damping (pure T2 dephasing), coherent error (a unitary
channel — the *state-dependent* component central to the paper's
argument), and classical readout bit-flip confusion.

Every channel is a :class:`KrausChannel` — a list of Kraus operators
satisfying the completeness relation ``sum_i K_i^dag K_i = I`` — so the
density-matrix simulator can treat them uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..linalg import kron_n

__all__ = [
    "KrausChannel",
    "Superoperator",
    "identity_channel",
    "unitary_channel",
    "depolarizing_channel",
    "two_qubit_depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "compose_channels",
    "ReadoutError",
]

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class KrausChannel:
    """A completely-positive trace-preserving map in Kraus form.

    Attributes:
        operators: The Kraus operators, each ``d x d``.
        label: Human-readable description used in noise-model reports.
    """

    operators: Tuple[np.ndarray, ...]
    label: str = "channel"

    def __post_init__(self) -> None:
        if not self.operators:
            raise SimulationError("channel needs at least one Kraus operator")
        dim = self.operators[0].shape[0]
        for op in self.operators:
            if op.shape != (dim, dim):
                raise SimulationError("Kraus operators must share a shape")

    @property
    def dim(self) -> int:
        return self.operators[0].shape[0]

    @property
    def num_qubits(self) -> int:
        return int(math.log2(self.dim))

    def is_trace_preserving(self, atol: float = 1e-8) -> bool:
        total = sum(op.conj().T @ op for op in self.operators)
        return bool(np.allclose(total, np.eye(self.dim), atol=atol))

    def apply_to(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix of matching dimension."""
        return sum(op @ rho @ op.conj().T for op in self.operators)

    def compose_unitary_before(self, unitary: np.ndarray) -> "KrausChannel":
        """The channel that first applies *unitary*, then this channel."""
        return KrausChannel(
            tuple(op @ unitary for op in self.operators),
            label=f"{self.label}∘U",
        )


@dataclass(frozen=True)
class Superoperator:
    """A channel as a dense linear map on vectorized density matrices.

    ``rho' = K rho K^dag`` summed over Kraus operators is linear in
    ``rho``; flattening ``rho`` row-major turns the channel into one
    ``d^2 x d^2`` matrix ``S = sum_i K_i (x) conj(K_i)``. Applying ``S``
    costs a single tensor contraction regardless of how many Kraus
    operators the channel has — this is the representation the device's
    channel cache stores for its fused per-gate fast path. Sequential
    channels compose by matrix product, so a gate's ideal unitary and
    its whole noise tail collapse into one operator.

    Attributes:
        matrix: The ``4^k x 4^k`` superoperator for a *k*-qubit map.
        label: Human-readable provenance for reports.
    """

    matrix: np.ndarray
    label: str = "superop"

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``d`` (the matrix is ``d^2 x d^2``)."""
        return int(round(math.sqrt(self.matrix.shape[0])))

    @property
    def num_qubits(self) -> int:
        return int(math.log2(self.dim))

    @classmethod
    def from_kraus(cls, channel: KrausChannel) -> "Superoperator":
        matrix = sum(
            np.kron(op, op.conj()) for op in channel.operators
        )
        return cls(np.asarray(matrix, dtype=complex), channel.label)

    @classmethod
    def from_unitary(
        cls, unitary: np.ndarray, label: str = "unitary"
    ) -> "Superoperator":
        unitary = np.asarray(unitary, dtype=complex)
        return cls(np.kron(unitary, unitary.conj()), label)

    def then(self, later: "Superoperator") -> "Superoperator":
        """The map applying this superoperator first, then *later*."""
        if later.matrix.shape != self.matrix.shape:
            raise SimulationError(
                "cannot compose superoperators of different dimensions"
            )
        return Superoperator(
            later.matrix @ self.matrix, f"{later.label}∘{self.label}"
        )

    def embed(self, position: int, num_qubits: int) -> "Superoperator":
        """Embed a 1-qubit map into a *num_qubits* register at *position*.

        The register superoperator indexes rows by ``(ket_out, bra_out)``
        and columns by ``(ket_in, bra_in)``, each half big-endian over
        the qubits. Tensor the per-qubit maps (identity elsewhere) and
        reorder the axes into that convention.
        """
        if self.num_qubits != 1:
            raise SimulationError("embed expects a single-qubit map")
        eye = np.eye(2, dtype=complex)
        # Per-qubit map with axes (ket_out, bra_out, ket_in, bra_in).
        identity_map = np.einsum("ac,bd->abcd", eye, eye)
        small = self.matrix.reshape(2, 2, 2, 2)
        total = None
        for index in range(num_qubits):
            block = small if index == position else identity_map
            total = block if total is None else np.tensordot(
                total, block, axes=0
            )
        # Axes are grouped per qubit (ko_q, bo_q, ki_q, bi_q); reorder to
        # (ko_0..ko_n, bo_0..bo_n, ki_0..ki_n, bi_0..bi_n).
        perm = [
            4 * q + part
            for part in range(4)
            for q in range(num_qubits)
        ]
        dim = 2**num_qubits
        matrix = np.transpose(total, perm).reshape(dim * dim, dim * dim)
        return Superoperator(matrix, f"{self.label}@q{position}")


def identity_channel(num_qubits: int = 1) -> KrausChannel:
    """The do-nothing channel on *num_qubits* qubits."""
    return KrausChannel((np.eye(2**num_qubits, dtype=complex),), "identity")


def unitary_channel(unitary: np.ndarray, label: str = "unitary") -> KrausChannel:
    """A purely coherent channel — the state-dependent error carrier."""
    return KrausChannel((np.asarray(unitary, dtype=complex),), label)


def depolarizing_channel(probability: float) -> KrausChannel:
    """Single-qubit depolarizing channel with error probability *p*.

    With probability *p* the state is replaced by one of X, Y, Z applied
    uniformly (the standard Pauli-twirl convention): Kraus weights
    ``sqrt(1 - p)`` on I and ``sqrt(p/3)`` on each Pauli.
    """
    _check_probability(probability)
    ops = [math.sqrt(1.0 - probability) * _PAULIS["I"]]
    ops.extend(
        math.sqrt(probability / 3.0) * _PAULIS[p] for p in ("X", "Y", "Z")
    )
    return KrausChannel(tuple(ops), f"depolarizing(p={probability:.4g})")


def two_qubit_depolarizing_channel(probability: float) -> KrausChannel:
    """Two-qubit depolarizing channel over the 15 non-identity Paulis."""
    _check_probability(probability)
    ops: List[np.ndarray] = [
        math.sqrt(1.0 - probability) * np.eye(4, dtype=complex)
    ]
    weight = math.sqrt(probability / 15.0)
    for name_a in "IXYZ":
        for name_b in "IXYZ":
            if name_a == name_b == "I":
                continue
            ops.append(weight * kron_n(_PAULIS[name_a], _PAULIS[name_b]))
    return KrausChannel(tuple(ops), f"depolarizing2(p={probability:.4g})")


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """T1 relaxation: |1> decays to |0> with probability *gamma*."""
    _check_probability(gamma)
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return KrausChannel((k0, k1), f"amplitude_damping(g={gamma:.4g})")


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing: off-diagonals shrink by ``sqrt(1 - lambda)``."""
    _check_probability(lam)
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel((k0, k1), f"phase_damping(l={lam:.4g})")


def thermal_relaxation_channel(
    duration: float, t1: float, t2: float
) -> KrausChannel:
    """Combined T1/T2 decay over a pulse of the given *duration*.

    Implemented as amplitude damping with ``gamma = 1 - exp(-t/T1)``
    composed with pure dephasing chosen so the total off-diagonal decay
    matches ``exp(-t/T2)`` (requires the physical constraint
    ``T2 <= 2 T1``).
    """
    if duration < 0:
        raise SimulationError("duration must be non-negative")
    if t1 <= 0 or t2 <= 0:
        raise SimulationError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise SimulationError("unphysical relaxation: T2 > 2*T1")
    gamma = 1.0 - math.exp(-duration / t1)
    total_coherence = math.exp(-duration / t2)
    # amplitude damping alone decays coherence by sqrt(1-gamma); the
    # residual dephasing must supply the rest.
    residual = total_coherence / math.sqrt(1.0 - gamma) if gamma < 1 else 0.0
    residual = min(1.0, max(0.0, residual))
    lam = 1.0 - residual**2
    channel = compose_channels(
        amplitude_damping_channel(gamma), phase_damping_channel(lam)
    )
    return KrausChannel(
        channel.operators,
        f"thermal(t={duration:.3g},T1={t1:.3g},T2={t2:.3g})",
    )


def compose_channels(first: KrausChannel, second: KrausChannel) -> KrausChannel:
    """The channel applying *first* then *second* (both same dimension)."""
    if first.dim != second.dim:
        raise SimulationError("cannot compose channels of different dims")
    ops = tuple(
        b @ a for a in first.operators for b in second.operators
    )
    return KrausChannel(ops, f"{second.label}∘{first.label}")


@dataclass(frozen=True)
class ReadoutError:
    """Classical measurement confusion for one qubit.

    Attributes:
        p0_given_1: Probability of reading 0 when the qubit was 1 (T1-like
            decay during readout dominates, so typically larger).
        p1_given_0: Probability of reading 1 when the qubit was 0.
    """

    p0_given_1: float
    p1_given_0: float

    def __post_init__(self) -> None:
        _check_probability(self.p0_given_1)
        _check_probability(self.p1_given_0)

    @property
    def assignment_fidelity(self) -> float:
        """Average probability of a correct readout, ``1 - (e01+e10)/2``."""
        return 1.0 - 0.5 * (self.p0_given_1 + self.p1_given_0)

    def confusion_matrix(self) -> np.ndarray:
        """Column-stochastic matrix ``M[observed, actual]``."""
        return np.array(
            [
                [1.0 - self.p1_given_0, self.p0_given_1],
                [self.p1_given_0, 1.0 - self.p0_given_1],
            ]
        )

    def flip(self, bit: int, rng: np.random.Generator) -> int:
        """Sample the observed value for an actual *bit*."""
        if bit:
            return 0 if rng.random() < self.p0_given_1 else 1
        return 1 if rng.random() < self.p1_given_0 else 0


def _check_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise SimulationError(f"probability {value} outside [0, 1]")
