"""Batched multi-candidate density-matrix evolution.

ANGEL's localized search evaluates ``1 + 2L`` CopyCat candidates per
pass, and the candidates of one link batch differ from each other only
at that link's sites: everything *before* the replaced link is a shared
prefix and everything *after* it is a shared suffix. The prefix is
already deduplicated by :class:`~repro.sim.sim_cache.PrefixStateCache`
snapshots; the suffix was still contracted once per candidate. This
module removes that redundancy by stacking the candidates' states on a
leading *candidate axis* and contracting each shared-suffix
superoperator against all of them in a single ``tensordot``.

Two pieces:

* :class:`BatchedDensityMatrix` — K mixed states as one rank-``2n+1``
  tensor ``(K, 2, ..., 2)``. Its ``_apply_left`` is the candidate-axis
  extension of :meth:`DensityMatrix._apply_left`: the same contraction
  with every state axis shifted by one. ``tensordot`` lowers both forms
  to the same per-column GEMM, so each candidate's slice is
  bit-identical to the unbatched application (pinned by
  ``tests/test_batched_sim.py``).
* :func:`plan_batches` — given a batch of lowered streams, decide which
  candidates to stack. Streams are sorted so that suffix-sharing
  candidates become neighbours, then a dynamic program partitions the
  order into clusters minimizing estimated contraction cost: a cluster
  pays its common prefix once, each member's middle individually, and
  its common suffix once at a small per-extra-candidate increment.

The split of one cluster into (shared prefix stream, per-candidate
middle ops, shared suffix stream) is computed directly on
:class:`~repro.sim.circuit_compiler.LoweredCircuit` streams: prefix
equality via the rolling ``prefix_hashes`` chain, suffix equality via
``(fingerprint, qubits)`` of the fused operators from the end — within
one placement and drift epoch, equal fingerprints denote equal
superoperators by the compiler's content-addressing contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from .channels import Superoperator
from .circuit_compiler import LoweredCircuit, LoweredOp

__all__ = ["BatchedDensityMatrix", "BatchPlan", "plan_batches"]

#: Estimated marginal cost of one extra stacked candidate in a batched
#: contraction, as a fraction of a standalone contraction. Contractions
#: on probe-sized states are numpy-overhead-dominated, so stacking K
#: candidates costs nowhere near K individual applications.
_EXTRA_CANDIDATE_COST = 0.35
#: Don't bother stacking for suffixes shorter than this.
_MIN_SHARED_SUFFIX = 2
#: Widest register for which stacking pays. Contractions on states up
#: to this many qubits are numpy-overhead-dominated, where a stacked
#: tensordot costs ~0.35 per extra candidate; from ~7 qubits up
#: (>= 2 MB per state) they are memory-bandwidth-bound, a stacked
#: contraction moves K times the data of a single one, and stacking
#: measures as a slight net loss — so wider runs stay sequential
#: (the planner's never-regress guarantee).
_MAX_STACK_QUBITS = 6


class BatchedDensityMatrix:
    """K mixed states stacked on a leading candidate axis.

    The tensor has shape ``(K,) + (2,) * (2 * num_qubits)``; slice ``k``
    is exactly the rank-``2n`` state tensor of candidate ``k`` as
    :class:`~repro.sim.density_matrix.DensityMatrix` holds it.
    """

    def __init__(self, num_qubits: int, tensors: Sequence[np.ndarray]) -> None:
        if not tensors:
            raise SimulationError("batched state needs at least one candidate")
        expected = (2,) * (2 * num_qubits)
        for tensor in tensors:
            if tensor.shape != expected:
                raise SimulationError(
                    f"candidate tensor shape {tensor.shape} does not match "
                    f"{num_qubits}-qubit state"
                )
        self.num_qubits = num_qubits
        self._tensor = np.stack(
            [np.asarray(t, dtype=complex) for t in tensors]
        )

    @property
    def count(self) -> int:
        return int(self._tensor.shape[0])

    def tensor(self, candidate: int) -> np.ndarray:
        """Candidate *candidate*'s state tensor (a copy, cache-safe)."""
        return self._tensor[candidate].copy()

    def _apply_left(self, matrix: np.ndarray, axes: Tuple[int, ...]) -> None:
        """Contract *matrix* against the given *state* axes of every
        candidate at once (axes are in unbatched 0-based convention)."""
        k = len(axes)
        op = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
        shifted = [a + 1 for a in axes]
        contracted = np.tensordot(
            op, self._tensor, axes=(list(range(k, 2 * k)), shifted)
        )
        # Restore axis order; the candidate axis rides along in "others"
        # exactly like any untouched state axis.
        total_axes = 1 + 2 * self.num_qubits
        others = [a for a in range(total_axes) if a not in shifted]
        current = np.array(shifted + others)
        self._tensor = np.transpose(contracted, np.argsort(current))

    def apply_superoperator(
        self, superop: Superoperator, qubits: Tuple[int, ...]
    ) -> None:
        """Apply one vectorized channel to all candidates in one
        contraction (same axis convention as the unbatched state)."""
        if superop.num_qubits != len(qubits):
            raise SimulationError(
                f"superoperator acts on {superop.num_qubits} qubits, "
                f"given {len(qubits)}"
            )
        axes = tuple(qubits) + tuple(q + self.num_qubits for q in qubits)
        self._apply_left(superop.matrix, axes)


@dataclass(frozen=True)
class BatchPlan:
    """One cluster of candidates to evolve together.

    Attributes:
        indices: Positions (into the planner's input list) of the
            cluster's members, in input order.
        prefix_len: Fused operators shared by every member from the
            start — contracted once on a plain state.
        suffix_len: Fused operators shared by every member at the end —
            contracted once on the stacked state.
    """

    indices: Tuple[int, ...]
    prefix_len: int
    suffix_len: int


def _op_key(op: LoweredOp) -> Tuple:
    return (op.qubits, op.fingerprint)


def _common_prefix_len(members: Sequence[LoweredCircuit]) -> int:
    """Shared-prefix length via the rolling hash chain (equal hashes at
    position i imply equal operator streams through i)."""
    length = min(len(m.operations) for m in members)
    base = members[0].prefix_hashes
    for index in range(length):
        key = base[index]
        if any(m.prefix_hashes[index] != key for m in members[1:]):
            return index
    return length


def _common_suffix_len(
    members: Sequence[LoweredCircuit], limit: int
) -> int:
    """Shared-suffix length by operator content, capped at *limit*."""
    length = min(len(m.operations) for m in members)
    depth = 0
    base_ops = members[0].operations
    while depth < min(length, limit):
        key = _op_key(base_ops[len(base_ops) - 1 - depth])
        if any(
            _op_key(m.operations[len(m.operations) - 1 - depth]) != key
            for m in members[1:]
        ):
            break
        depth += 1
    return depth


def _cluster_geometry(
    members: Sequence[LoweredCircuit],
) -> Tuple[int, int]:
    """(prefix_len, suffix_len) for a candidate cluster, non-overlapping."""
    prefix = _common_prefix_len(members)
    shortest = min(len(m.operations) for m in members)
    suffix = _common_suffix_len(members, shortest - prefix)
    return prefix, suffix


def _cluster_cost(members: Sequence[LoweredCircuit]) -> float:
    """Estimated contraction cost of evolving *members* as one cluster."""
    prefix, suffix = _cluster_geometry(members)
    middles = sum(
        len(m.operations) - prefix - suffix for m in members
    )
    extra = _EXTRA_CANDIDATE_COST * (len(members) - 1)
    return prefix + middles + suffix * (1.0 + extra)


def plan_batches(lowered: Sequence[LoweredCircuit]) -> List[BatchPlan]:
    """Partition a batch of lowered streams into evolution clusters.

    Streams are ordered by their *reversed* operator content so that
    candidates sharing a long suffix become neighbours (the candidates
    of one link batch, which differ only at the replaced link's sites,
    sort adjacent). A dynamic program then chooses cluster boundaries
    along that order to minimize total estimated contraction cost —
    clusters whose shared suffix is too short to pay for stacking stay
    singletons, so the plan never regresses below one-at-a-time cost.
    """
    if not lowered:
        return []
    order = sorted(
        range(len(lowered)),
        key=lambda i: (
            lowered[i].num_qubits,
            tuple(
                repr(_op_key(op))
                for op in reversed(lowered[i].operations)
            ),
        ),
    )
    plans: List[BatchPlan] = []
    # Group maximal runs of equal register width; clusters never mix widths.
    start = 0
    while start < len(order):
        end = start
        width = lowered[order[start]].num_qubits
        while end < len(order) and lowered[order[end]].num_qubits == width:
            end += 1
        if width > _MAX_STACK_QUBITS:
            # Bandwidth-bound regime: stacking cannot win, keep the run
            # sequential (prefix snapshots still dedup shared work).
            plans.extend(
                BatchPlan(indices=(i,), prefix_len=0, suffix_len=0)
                for i in sorted(order[start:end])
            )
        else:
            plans.extend(_plan_run(lowered, order[start:end]))
        start = end
    return plans


def _plan_run(
    lowered: Sequence[LoweredCircuit], order: Sequence[int]
) -> List[BatchPlan]:
    """Optimal consecutive partition of one equal-width run (DP)."""
    count = len(order)
    best = [0.0] * (count + 1)
    cut = [0] * (count + 1)
    for end in range(1, count + 1):
        best[end] = float("inf")
        for begin in range(end - 1, -1, -1):
            members = [lowered[i] for i in order[begin:end]]
            if len(members) > 1:
                _, suffix = _cluster_geometry(members)
                if suffix < _MIN_SHARED_SUFFIX:
                    # The shared suffix only shrinks as the window
                    # widens, so no earlier begin is viable either.
                    break
            cost = best[begin] + _cluster_cost(members)
            if cost < best[end]:
                best[end] = cost
                cut[end] = begin
    plans: List[BatchPlan] = []
    end = count
    while end > 0:
        begin = cut[end]
        members = [lowered[i] for i in order[begin:end]]
        prefix, suffix = _cluster_geometry(members)
        plans.append(
            BatchPlan(
                indices=tuple(sorted(order[begin:end])),
                prefix_len=prefix,
                suffix_len=suffix if len(members) > 1 else 0,
            )
        )
        end = begin
    plans.reverse()
    return plans
