"""Circuit lowering and layer fusion for the simulation cache hierarchy.

The density-matrix simulator pays ``O(4^n)`` per operator contraction no
matter how small the operator is, so the *number* of contractions — not
their individual size — is what a probe workload buys with its wall
time. This module flattens a circuit through the device's
``operation_compiler`` hook into a stream of fused superoperators and
then performs **layer fusion**: runs of consecutive operators acting on
the same qubit set collapse into one superoperator, and single-qubit
tails (the RZ/RX sandwiches nativization wraps around every entangling
pulse) are embedded into their neighbouring two-qubit superoperator.
The contraction count drops before any state work happens.

Every lowered operator carries a content *fingerprint* — the
``(name, qubits, params)`` identity of the instructions it was fused
from — and the stream carries a chain of rolling prefix hashes over
those fingerprints. Two circuits that share an instruction prefix (the
``2L`` mass-replacement probe candidates of a localized search differ
from the baseline only at one link's sites) produce identical lowered
prefixes and identical hash chains, which is what lets
:class:`~repro.sim.sim_cache.PrefixStateCache` replay the shared prefix
once. Fingerprints deliberately exclude the circuit *name*: probe
candidates are content-addressed, not label-addressed.

Fusion is exact up to floating-point association: the fused
superoperator is the matrix product of its parts, so distributions
agree with the unfused stream to ~1e-15 (pinned by
``tests/test_sim_cache.py``); shot counts agree exactly in practice
because sampling boundaries are never within that slack.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from .channels import KrausChannel, Superoperator

__all__ = [
    "LoweredOp",
    "LoweredCircuit",
    "CircuitCompiler",
    "circuit_fingerprint",
    "instruction_hash_chain",
]

_HASH_BYTES = 16


def circuit_fingerprint(circuit: QuantumCircuit) -> Tuple:
    """Hashable content identity of a circuit (its name excluded).

    Includes every instruction — measures and barriers too, so the
    measured-register definition is part of the identity — but not the
    circuit's label, so renamed probe copies share cache entries.
    """
    return (
        circuit.num_qubits,
        tuple((g.name, g.qubits, g.params) for g in circuit),
    )


def instruction_hash_chain(
    circuit: QuantumCircuit, hash_seed: Tuple = ()
) -> Tuple[bytes, ...]:
    """Rolling content hash after each *instruction* (no lowering).

    The scheduling-side sibling of :class:`CircuitCompiler`'s lowered
    prefix chain: the same fingerprint discipline — content atoms
    ``(name, qubits, params)``, circuit label excluded, ``blake2b`` so
    keys are stable across processes — but computed straight off the
    instruction stream, with no device hooks and no matrix work. Two
    circuits share a chain prefix exactly when they share an instruction
    prefix, which is what the worker pool's prefix-affinity scheduler
    groups on: candidates that would hit the same
    :class:`~repro.sim.sim_cache.PrefixStateCache` snapshots land on the
    same worker.
    """
    digest = hashlib.blake2b(
        repr(("instructions", circuit.num_qubits, tuple(hash_seed))).encode(),
        digest_size=_HASH_BYTES,
    ).digest()
    chain: List[bytes] = []
    for gate in circuit:
        hasher = hashlib.blake2b(digest, digest_size=_HASH_BYTES)
        hasher.update(repr((gate.name, gate.qubits, gate.params)).encode())
        digest = hasher.digest()
        chain.append(digest)
    return tuple(chain)


@dataclass(frozen=True)
class LoweredOp:
    """One fused contraction: a superoperator on a fixed qubit tuple.

    Attributes:
        superop: The channel to contract against the state.
        qubits: Local (compact-register) qubits it acts on, in the
            superoperator's qubit order.
        fingerprint: Tuple of the ``(name, qubits, params, part)`` atoms
            this operator was fused from, in application order — the
            content identity the prefix hash chain is built over.
    """

    superop: Superoperator
    qubits: Tuple[int, ...]
    fingerprint: Tuple


@dataclass(frozen=True)
class LoweredCircuit:
    """A circuit lowered to fused superoperators plus its hash chain.

    Attributes:
        num_qubits: Compact register width.
        operations: The fused contraction stream, in order.
        prefix_hashes: ``prefix_hashes[i]`` identifies the state after
            applying ``operations[0..i]`` — the key a prefix snapshot of
            that state is stored under.
        raw_op_count: Contractions the unfused stream would have cost
            (for fusion-efficiency reporting).
    """

    num_qubits: int
    operations: Tuple[LoweredOp, ...]
    prefix_hashes: Tuple[bytes, ...]
    raw_op_count: int


class CircuitCompiler:
    """Lower circuits into fingerprinted, layer-fused operator streams.

    Args:
        operation_compiler: The per-instruction hook the device already
            uses for its fused per-gate fast path (see
            :class:`~repro.sim.density_matrix.DensityMatrixSimulator`).
            For an instruction it may return a sequence of
            ``(operator, qubits)`` pairs or ``None`` to fall back.
        noise_callback: Fallback noise hook for instructions the
            operation compiler declines; channels it returns are
            vectorized into superoperators.
        fuse: Enable layer fusion (on by default; off lowers one
            operator per instruction part, for A/B testing).
        hash_seed: Extra context mixed into the prefix hash chain —
            the device passes the physical qubit placement here so
            identical compact circuits on different physical qubits
            never share prefix keys.
        product_cache: Optional mutable mapping memoizing fused
            superoperator products across lowerings. Probe variants
            share most of their instruction stream, so the same
            ``embed``/``then`` matrix products recur in every lowering;
            keys embed ``hash_seed`` (the placement) because equal
            compact atoms under different physical qubits carry
            different noise. The owner must flush it on drift.
    """

    def __init__(
        self,
        operation_compiler: Optional[Callable] = None,
        noise_callback: Optional[Callable] = None,
        fuse: bool = True,
        hash_seed: Tuple = (),
        product_cache: Optional[dict] = None,
    ) -> None:
        self.operation_compiler = operation_compiler
        self.noise_callback = noise_callback
        self.fuse = fuse
        self.hash_seed = tuple(hash_seed)
        self.product_cache = product_cache

    # ------------------------------------------------------------------
    def lower(self, circuit: QuantumCircuit) -> LoweredCircuit:
        """Flatten *circuit* into a fused, fingerprinted operator stream."""
        raw = self._raw_stream(circuit)
        operations = self._fused(raw) if self.fuse else raw
        hashes = self._hash_chain(circuit.num_qubits, operations)
        return LoweredCircuit(
            num_qubits=circuit.num_qubits,
            operations=tuple(operations),
            prefix_hashes=hashes,
            raw_op_count=len(raw),
        )

    # ------------------------------------------------------------------
    def _raw_stream(self, circuit: QuantumCircuit) -> List[LoweredOp]:
        """One LoweredOp per (operator, qubits) pair, pre-fusion."""
        stream: List[LoweredOp] = []
        for gate in circuit:
            if not gate.is_unitary:
                continue  # barriers/measures do not evolve the state
            atom = (gate.name, gate.qubits, gate.params)
            compiled = (
                self.operation_compiler(gate)
                if self.operation_compiler is not None
                else None
            )
            if compiled is not None:
                for part, (operator, qubits) in enumerate(compiled):
                    stream.append(
                        LoweredOp(
                            _as_superoperator(operator),
                            tuple(qubits),
                            (atom + (part,),),
                        )
                    )
                continue
            stream.append(
                LoweredOp(
                    Superoperator.from_unitary(gate.matrix(), gate.name),
                    gate.qubits,
                    (atom + ("ideal",),),
                )
            )
            if self.noise_callback is not None:
                for part, (channel, qubits) in enumerate(
                    self.noise_callback(gate)
                ):
                    stream.append(
                        LoweredOp(
                            _as_superoperator(channel),
                            tuple(qubits),
                            (atom + ("noise", part),),
                        )
                    )
        return stream

    def _fused(self, stream: List[LoweredOp]) -> List[LoweredOp]:
        """Greedy left-to-right layer fusion over the raw stream."""
        fused: List[LoweredOp] = []
        for op in stream:
            if fused:
                merged = self._try_fuse(fused[-1], op)
                if merged is not None:
                    fused[-1] = merged
                    continue
            fused.append(op)
        return fused

    def _try_fuse(
        self, pending: LoweredOp, nxt: LoweredOp
    ) -> Optional[LoweredOp]:
        """Memoizing wrapper around :func:`_try_fuse`.

        The fused product is a pure function of the two operands'
        fingerprints (plus placement, carried in ``hash_seed``), so when
        a product cache is attached the matrix work happens once per
        distinct fusion within an epoch.
        """
        if self.product_cache is None:
            return _try_fuse(pending, nxt)
        key = (
            self.hash_seed,
            pending.qubits,
            pending.fingerprint,
            nxt.qubits,
            nxt.fingerprint,
        )
        try:
            merged = self.product_cache[key]
        except KeyError:
            merged = _try_fuse(pending, nxt)
            self.product_cache[key] = merged
        return merged

    def _hash_chain(
        self, num_qubits: int, operations: List[LoweredOp]
    ) -> Tuple[bytes, ...]:
        """Rolling content hash after each fused operator.

        ``blake2b`` (not Python's salted ``hash``) keeps keys stable
        across processes, so pool workers and the parent share prefixes.
        """
        digest = hashlib.blake2b(
            repr(("lowered", num_qubits, self.hash_seed)).encode(),
            digest_size=_HASH_BYTES,
        ).digest()
        chain: List[bytes] = []
        for op in operations:
            hasher = hashlib.blake2b(digest, digest_size=_HASH_BYTES)
            hasher.update(repr(op.fingerprint).encode())
            digest = hasher.digest()
            chain.append(digest)
        return tuple(chain)


def _as_superoperator(operator: object) -> Superoperator:
    """Vectorize whatever the compiler/noise hooks hand back."""
    if isinstance(operator, Superoperator):
        return operator
    if isinstance(operator, KrausChannel):
        return Superoperator.from_kraus(operator)
    return Superoperator.from_unitary(np.asarray(operator, dtype=complex))


def _try_fuse(pending: LoweredOp, nxt: LoweredOp) -> Optional[LoweredOp]:
    """Fuse *nxt* onto *pending* when their qubit supports allow it.

    Rules (``pending`` is applied first):

    * identical qubit tuples — compose directly;
    * a single-qubit op adjacent to a two-qubit op whose pair contains
      its qubit — embed the 1q map into the 2q space, then compose.

    Anything else (disjoint or order-swapped supports) keeps its own
    contraction: correctness over aggressiveness.
    """
    if nxt.qubits == pending.qubits:
        superop = pending.superop.then(nxt.superop)
        qubits = pending.qubits
    elif (
        len(nxt.qubits) == 1
        and len(pending.qubits) == 2
        and nxt.qubits[0] in pending.qubits
    ):
        position = pending.qubits.index(nxt.qubits[0])
        superop = pending.superop.then(nxt.superop.embed(position, 2))
        qubits = pending.qubits
    elif (
        len(pending.qubits) == 1
        and len(nxt.qubits) == 2
        and pending.qubits[0] in nxt.qubits
    ):
        position = nxt.qubits.index(pending.qubits[0])
        superop = pending.superop.embed(position, 2).then(nxt.superop)
        qubits = nxt.qubits
    else:
        return None
    return LoweredOp(superop, qubits, pending.fingerprint + nxt.fingerprint)
