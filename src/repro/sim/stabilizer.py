"""CHP stabilizer simulator (Aaronson–Gottesman tableau).

CopyCats are (nearly) Clifford circuits precisely so their ideal output is
classically computable (paper section IV-C). This module supplies that
capability with the standard ``O(n^2)``-per-gate tableau algorithm, so
pure-Clifford CopyCats scale to hundreds of qubits — far beyond the
state-vector simulator — which substantiates the paper's tractability
claim rather than merely asserting it.

The tableau holds ``2n`` rows (n destabilizers, n stabilizers) of X/Z bit
pairs plus a sign bit each. Gates update rows in vectorized numpy; only
measurement does per-row work.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..exceptions import SimulationError

__all__ = ["StabilizerTableau", "StabilizerSimulator"]

_HALF_PI = math.pi / 2.0


class StabilizerTableau:
    """The CHP tableau for *num_qubits* qubits, initialized to |0...0>."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise SimulationError("need at least one qubit")
        self.num_qubits = num_qubits
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)
        # Destabilizers X_i, stabilizers Z_i.
        for i in range(n):
            self.x[i, i] = True
            self.z[n + i, i] = True

    def copy(self) -> "StabilizerTableau":
        clone = StabilizerTableau.__new__(StabilizerTableau)
        clone.num_qubits = self.num_qubits
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone

    # ------------------------------------------------------------------
    # Clifford gates (vectorized across all tableau rows)
    # ------------------------------------------------------------------
    def apply_h(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] & self.z[:, qubit]
        self.x[:, qubit], self.z[:, qubit] = (
            self.z[:, qubit].copy(),
            self.x[:, qubit].copy(),
        )

    def apply_s(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] & self.z[:, qubit]
        self.z[:, qubit] ^= self.x[:, qubit]

    def apply_sdg(self, qubit: int) -> None:
        # S^dag = S . Z ; apply Z first then S keeps signs consistent.
        self.apply_z(qubit)
        self.apply_s(qubit)

    def apply_x(self, qubit: int) -> None:
        self.r ^= self.z[:, qubit]

    def apply_z(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit]

    def apply_y(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] ^ self.z[:, qubit]

    def apply_cnot(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & ~(self.x[:, target] ^ self.z[:, control])
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def apply_cz(self, qubit_a: int, qubit_b: int) -> None:
        self.apply_h(qubit_b)
        self.apply_cnot(qubit_a, qubit_b)
        self.apply_h(qubit_b)

    def apply_swap(self, qubit_a: int, qubit_b: int) -> None:
        self.apply_cnot(qubit_a, qubit_b)
        self.apply_cnot(qubit_b, qubit_a)
        self.apply_cnot(qubit_a, qubit_b)

    def apply_iswap(self, qubit_a: int, qubit_b: int) -> None:
        # iSWAP = SWAP . CZ . (S x S)
        self.apply_s(qubit_a)
        self.apply_s(qubit_b)
        self.apply_cz(qubit_a, qubit_b)
        self.apply_swap(qubit_a, qubit_b)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _rowsum(self, h: int, i: int) -> None:
        """Row *h* <- row *h* * row *i* with correct sign accounting."""
        phase = 2 * (int(self.r[h]) + int(self.r[i]))
        phase += int(
            np.sum(
                _g(
                    self.x[i].astype(np.int8),
                    self.z[i].astype(np.int8),
                    self.x[h].astype(np.int8),
                    self.z[h].astype(np.int8),
                )
            )
        )
        self.r[h] = (phase % 4) == 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def measurement_is_random(self, qubit: int) -> bool:
        """True if measuring *qubit* gives a uniformly random outcome."""
        n = self.num_qubits
        return bool(self.x[n:, qubit].any())

    def measure(
        self, qubit: int, rng: Optional[np.random.Generator] = None,
        forced_outcome: Optional[int] = None,
    ) -> int:
        """Measure *qubit* in the Z basis, collapsing the tableau.

        For a random outcome, *forced_outcome* (0/1) selects the branch if
        given, otherwise *rng* samples it. Deterministic outcomes ignore
        both.
        """
        n = self.num_qubits
        stab_rows = np.nonzero(self.x[n:, qubit])[0]
        if stab_rows.size:
            p = int(stab_rows[0]) + n
            for row in range(2 * n):
                if row != p and self.x[row, qubit]:
                    self._rowsum(row, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, qubit] = True
            if forced_outcome is not None:
                outcome = int(forced_outcome)
            elif rng is not None:
                outcome = int(rng.integers(2))
            else:
                raise SimulationError(
                    "random measurement needs rng or forced_outcome"
                )
            self.r[p] = bool(outcome)
            return outcome
        # Deterministic: accumulate into a scratch row.
        scratch_x = np.zeros(n, dtype=bool)
        scratch_z = np.zeros(n, dtype=bool)
        scratch_r = 0
        for i in range(n):
            if self.x[i, qubit]:
                phase = 2 * (scratch_r + int(self.r[i + n]))
                phase += int(
                    np.sum(
                        _g(
                            self.x[i + n].astype(np.int8),
                            self.z[i + n].astype(np.int8),
                            scratch_x.astype(np.int8),
                            scratch_z.astype(np.int8),
                        )
                    )
                )
                scratch_r = 1 if (phase % 4) == 2 else 0
                scratch_x ^= self.x[i + n]
                scratch_z ^= self.z[i + n]
        return scratch_r


def _g(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> np.ndarray:
    """Aaronson–Gottesman phase function g, vectorized over qubits."""
    # g = 0 when (x1,z1) == (0,0);
    # for (1,1): z2 - x2; for (1,0): z2*(2*x2-1); for (0,1): x2*(1-2*z2)
    result = np.zeros_like(x1, dtype=np.int64)
    case_y = (x1 == 1) & (z1 == 1)
    case_x = (x1 == 1) & (z1 == 0)
    case_z = (x1 == 0) & (z1 == 1)
    result[case_y] = (z2 - x2)[case_y]
    result[case_x] = (z2 * (2 * x2 - 1))[case_x]
    result[case_z] = (x2 * (1 - 2 * z2))[case_z]
    return result


_GATE_APPLIERS = {
    "id": lambda tab, q: None,
    "x": lambda tab, q: tab.apply_x(*q),
    "y": lambda tab, q: tab.apply_y(*q),
    "z": lambda tab, q: tab.apply_z(*q),
    "h": lambda tab, q: tab.apply_h(*q),
    "s": lambda tab, q: tab.apply_s(*q),
    "sdg": lambda tab, q: tab.apply_sdg(*q),
    "cnot": lambda tab, q: tab.apply_cnot(*q),
    "cz": lambda tab, q: tab.apply_cz(*q),
    "swap": lambda tab, q: tab.apply_swap(*q),
    "iswap": lambda tab, q: tab.apply_iswap(*q),
}


def _apply_parametric(tableau: StabilizerTableau, gate: Gate) -> None:
    """Map Clifford-angle parametric gates onto tableau primitives."""
    name = gate.name
    if name in ("rz", "phase"):
        theta = gate.params[0] if name == "rz" else gate.params[0]
        steps = _quarter_turns(theta)
        for _ in range(steps % 4):
            tableau.apply_s(gate.qubits[0])
        return
    if name == "rx":
        steps = _quarter_turns(gate.params[0])
        qubit = gate.qubits[0]
        # RX(pi/2) = H . S . H up to phase
        for _ in range(steps % 4):
            tableau.apply_h(qubit)
            tableau.apply_s(qubit)
            tableau.apply_h(qubit)
        return
    if name == "ry":
        steps = _quarter_turns(gate.params[0])
        qubit = gate.qubits[0]
        # RY(pi/2) = X . H up to global phase (verified numerically).
        for _ in range(steps % 4):
            tableau.apply_h(qubit)
            tableau.apply_x(qubit)
        return
    if name == "xy":
        if _quarter_turns(gate.params[0]) % 4 == 2:
            tableau.apply_iswap(gate.qubits[0], gate.qubits[1])
            return
        if _quarter_turns(gate.params[0]) % 4 == 0:
            return
        raise SimulationError(f"non-Clifford xy angle {gate.params[0]}")
    if name == "cphase":
        steps = _quarter_turns(gate.params[0])
        if steps % 2:
            raise SimulationError(
                f"non-Clifford cphase angle {gate.params[0]}"
            )
        if steps % 4 == 2:
            tableau.apply_cz(gate.qubits[0], gate.qubits[1])
        return
    if name == "u3":
        raise SimulationError(
            "u3 gates are not supported on the stabilizer backend; "
            "replace them with Cliffords first (CopyCat does this)"
        )
    raise SimulationError(f"gate {name!r} is not a stabilizer operation")


def _quarter_turns(theta: float, atol: float = 1e-9) -> int:
    ratio = theta / _HALF_PI
    steps = round(ratio)
    if abs(ratio - steps) > atol:
        raise SimulationError(f"angle {theta} is not a multiple of pi/2")
    return int(steps) % 4


class StabilizerSimulator:
    """Run Clifford circuits on the tableau backend."""

    #: Exact-distribution branching cap: a Clifford circuit's output
    #: distribution is uniform over at most 2^(random measurements)
    #: outcomes; beyond this we refuse rather than silently truncate.
    max_branches: int = 1 << 16

    def run(
        self, circuit: QuantumCircuit, rng: Optional[np.random.Generator] = None
    ) -> Tuple[StabilizerTableau, Dict[int, int]]:
        """Execute *circuit*; returns the final tableau and measurements.

        Mid-circuit measurements are sampled with *rng*. Returns a map of
        measured qubit -> outcome for the measurement instructions
        encountered (later measurements of a qubit overwrite earlier).
        """
        tableau = StabilizerTableau(circuit.num_qubits)
        outcomes: Dict[int, int] = {}
        for gate in circuit:
            if gate.is_barrier:
                continue
            if gate.is_measurement:
                outcomes[gate.qubits[0]] = tableau.measure(gate.qubits[0], rng)
                continue
            self._apply(tableau, gate)
        return tableau, outcomes

    @staticmethod
    def _apply(tableau: StabilizerTableau, gate: Gate) -> None:
        applier = _GATE_APPLIERS.get(gate.name)
        if applier is not None and not gate.params:
            applier(tableau, gate.qubits)
            return
        _apply_parametric(tableau, gate)

    def distribution(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Exact output distribution over the measured qubits.

        Clifford outputs are uniform over an affine subspace; we branch on
        each random measurement (both outcomes, equal weight) and collect
        leaves. Raises if the subspace exceeds :attr:`max_branches`.
        """
        measured = circuit.measured_qubits() or tuple(range(circuit.num_qubits))
        base = StabilizerTableau(circuit.num_qubits)
        for gate in circuit:
            if gate.is_barrier or gate.is_measurement:
                continue
            self._apply(base, gate)

        results: Dict[str, float] = {}
        stack: List[Tuple[StabilizerTableau, int, str, float]] = [
            (base, 0, "", 1.0)
        ]
        while stack:
            tableau, position, prefix, weight = stack.pop()
            if position == len(measured):
                results[prefix] = results.get(prefix, 0.0) + weight
                continue
            qubit = measured[position]
            if tableau.measurement_is_random(qubit):
                if len(stack) + len(results) > self.max_branches:
                    raise SimulationError(
                        "exact distribution support exceeds max_branches"
                    )
                for outcome in (0, 1):
                    branch = tableau.copy()
                    branch.measure(qubit, forced_outcome=outcome)
                    stack.append(
                        (branch, position + 1, prefix + str(outcome), weight / 2)
                    )
            else:
                outcome = tableau.measure(qubit)
                stack.append(
                    (tableau, position + 1, prefix + str(outcome), weight)
                )
        return results

    def sample(
        self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator
    ) -> Dict[str, int]:
        """Shot-sampled counts from the exact Clifford distribution."""
        distribution = self.distribution(circuit)
        keys = sorted(distribution)
        probs = np.array([distribution[k] for k in keys])
        probs = probs / probs.sum()
        counts: Dict[str, int] = {}
        for outcome in rng.choice(len(keys), size=shots, p=probs):
            key = keys[int(outcome)]
            counts[key] = counts.get(key, 0) + 1
        return counts
