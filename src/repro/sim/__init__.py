"""Simulation backends: ideal statevector, noisy density matrix, stabilizer.

* :class:`~repro.sim.statevector.StatevectorSimulator` — exact noise-free
  reference (the ``P`` of the Success-Rate metric).
* :class:`~repro.sim.density_matrix.DensityMatrixSimulator` — open-system
  simulator driving the simulated Rigetti device.
* :class:`~repro.sim.stabilizer.StabilizerSimulator` — poly-time Clifford
  simulation (CHP tableau) for CopyCat ideal outputs.
* :mod:`~repro.sim.channels` / :mod:`~repro.sim.noise_model` — Kraus noise
  primitives and the per-gate noise lookup the device composes.
* :mod:`~repro.sim.sampler` — counts/distribution utilities.
"""

from .channel_cache import ChannelCache
from .circuit_compiler import (
    CircuitCompiler,
    LoweredCircuit,
    LoweredOp,
    circuit_fingerprint,
    instruction_hash_chain,
)
from .sim_cache import PrefixStateCache, SimulationCache
from .channels import (
    KrausChannel,
    ReadoutError,
    Superoperator,
    amplitude_damping_channel,
    compose_channels,
    depolarizing_channel,
    identity_channel,
    phase_damping_channel,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
    unitary_channel,
)
from .density_matrix import DensityMatrix, DensityMatrixSimulator
from .noise_model import GateNoiseSpec, NoiseModel
from .sampler import (
    Counts,
    Distribution,
    counts_to_distribution,
    marginal_distribution,
    merge_counts,
    most_probable,
    sample_distribution,
    total_shots,
    uniform_distribution,
)
from .stabilizer import StabilizerSimulator, StabilizerTableau
from .statevector import StatevectorSimulator, StateVector, ideal_distribution

__all__ = [
    "ChannelCache",
    "CircuitCompiler",
    "LoweredCircuit",
    "LoweredOp",
    "circuit_fingerprint",
    "instruction_hash_chain",
    "PrefixStateCache",
    "SimulationCache",
    "KrausChannel",
    "ReadoutError",
    "Superoperator",
    "identity_channel",
    "unitary_channel",
    "depolarizing_channel",
    "two_qubit_depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "compose_channels",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "GateNoiseSpec",
    "NoiseModel",
    "StabilizerSimulator",
    "StabilizerTableau",
    "StatevectorSimulator",
    "StateVector",
    "ideal_distribution",
    "Counts",
    "Distribution",
    "counts_to_distribution",
    "sample_distribution",
    "merge_counts",
    "marginal_distribution",
    "most_probable",
    "total_shots",
    "uniform_distribution",
]
