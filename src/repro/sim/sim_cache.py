"""Drift-keyed simulation cache hierarchy for probe workloads.

ANGEL's localized search submits ``1 + 2L`` CopyCat probes per pass;
mass-replacement candidates differ from the baseline only at one link's
sites, and probes batched inside a single calibration window run under
identical noise parameters. Re-evolving every probe from ``|0..0>`` is
therefore mostly redundant work. This module stacks three memoization
levels above the per-gate :class:`~repro.sim.channel_cache.ChannelCache`,
all invalidated together when the device's ``drift_epoch`` bumps so no
entry ever outlives the noise parameters it encodes:

1. **Lowering + layer fusion** — circuits are flattened once per content
   fingerprint into fused superoperator streams by
   :class:`~repro.sim.circuit_compiler.CircuitCompiler`, cutting the
   ``O(4^n)`` contraction count before any state work happens.
2. **Prefix-state memoization** — :class:`PrefixStateCache` snapshots
   the density matrix at checkpoints along the lowered stream, keyed by
   the rolling hash of operator fingerprints, so probe candidates
   sharing an instruction prefix replay it once. Snapshots are real
   memory (a 10-qubit state is 16 MB), so the cache runs under a byte
   budget with LRU eviction.
3. **Distribution caching** — the exact noisy output distribution is
   memoized by ``(circuit fingerprint, readout config)``; identical
   probes within a window skip simulation entirely and only re-draw
   shots.

Hits at every level are *exact* replays of previously computed arrays,
so cached results are bit-identical to the first computation within an
epoch. Layer fusion itself reassociates floating-point products
(~1e-15 relative slack versus the unfused stream); the A/B contract
against the fully uncached path is pinned in ``tests/test_sim_cache.py``
and ``benchmarks/bench_sim_cache.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from .batched import BatchedDensityMatrix, plan_batches
from .channels import ReadoutError
from .circuit_compiler import (
    CircuitCompiler,
    LoweredCircuit,
    circuit_fingerprint,
)
from .density_matrix import DensityMatrix, _apply_readout_confusion

__all__ = ["PrefixStateCache", "SimulationCache"]

# 128 MB default: ~8000 five-qubit snapshots, ~8 ten-qubit ones.
_DEFAULT_PREFIX_BYTES = 128 * 1024 * 1024
_DEFAULT_MAX_DISTRIBUTIONS = 4096
_DEFAULT_MAX_LOWERED = 1024
# One circuit's checkpoints may claim at most this fraction of the
# byte budget, so a deep circuit cannot flush the whole cache.
_CHECKPOINT_BUDGET_FRACTION = 8


class PrefixStateCache:
    """LRU density-matrix snapshots under a byte budget.

    Keys are rolling prefix hashes from
    :class:`~repro.sim.circuit_compiler.CircuitCompiler`; values are
    state tensors (stored as copies, treated as immutable). Lookup walks
    a circuit's hash chain backwards for the *longest* cached prefix.
    """

    def __init__(self, max_bytes: int = _DEFAULT_PREFIX_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def longest_prefix(
        self, keys: Sequence[bytes]
    ) -> Tuple[int, Optional[np.ndarray]]:
        """Longest cached prefix of a hash chain.

        ``keys[i]`` names the state after operator ``i``; returns
        ``(i + 1, tensor)`` for the deepest hit (the tensor must be
        copied before mutation) or ``(0, None)``. Counts one hit or
        one miss per lookup, not per probe step.
        """
        for index in range(len(keys) - 1, -1, -1):
            tensor = self._entries.get(keys[index])
            if tensor is not None:
                self._entries.move_to_end(keys[index])
                self.hits += 1
                return index + 1, tensor
        self.misses += 1
        return 0, None

    def put(self, key: bytes, tensor: np.ndarray) -> None:
        """Store a snapshot (copied), evicting LRU entries to fit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        nbytes = tensor.nbytes
        if nbytes > self.max_bytes:
            return
        while self._entries and self.bytes + nbytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.bytes -= evicted.nbytes
            self.evictions += 1
        self._entries[key] = tensor.copy()
        self.bytes += nbytes
        self.stores += 1

    def invalidate(self) -> None:
        """Drop every snapshot (the noise parameters moved)."""
        self._entries.clear()
        self.bytes = 0
        self.invalidations += 1

    def stats(self) -> Dict[str, int]:
        return {
            "prefix_hits": self.hits,
            "prefix_misses": self.misses,
            "prefix_entries": len(self._entries),
            "prefix_bytes": self.bytes,
            "prefix_stores": self.stores,
            "prefix_evictions": self.evictions,
        }


class SimulationCache:
    """The three-level hierarchy, owned by a device.

    All levels are flushed together by :meth:`invalidate` when the
    device's ``drift_epoch`` bumps, mirroring the ChannelCache contract:
    epoch membership is enforced by invalidation, so keys never need to
    carry the epoch explicitly.

    Args:
        prefix_bytes: Byte budget for prefix snapshots.
        max_distributions: Entry cap for memoized distributions (LRU).
        max_lowered: Entry cap for lowered circuits (LRU).
        fuse: Enable layer fusion during lowering.
    """

    def __init__(
        self,
        prefix_bytes: int = _DEFAULT_PREFIX_BYTES,
        max_distributions: int = _DEFAULT_MAX_DISTRIBUTIONS,
        max_lowered: int = _DEFAULT_MAX_LOWERED,
        fuse: bool = True,
    ) -> None:
        self.prefix = PrefixStateCache(prefix_bytes)
        self.fuse = fuse
        self.max_distributions = int(max_distributions)
        self.max_lowered = int(max_lowered)
        self._distributions: "OrderedDict[Tuple, Dict[str, float]]" = (
            OrderedDict()
        )
        self._lowered: "OrderedDict[Tuple, LoweredCircuit]" = OrderedDict()
        # Fused superoperator products, shared across lowerings within
        # an epoch (probe variants re-fuse mostly identical streams).
        self._products: Dict[Tuple, object] = {}
        self.epoch = 0
        self.dist_hits = 0
        self.dist_misses = 0
        self.dist_evictions = 0
        # Optional cross-device distribution store (multi-tenant dedup).
        self._shared_store = None
        self._shared_key: Optional[Callable[[], object]] = None
        self.shared_hits = 0
        self.shared_publishes = 0
        self.lower_hits = 0
        self.lower_misses = 0
        self.ops_replayed = 0
        self.ops_skipped = 0
        self.invalidations = 0
        # Batched-candidate engine counters (distribution_batch).
        self.batch_dedup_hits = 0
        self.batch_groups = 0
        self.batch_candidates = 0

    # ------------------------------------------------------------------
    # Invalidation (the drift contract)
    # ------------------------------------------------------------------
    def invalidate(self, epoch: int) -> None:
        """Flush every level; entries never outlive their noise epoch."""
        self._distributions.clear()
        self._lowered.clear()
        self._products.clear()
        self.prefix.invalidate()
        self.epoch = epoch
        self.invalidations += 1

    # ------------------------------------------------------------------
    # Cross-device sharing (multi-tenant probe dedup)
    # ------------------------------------------------------------------
    def attach_shared_store(
        self, store, state_key: Callable[[], object]
    ) -> None:
        """Consult/publish exact distributions through a shared store.

        ``store`` needs ``get(key)``/``put(key, distribution)`` (e.g.
        :class:`~repro.service.dedup.ProbeDistributionStore`);
        ``state_key`` is called per lookup and must change whenever this
        device's physics change (the device's ``parameter_fingerprint``).
        Unlike the local levels, shared entries are keyed by the *full*
        physics state rather than flushed on epoch bumps, so one
        request's computed distribution outlives its epoch and serves
        any other request whose device reaches the identical state —
        exactness is inherited from the local memo contract (a shared
        hit is the same dict the owning device computed).
        """
        self._shared_store = store
        self._shared_key = state_key

    def detach_shared_store(self) -> None:
        self._shared_store = None
        self._shared_key = None

    # ------------------------------------------------------------------
    # The cached distribution pipeline
    # ------------------------------------------------------------------
    def distribution(
        self,
        circuit: QuantumCircuit,
        readout_errors: Optional[Sequence[Optional[ReadoutError]]],
        operation_compiler: Optional[Callable] = None,
        noise_callback: Optional[Callable] = None,
        placement: Tuple = (),
    ) -> Dict[str, float]:
        """Exact noisy distribution, memoized at every level.

        Mirrors :meth:`DensityMatrixSimulator.distribution` semantics
        exactly — measured-qubit marginal, readout confusion, the
        ``p > 1e-14`` filter, big-endian keys — so the device can sample
        shots from the result interchangeably.

        ``placement`` is the physical-qubit context (the device passes
        its compacted ``used`` tuple): two compact circuits with equal
        local content but different physical qubits see different noise,
        so placement is part of every key.
        """
        fingerprint = (placement, circuit_fingerprint(circuit))
        key = (fingerprint, self._readout_key(readout_errors))
        cached = self._lookup(key)
        if cached is not None:
            return cached
        lowered = self._lower(
            circuit, fingerprint, operation_compiler, noise_callback,
            placement,
        )
        state = self._evolve(lowered)
        result = self._finish(circuit, state, readout_errors)
        self._store(key, result)
        return dict(result)

    def distribution_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        readout_errors: Optional[Sequence[Optional[ReadoutError]]],
        operation_compiler: Optional[Callable] = None,
        noise_callback: Optional[Callable] = None,
        placement: Tuple = (),
    ) -> List[Dict[str, float]]:
        """Exact distributions for a batch sharing one placement/epoch.

        The batched-candidate engine: identical circuits within the
        batch are deduplicated before any simulation (counted in
        ``batch_dedup_hits``), memo/shared-store hits short-circuit per
        unique circuit exactly as :meth:`distribution` would, and the
        remaining misses are partitioned by
        :func:`~repro.sim.batched.plan_batches` into clusters whose
        shared prefix is contracted once on a plain state (resuming
        from and feeding the prefix snapshot cache), whose per-candidate
        middles evolve individually, and whose shared suffix is
        contracted once across the stacked candidates. Prefix and middle
        evolution reuse the exact sequential code path and the stacked
        suffix lowers to the same per-candidate GEMM columns, so results
        are bit-identical to ``[self.distribution(c) for c in circuits]``.
        """
        readout_key = self._readout_key(readout_errors)
        results: List[Optional[Dict[str, float]]] = [None] * len(circuits)
        pending: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for index, circuit in enumerate(circuits):
            key = ((placement, circuit_fingerprint(circuit)), readout_key)
            slot = pending.get(key)
            if slot is not None:
                slot.append(index)
                self.batch_dedup_hits += 1
            else:
                pending[key] = [index]
        misses: List[Tuple[Tuple, List[int]]] = []
        for key, indices in pending.items():
            cached = self._lookup(key)
            if cached is not None:
                for index in indices:
                    results[index] = dict(cached)
            else:
                misses.append((key, indices))
        lowered = [
            self._lower(
                circuits[indices[0]], key[0], operation_compiler,
                noise_callback, placement,
            )
            for key, indices in misses
        ]
        for plan in plan_batches(lowered):
            if len(plan.indices) == 1:
                position = plan.indices[0]
                states = [self._evolve(lowered[position])]
            else:
                states = self._evolve_cluster(
                    [lowered[i] for i in plan.indices],
                    plan.prefix_len,
                    plan.suffix_len,
                )
                self.batch_groups += 1
                self.batch_candidates += len(plan.indices)
            for position, state in zip(plan.indices, states):
                key, indices = misses[position]
                result = self._finish(
                    circuits[indices[0]], state, readout_errors
                )
                self._store(key, result)
                for index in indices:
                    results[index] = dict(result)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    @staticmethod
    def _readout_key(
        readout_errors: Optional[Sequence[Optional[ReadoutError]]]
    ) -> Tuple:
        return tuple(
            None if error is None else (error.p0_given_1, error.p1_given_0)
            for error in (readout_errors or ())
        )

    def _lookup(self, key: Tuple) -> Optional[Dict[str, float]]:
        """Consult the local memo, then the shared store; count once."""
        cached = self._distributions.get(key)
        if cached is not None:
            self._distributions.move_to_end(key)
            self.dist_hits += 1
            return dict(cached)
        self.dist_misses += 1
        if self._shared_store is not None:
            shared = self._shared_store.get((self._shared_key(), key))
            if shared is not None:
                self.shared_hits += 1
                while len(self._distributions) >= self.max_distributions:
                    self._distributions.popitem(last=False)
                    self.dist_evictions += 1
                self._distributions[key] = dict(shared)
                return dict(shared)
        return None

    def _store(self, key: Tuple, result: Dict[str, float]) -> None:
        while len(self._distributions) >= self.max_distributions:
            self._distributions.popitem(last=False)
            self.dist_evictions += 1
        self._distributions[key] = result
        if self._shared_store is not None:
            self._shared_store.put((self._shared_key(), key), result)
            self.shared_publishes += 1

    @staticmethod
    def _finish(
        circuit: QuantumCircuit,
        state: DensityMatrix,
        readout_errors: Optional[Sequence[Optional[ReadoutError]]],
    ) -> Dict[str, float]:
        """Measured-marginal + readout confusion + result-dict build."""
        measured = circuit.measured_qubits() or tuple(
            range(circuit.num_qubits)
        )
        probs = state.probabilities(measured)
        if readout_errors is not None:
            probs = _apply_readout_confusion(probs, measured, readout_errors)
        width = len(measured)
        return {
            format(i, f"0{width}b"): float(p)
            for i, p in enumerate(probs)
            if p > 1e-14
        }

    def _lower(
        self,
        circuit: QuantumCircuit,
        fingerprint: Tuple,
        operation_compiler: Optional[Callable],
        noise_callback: Optional[Callable],
        placement: Tuple,
    ) -> LoweredCircuit:
        """Level 1: memoized lowering + fusion, LRU by fingerprint."""
        cached = self._lowered.get(fingerprint)
        if cached is not None:
            self._lowered.move_to_end(fingerprint)
            self.lower_hits += 1
            return cached
        self.lower_misses += 1
        if len(self._products) > 4 * self.max_lowered:
            self._products.clear()  # epoch outlived its working set
        compiler = CircuitCompiler(
            operation_compiler,
            noise_callback,
            fuse=self.fuse,
            hash_seed=placement,
            product_cache=self._products,
        )
        lowered = compiler.lower(circuit)
        while len(self._lowered) >= self.max_lowered:
            self._lowered.popitem(last=False)
        self._lowered[fingerprint] = lowered
        return lowered

    def _evolve(self, lowered: LoweredCircuit) -> DensityMatrix:
        """Level 2: replay from the deepest cached prefix snapshot."""
        operations = lowered.operations
        hashes = lowered.prefix_hashes
        covered = 0
        if operations:
            covered, tensor = self.prefix.longest_prefix(hashes)
            if tensor is not None:
                state = DensityMatrix.from_snapshot(
                    lowered.num_qubits, tensor
                )
                self.ops_skipped += covered
            else:
                state = DensityMatrix(lowered.num_qubits)
        else:
            state = DensityMatrix(lowered.num_qubits)
        stride = self._checkpoint_stride(
            len(operations), state.snapshot().nbytes
        )
        for index in range(covered, len(operations)):
            op = operations[index]
            state.apply_superoperator(op.superop, op.qubits)
            self.ops_replayed += 1
            if (index + 1) % stride == 0 or index + 1 == len(operations):
                self.prefix.put(hashes[index], state._tensor)
        return state

    def _evolve_cluster(
        self,
        members: List[LoweredCircuit],
        prefix_len: int,
        suffix_len: int,
    ) -> List[DensityMatrix]:
        """Evolve one candidate cluster: shared prefix once, middles per
        candidate, shared suffix batched over the candidate axis.

        Prefix and middle evolution run on plain :class:`DensityMatrix`
        states through the identical operator-application code as
        :meth:`_evolve`, storing prefix snapshots under the same keys
        (so later clusters and sequential runs resume from them); only
        the shared suffix is applied on the stacked state, whose
        per-candidate slices are bit-identical to individual
        application. Batched-computed suffix states are *not* stored as
        prefix snapshots — every cached snapshot stays a product of the
        sequential path.
        """
        base = members[0]
        num_qubits = base.num_qubits
        stride = self._checkpoint_stride(
            max(len(m.operations) for m in members),
            DensityMatrix(num_qubits).snapshot().nbytes,
        )
        covered = 0
        tensor = None
        if prefix_len:
            covered, tensor = self.prefix.longest_prefix(
                base.prefix_hashes[:prefix_len]
            )
        if tensor is not None:
            prefix_state = DensityMatrix.from_snapshot(num_qubits, tensor)
            self.ops_skipped += covered
        else:
            prefix_state = DensityMatrix(num_qubits)
        for index in range(covered, prefix_len):
            op = base.operations[index]
            prefix_state.apply_superoperator(op.superop, op.qubits)
            self.ops_replayed += 1
            if (index + 1) % stride == 0 or index + 1 == prefix_len:
                self.prefix.put(
                    base.prefix_hashes[index], prefix_state._tensor
                )
        # Every member beyond the first rides the shared prefix for free.
        self.ops_skipped += prefix_len * (len(members) - 1)
        finals = []
        for member in members:
            middle_end = len(member.operations) - suffix_len
            state = DensityMatrix.from_snapshot(
                num_qubits, prefix_state._tensor
            )
            for index in range(prefix_len, middle_end):
                op = member.operations[index]
                state.apply_superoperator(op.superop, op.qubits)
                self.ops_replayed += 1
                if (index + 1) % stride == 0 or index + 1 == middle_end:
                    self.prefix.put(
                        member.prefix_hashes[index], state._tensor
                    )
            finals.append(state)
        if suffix_len == 0:
            return finals
        stacked = BatchedDensityMatrix(
            num_qubits, [state._tensor for state in finals]
        )
        tail = base.operations[len(base.operations) - suffix_len:]
        for op in tail:
            stacked.apply_superoperator(op.superop, op.qubits)
            self.ops_replayed += 1
        # Each batched contraction stands in for K-1 further ones.
        self.ops_skipped += suffix_len * (len(members) - 1)
        return [
            DensityMatrix.from_snapshot(num_qubits, stacked.tensor(k))
            for k in range(len(members))
        ]

    def _checkpoint_stride(self, num_ops: int, snapshot_bytes: int) -> int:
        """Checkpoint every N ops so one circuit stays within its slice
        of the byte budget (deep circuits checkpoint sparsely instead of
        flushing everything else)."""
        if num_ops == 0:
            return 1
        slice_bytes = max(1, self.prefix.max_bytes // _CHECKPOINT_BUDGET_FRACTION)
        max_snapshots = max(1, slice_bytes // max(1, snapshot_bytes))
        return max(1, -(-num_ops // max_snapshots))

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Flat counters; sim-specific keys are prefixed to avoid
        colliding with ChannelCache keys when backends merge them."""
        stats = {
            "dist_hits": self.dist_hits,
            "dist_misses": self.dist_misses,
            "dist_entries": len(self._distributions),
            "dist_evictions": self.dist_evictions,
            "lower_hits": self.lower_hits,
            "lower_misses": self.lower_misses,
            "ops_replayed": self.ops_replayed,
            "ops_skipped": self.ops_skipped,
            "dist_shared_hits": self.shared_hits,
            "dist_shared_publishes": self.shared_publishes,
            "batch_dedup_hits": self.batch_dedup_hits,
            "batch_groups": self.batch_groups,
            "batch_candidates": self.batch_candidates,
            "sim_invalidations": self.invalidations,
            "sim_epoch": self.epoch,
        }
        stats.update(self.prefix.stats())
        return stats
