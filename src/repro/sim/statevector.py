"""Ideal state-vector simulator.

This is the library's noise-free reference executor: it produces the exact
output distribution ``P`` used in the Success-Rate metric (paper Eq. 2)
and the ideal outputs of CopyCats that retain a few non-Clifford gates.

The state is stored as a rank-``n`` tensor of amplitudes in big-endian
order (qubit 0 = axis 0 = most significant bit). Gates are applied by
contracting their matrix against the corresponding axes, so cost is
``O(2^n)`` per gate rather than ``O(4^n)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..exceptions import SimulationError

__all__ = ["StateVector", "StatevectorSimulator", "ideal_distribution"]

_MAX_QUBITS = 24


class StateVector:
    """A mutable pure state on *num_qubits* qubits.

    Supports in-place gate application, probability queries, and
    measurement sampling. Amplitudes are complex128.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise SimulationError("need at least one qubit")
        if num_qubits > _MAX_QUBITS:
            raise SimulationError(
                f"statevector limited to {_MAX_QUBITS} qubits, got {num_qubits}"
            )
        self.num_qubits = num_qubits
        self._tensor = np.zeros((2,) * num_qubits, dtype=complex)
        self._tensor[(0,) * num_qubits] = 1.0

    @classmethod
    def from_amplitudes(cls, amplitudes: np.ndarray) -> "StateVector":
        """Build a state from a flat amplitude vector (big-endian)."""
        amplitudes = np.asarray(amplitudes, dtype=complex).ravel()
        num_qubits = int(np.log2(amplitudes.size))
        if 2**num_qubits != amplitudes.size:
            raise SimulationError("amplitude vector length must be 2^n")
        state = cls(num_qubits)
        state._tensor = amplitudes.reshape((2,) * num_qubits).copy()
        return state

    @property
    def amplitudes(self) -> np.ndarray:
        """Flat copy of the amplitude vector, big-endian index order."""
        return self._tensor.reshape(-1).copy()

    def norm(self) -> float:
        return float(np.linalg.norm(self._tensor))

    def apply_matrix(self, matrix: np.ndarray, qubits: Tuple[int, ...]) -> None:
        """Apply a ``2^k x 2^k`` matrix to the given *k* qubits in place."""
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
        # Contract matrix axes k..2k-1 with the state axes for `qubits`;
        # tensordot moves the acted-on axes to the front, so restore order.
        contracted = np.tensordot(
            matrix, self._tensor, axes=(list(range(k, 2 * k)), list(qubits))
        )
        self._tensor = self._restore_axes(contracted, qubits)

    @staticmethod
    def _permutation_after_tensordot(
        num_qubits: int, qubits: Tuple[int, ...]
    ) -> List[int]:
        """Axis order mapping tensordot output back to qubit order.

        After ``tensordot`` the output axes are ``[q for q in qubits] +
        [others in increasing order]``. We need axis *i* of the result to
        be qubit *i*.
        """
        k = len(qubits)
        others = [q for q in range(num_qubits) if q not in qubits]
        current = list(qubits) + others  # current axis -> qubit label
        desired = list(range(num_qubits))
        return [current.index(q) for q in desired]

    def _restore_axes(self, tensor: np.ndarray, qubits: Tuple[int, ...]) -> np.ndarray:
        perm = self._permutation_after_tensordot(self.num_qubits, qubits)
        return np.transpose(tensor, perm)

    def apply_gate(self, gate: Gate) -> None:
        if not gate.is_unitary:
            raise SimulationError(f"cannot apply non-unitary {gate.name!r}")
        self.apply_matrix(gate.matrix(), gate.qubits)

    def probabilities(self, qubits: Optional[Iterable[int]] = None) -> np.ndarray:
        """Measurement probabilities over *qubits* (default: all).

        The returned vector is indexed big-endian over the listed qubits
        in the given order.
        """
        probs = np.abs(self._tensor) ** 2
        if qubits is None:
            return probs.reshape(-1)
        qubits = tuple(qubits)
        others = tuple(q for q in range(self.num_qubits) if q not in qubits)
        marginal = probs.sum(axis=others) if others else probs
        # marginal axes are the kept qubits in increasing order; reorder to
        # match the requested order.
        kept_sorted = tuple(sorted(qubits))
        perm = [kept_sorted.index(q) for q in qubits]
        return np.transpose(marginal, perm).reshape(-1)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Iterable[int]] = None,
    ) -> Dict[str, int]:
        """Sample measurement outcomes; returns bitstring counts."""
        qubits = tuple(qubits) if qubits is not None else tuple(range(self.num_qubits))
        probs = self.probabilities(qubits)
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum()
        outcomes = rng.choice(probs.size, size=shots, p=probs)
        counts: Dict[str, int] = {}
        width = len(qubits)
        for outcome in outcomes:
            key = format(int(outcome), f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return counts


class StatevectorSimulator:
    """Run circuits on the ideal :class:`StateVector` backend."""

    def run(self, circuit: QuantumCircuit) -> StateVector:
        """Evolve |0...0> through the unitary part of *circuit*.

        Measurement instructions are ignored here (they select which
        qubits :func:`ideal_distribution` marginalizes over); use
        :meth:`sample` for shot-based output.
        """
        state = StateVector(circuit.num_qubits)
        for gate in circuit:
            if gate.is_unitary:
                state.apply_gate(gate)
        return state

    def distribution(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Exact output distribution over the circuit's measured qubits.

        If the circuit has no measurements, all qubits are reported.
        Keys are big-endian bitstrings; values sum to 1.
        """
        state = self.run(circuit)
        measured = circuit.measured_qubits() or tuple(range(circuit.num_qubits))
        probs = state.probabilities(measured)
        width = len(measured)
        return {
            format(i, f"0{width}b"): float(p)
            for i, p in enumerate(probs)
            if p > 1e-14
        }

    def sample(
        self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator
    ) -> Dict[str, int]:
        """Shot-sampled counts from the ideal output distribution."""
        state = self.run(circuit)
        measured = circuit.measured_qubits() or tuple(range(circuit.num_qubits))
        return state.sample(shots, rng, measured)


def ideal_distribution(circuit: QuantumCircuit) -> Dict[str, float]:
    """Module-level convenience wrapper over ``StatevectorSimulator``."""
    return StatevectorSimulator().distribution(circuit)
