"""The :class:`QuantumCircuit` intermediate representation.

A circuit is an ordered list of :class:`~repro.circuit.gates.Gate`
instructions over ``num_qubits`` qubits. It is the single IR used by every
stage of the pipeline: programs are authored against it, the compiler
rewrites it, CopyCats are derived from it, and the simulators execute it.

The builder methods (``h``, ``cnot``, ``rx``...) return ``self`` so
circuits can be written fluently::

    qc = QuantumCircuit(2).h(0).cnot(0, 1).measure_all()
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError
from ..linalg import kron_n
from .gates import BARRIER, MEASURE, Gate

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gate instructions on a fixed qubit register.

    Args:
        num_qubits: Size of the qubit register; all instruction qubit
            indices must be in ``range(num_qubits)``.
        instructions: Optional initial instruction list (copied).
        name: Human-readable label carried through compilation, used in
            experiment reports.
    """

    def __init__(
        self,
        num_qubits: int,
        instructions: Optional[Iterable[Gate]] = None,
        name: str = "circuit",
    ) -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: List[Gate] = []
        if instructions is not None:
            for gate in instructions:
                self.append(gate)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_instructions={len(self)})"
        )

    @property
    def instructions(self) -> Tuple[Gate, ...]:
        """The instruction list as an immutable tuple."""
        return tuple(self._instructions)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a prebuilt :class:`Gate`, validating its qubit range."""
        if gate.qubits and max(gate.qubits) >= self.num_qubits:
            raise CircuitError(
                f"{gate} addresses qubits outside register of size "
                f"{self.num_qubits}"
            )
        self._instructions.append(gate)
        return self

    def add(self, name: str, qubits: Sequence[int], *params: float) -> "QuantumCircuit":
        """Append gate *name* on *qubits* with *params*."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # Single-qubit fixed gates -----------------------------------------
    def i(self, qubit: int) -> "QuantumCircuit":
        return self.add("id", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.add("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.add("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.add("z", (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.add("h", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.add("s", (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.add("sdg", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.add("t", (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.add("tdg", (qubit,))

    # Single-qubit rotations -------------------------------------------
    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add("rx", (qubit,), theta)

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add("ry", (qubit,), theta)

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add("rz", (qubit,), theta)

    def phase(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.add("phase", (qubit,), lam)

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.add("u3", (qubit,), theta, phi, lam)

    # Two-qubit gates ----------------------------------------------------
    def cnot(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cnot", (control, target))

    # Alias matching other toolkits.
    cx = cnot

    def cz(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("cz", (qubit_a, qubit_b))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("swap", (qubit_a, qubit_b))

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("iswap", (qubit_a, qubit_b))

    def cphase(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("cphase", (qubit_a, qubit_b), theta)

    def xy(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("xy", (qubit_a, qubit_b), theta)

    def toffoli(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Standard 6-CNOT Toffoli decomposition (T-depth 3)."""
        self.h(target)
        self.cnot(control_b, target)
        self.tdg(target)
        self.cnot(control_a, target)
        self.t(target)
        self.cnot(control_b, target)
        self.tdg(target)
        self.cnot(control_a, target)
        self.t(control_b)
        self.t(target)
        self.h(target)
        self.cnot(control_a, control_b)
        self.t(control_a)
        self.tdg(control_b)
        self.cnot(control_a, control_b)
        return self

    # Non-unitary ---------------------------------------------------------
    def measure(self, qubit: int) -> "QuantumCircuit":
        return self.add(MEASURE, (qubit,))

    def measure_all(self) -> "QuantumCircuit":
        for qubit in range(self.num_qubits):
            self.measure(qubit)
        return self

    def barrier(self) -> "QuantumCircuit":
        return self.append(Gate(BARRIER, ()))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def has_measurements(self) -> bool:
        return any(g.is_measurement for g in self._instructions)

    def measured_qubits(self) -> Tuple[int, ...]:
        """Qubits with a measure instruction, in first-measurement order."""
        seen: List[int] = []
        for gate in self._instructions:
            if gate.is_measurement and gate.qubits[0] not in seen:
                seen.append(gate.qubits[0])
        return tuple(seen)

    def gates(self) -> Iterator[Gate]:
        """Iterate over unitary instructions only (no measure/barrier)."""
        return (g for g in self._instructions if g.is_unitary)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of instruction names."""
        counts: Dict[str, int] = {}
        for gate in self._instructions:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def num_two_qubit_gates(self) -> int:
        return sum(1 for g in self.gates() if g.is_two_qubit)

    def cnot_count(self) -> int:
        """Number of explicit CNOT instructions (SWAPs not expanded)."""
        return self.count_ops().get("cnot", 0)

    def two_qubit_pairs(self) -> List[Tuple[int, int]]:
        """Unordered qubit pairs touched by two-qubit gates, in order."""
        return [
            (min(g.qubits), max(g.qubits))
            for g in self.gates()
            if g.is_two_qubit
        ]

    def is_clifford(self) -> bool:
        """True if every unitary instruction is a Clifford gate."""
        return all(g.is_clifford for g in self.gates())

    def non_clifford_gates(self) -> List[Tuple[int, Gate]]:
        """(index, gate) for each non-Clifford unitary instruction."""
        return [
            (i, g)
            for i, g in enumerate(self._instructions)
            if g.is_unitary and not g.is_clifford
        ]

    def depth(self) -> int:
        """Circuit depth counting unitary gates and measurements.

        Barriers force alignment: every later gate is scheduled after every
        earlier one across the barrier.
        """
        frontier = [0] * self.num_qubits
        for gate in self._instructions:
            if gate.is_barrier:
                level = max(frontier) if frontier else 0
                frontier = [level] * self.num_qubits
                continue
            level = max(frontier[q] for q in gate.qubits) + 1
            for qubit in gate.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        return QuantumCircuit(
            self.num_qubits, self._instructions, name or self.name
        )

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (unitary part only; measurements rejected)."""
        if self.has_measurements:
            raise CircuitError("cannot invert a circuit with measurements")
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for gate in reversed(self._instructions):
            if gate.is_barrier:
                inv.barrier()
            else:
                inv.append(gate.inverse())
        return inv

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError(
                "cannot compose a wider circuit onto a narrower one"
            )
        combined = self.copy()
        for gate in other:
            combined.append(gate)
        return combined

    def remap_qubits(
        self, mapping: Sequence[int], num_qubits: Optional[int] = None
    ) -> "QuantumCircuit":
        """Relabel qubit *q* to ``mapping[q]`` (e.g. apply a device layout).

        Args:
            mapping: ``mapping[q]`` is the new index of logical qubit *q*.
            num_qubits: Register size of the output circuit; defaults to
                ``max(mapping) + 1``.
        """
        if len(mapping) < self.num_qubits:
            raise CircuitError("mapping shorter than qubit register")
        new_size = num_qubits if num_qubits is not None else max(mapping) + 1
        remapped = QuantumCircuit(new_size, name=self.name)
        for gate in self._instructions:
            if gate.is_barrier:
                remapped.barrier()
            else:
                remapped.append(gate.remap(mapping))
        return remapped

    def compacted(self) -> Tuple["QuantumCircuit", Tuple[int, ...]]:
        """Relabel onto a dense register of only the qubits actually used.

        Returns ``(compact_circuit, used_qubits)`` where ``used_qubits``
        is sorted and ``used_qubits[i]`` is the original index of compact
        qubit *i*. Physical circuits address sparse ids (e.g. 30-37 on an
        Aspen octagon); simulators want dense registers.
        """
        used = sorted({q for gate in self._instructions for q in gate.qubits})
        if not used:
            return QuantumCircuit(1, name=self.name), (0,)
        local_of = {phys: local for local, phys in enumerate(used)}
        compact = QuantumCircuit(len(used), name=self.name)
        for gate in self._instructions:
            if gate.is_barrier:
                compact.barrier()
            else:
                compact.append(
                    Gate(
                        gate.name,
                        tuple(local_of[q] for q in gate.qubits),
                        gate.params,
                    )
                )
        return compact, tuple(used)

    def without_measurements(self) -> "QuantumCircuit":
        """Copy of the circuit with measure instructions removed."""
        stripped = QuantumCircuit(self.num_qubits, name=self.name)
        for gate in self._instructions:
            if not gate.is_measurement:
                stripped.append(gate)
        return stripped

    # ------------------------------------------------------------------
    # Dense matrix semantics (for tests and small references)
    # ------------------------------------------------------------------
    def unitary(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` unitary of the circuit (measurements rejected).

        Intended for verification at small widths; raises beyond 12 qubits
        to guard against accidental exponential blowups.
        """
        if self.has_measurements:
            raise CircuitError("circuit with measurements has no unitary")
        if self.num_qubits > 12:
            raise CircuitError(
                "dense unitary limited to 12 qubits; use a simulator"
            )
        dim = 2**self.num_qubits
        total = np.eye(dim, dtype=complex)
        for gate in self.gates():
            total = self._expand(gate) @ total
        return total

    def _expand(self, gate: Gate) -> np.ndarray:
        """Embed a 1- or 2-qubit gate matrix into the full register space."""
        matrix = gate.matrix()
        if len(gate.qubits) == 1:
            factors = [
                matrix if q == gate.qubits[0] else np.eye(2)
                for q in range(self.num_qubits)
            ]
            return kron_n(*factors)
        if len(gate.qubits) == 2:
            return _expand_two_qubit(matrix, gate.qubits, self.num_qubits)
        raise CircuitError(f"cannot expand {gate.num_qubits}-qubit gate")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """One instruction per line, for logs and golden tests."""
        lines = [f"# {self.name} ({self.num_qubits} qubits)"]
        lines.extend(str(g) for g in self._instructions)
        return "\n".join(lines)

    def draw(self) -> str:
        """Moment-aligned ASCII diagram (see :mod:`repro.circuit.drawer`)."""
        from .drawer import draw_circuit

        return draw_circuit(self)


def _expand_two_qubit(
    matrix: np.ndarray, qubits: Tuple[int, int], num_qubits: int
) -> np.ndarray:
    """Expand a two-qubit gate onto arbitrary (possibly distant) qubits.

    Works in the big-endian tensor basis by permuting the gate's axes into
    place via einsum-style reshaping.
    """
    q0, q1 = qubits
    tensor = matrix.reshape(2, 2, 2, 2)
    dim = 2**num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    # Build by iterating over basis states; widths here are tiny (<=12).
    for col in range(dim):
        bits = [(col >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        b0, b1 = bits[q0], bits[q1]
        for a0 in range(2):
            for a1 in range(2):
                amplitude = tensor[a0, a1, b0, b1]
                if amplitude == 0:
                    continue
                new_bits = list(bits)
                new_bits[q0], new_bits[q1] = a0, a1
                row = 0
                for bit in new_bits:
                    row = (row << 1) | bit
                full[row, col] += amplitude
    return full
