"""ASCII circuit rendering.

Moment-aligned text diagrams for logs, examples, and the CLI::

    q0: -H--*------M-
            |
    q1: ----X--*---M-
               |
    q2: -------X---M-

Controls render as ``*``, CNOT targets as ``X``, CZ endpoints both as
``*``, SWAP endpoints as ``x``; parametric gates show a compact angle
(``RZ(pi/2)``). Wires between a two-qubit gate's endpoints carry a ``|``
connector in that column.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from .circuit import QuantumCircuit
from .dag import circuit_moments
from .gates import Gate

__all__ = ["draw_circuit"]

_FIXED_LABELS = {
    "id": "I",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "h": "H",
    "s": "S",
    "sdg": "Sdg",
    "t": "T",
    "tdg": "Tdg",
    "measure": "M",
}


def _angle_text(value: float) -> str:
    for denominator in (1, 2, 3, 4, 6, 8):
        for sign in (1, -1):
            if abs(value - sign * math.pi / denominator) < 1e-9:
                prefix = "-" if sign < 0 else ""
                if denominator == 1:
                    return f"{prefix}pi"
                return f"{prefix}pi/{denominator}"
    if abs(value) < 1e-12:
        return "0"
    return f"{value:.3g}"


def _single_label(gate: Gate) -> str:
    if gate.name in _FIXED_LABELS:
        return _FIXED_LABELS[gate.name]
    if gate.params:
        args = ",".join(_angle_text(p) for p in gate.params)
        return f"{gate.name.upper()}({args})"
    return gate.name.upper()


def _two_qubit_labels(gate: Gate) -> Tuple[str, str]:
    """(label on first listed qubit, label on second listed qubit)."""
    if gate.name == "cnot":
        return "*", "X"
    if gate.name == "cz":
        return "*", "*"
    if gate.name == "swap":
        return "x", "x"
    if gate.name == "iswap":
        return "i", "i"
    if gate.name in ("cphase", "xy"):
        tag = f"{gate.name.upper()}({_angle_text(gate.params[0])})"
        return "*", tag
    label = gate.name.upper()
    return label, label


def draw_circuit(circuit: QuantumCircuit, wire_prefix: str = "q") -> str:
    """Render *circuit* as a moment-aligned ASCII diagram."""
    num_qubits = circuit.num_qubits
    moments = circuit_moments(circuit)
    cells: Dict[Tuple[int, int], str] = {}
    # gaps[column] = set of wire indices w with a connector between
    # wires w and w+1.
    gaps: Dict[int, Set[int]] = {}
    for column, moment in enumerate(moments):
        for _, gate in moment.items:
            if gate.is_barrier:
                continue
            if gate.num_qubits == 1:
                cells[(gate.qubits[0], column)] = _single_label(gate)
                continue
            first_label, second_label = _two_qubit_labels(gate)
            cells[(gate.qubits[0], column)] = first_label
            cells[(gate.qubits[1], column)] = second_label
            low, high = sorted(gate.qubits)
            gaps.setdefault(column, set()).update(range(low, high))

    widths = [
        max([len(cells.get((q, col), "")) for q in range(num_qubits)] + [1])
        for col in range(len(moments))
    ]
    name_width = len(f"{wire_prefix}{num_qubits - 1}") + 1
    lines: List[str] = []
    for qubit in range(num_qubits):
        segments = [f"{wire_prefix}{qubit}:".ljust(name_width + 1)]
        for column, width in enumerate(widths):
            label = cells.get((qubit, column), "")
            segments.append("-" + label.center(width, "-") + "-")
        lines.append("".join(segments))
        if qubit < num_qubits - 1:
            connector_columns = [
                column
                for column in range(len(moments))
                if qubit in gaps.get(column, set())
            ]
            if connector_columns:
                segments = [" " * (name_width + 1)]
                for column, width in enumerate(widths):
                    mark = "|" if column in connector_columns else " "
                    segments.append(" " + mark.center(width) + " ")
                lines.append("".join(segments).rstrip())
    return "\n".join(lines)
