"""Circuit intermediate representation: gates, circuits, DAGs, Cliffords.

Public surface:

* :class:`~repro.circuit.gates.Gate` / the gate registry;
* :class:`~repro.circuit.circuit.QuantumCircuit` builder/IR;
* moment and DAG views (:mod:`repro.circuit.dag`);
* the single-qubit Clifford group and nearest-Clifford replacement
  (:mod:`repro.circuit.clifford`) used by CopyCats;
* OpenQASM 2 round-tripping (:mod:`repro.circuit.qasm`);
* random circuit generators (:mod:`repro.circuit.random_circuits`).
"""

from .circuit import QuantumCircuit
from .clifford import (
    SingleQubitClifford,
    clifford_replacement_gates,
    is_clifford_matrix,
    nearest_clifford,
    single_qubit_clifford_group,
)
from .dag import CircuitDag, Moment, circuit_moments, first_layer_indices
from .drawer import draw_circuit
from .gates import (
    GATE_REGISTRY,
    TWO_QUBIT_NATIVE_NAMES,
    Gate,
    GateSpec,
    gate_matrix,
)
from .qasm import from_qasm, to_qasm
from .random_circuits import (
    random_circuit,
    random_clifford_circuit,
    random_parameterized_layer,
)

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_REGISTRY",
    "TWO_QUBIT_NATIVE_NAMES",
    "gate_matrix",
    "QuantumCircuit",
    "Moment",
    "CircuitDag",
    "circuit_moments",
    "first_layer_indices",
    "SingleQubitClifford",
    "single_qubit_clifford_group",
    "nearest_clifford",
    "clifford_replacement_gates",
    "is_clifford_matrix",
    "to_qasm",
    "from_qasm",
    "draw_circuit",
    "random_circuit",
    "random_clifford_circuit",
    "random_parameterized_layer",
]
