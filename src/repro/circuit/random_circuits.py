"""Random circuit generators for tests, RB sequences, and stress studies.

Three flavors:

* :func:`random_clifford_circuit` — uniform-ish random Clifford circuits,
  used for randomized-benchmarking layers and to cross-validate the
  stabilizer simulator against the state-vector simulator;
* :func:`random_circuit` — arbitrary-gate random circuits for property
  tests of the compiler (any circuit must nativize to an equivalent one);
* :func:`random_parameterized_layer` — a layer of random U3 rotations,
  used by characterization micro-benchmarks and CopyCat studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .circuit import QuantumCircuit

__all__ = [
    "random_clifford_circuit",
    "random_circuit",
    "random_parameterized_layer",
]

_CLIFFORD_1Q = ("x", "y", "z", "h", "s", "sdg")
_CLIFFORD_2Q = ("cnot", "cz", "swap")
_GENERIC_1Q = ("x", "y", "z", "h", "s", "t", "tdg", "rx", "ry", "rz")
_GENERIC_2Q = ("cnot", "cz", "swap", "iswap")
_PARAMETRIC = {"rx", "ry", "rz", "phase"}


def random_clifford_circuit(
    num_qubits: int,
    depth: int,
    rng: np.random.Generator,
    two_qubit_probability: float = 0.3,
) -> QuantumCircuit:
    """A random circuit built only from Clifford gates.

    Each layer applies either a random two-qubit Clifford on a random pair
    (with probability *two_qubit_probability*, requires >= 2 qubits) or a
    random single-qubit Clifford on a random qubit.
    """
    circuit = QuantumCircuit(num_qubits, name="random_clifford")
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < two_qubit_probability:
            pair = rng.choice(num_qubits, size=2, replace=False)
            name = _CLIFFORD_2Q[rng.integers(len(_CLIFFORD_2Q))]
            circuit.add(name, (int(pair[0]), int(pair[1])))
        else:
            name = _CLIFFORD_1Q[rng.integers(len(_CLIFFORD_1Q))]
            circuit.add(name, (int(rng.integers(num_qubits)),))
    return circuit


def random_circuit(
    num_qubits: int,
    depth: int,
    rng: np.random.Generator,
    two_qubit_probability: float = 0.3,
) -> QuantumCircuit:
    """A random circuit drawing from the generic gate vocabulary."""
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < two_qubit_probability:
            pair = rng.choice(num_qubits, size=2, replace=False)
            name = _GENERIC_2Q[rng.integers(len(_GENERIC_2Q))]
            circuit.add(name, (int(pair[0]), int(pair[1])))
        else:
            name = _GENERIC_1Q[rng.integers(len(_GENERIC_1Q))]
            qubit = int(rng.integers(num_qubits))
            if name in _PARAMETRIC:
                theta = float(rng.uniform(-np.pi, np.pi))
                circuit.add(name, (qubit,), theta)
            else:
                circuit.add(name, (qubit,))
    return circuit


def random_parameterized_layer(
    num_qubits: int,
    rng: np.random.Generator,
    qubits: Optional[Sequence[int]] = None,
) -> QuantumCircuit:
    """One layer of Haar-ish random U3 rotations on the chosen qubits."""
    circuit = QuantumCircuit(num_qubits, name="random_u3_layer")
    for qubit in qubits if qubits is not None else range(num_qubits):
        theta = float(np.arccos(rng.uniform(-1.0, 1.0)))
        phi = float(rng.uniform(0.0, 2 * np.pi))
        lam = float(rng.uniform(0.0, 2 * np.pi))
        circuit.u3(theta, phi, lam, qubit)
    return circuit
