"""The single-qubit Clifford group and nearest-Clifford replacement.

The CopyCat construction (paper section IV-E1) replaces each non-Clifford
single-qubit gate with the Clifford whose unitary is closest in operator
norm (Eq. 1). Two paper-mandated details are honored here:

* the distance is computed between unitaries, and we quotient out the
  unobservable global phase (see
  :func:`repro.linalg.phase_invariant_distance`);
* Hadamard-like Cliffords — those that map a computational basis state to
  an equal superposition — can be excluded from the candidate set, because
  a CopyCat built from them produces a near-uniform output distribution
  that is insensitive to native-gate choice ("ANGEL does not utilize the H
  as it creates an equal superposition state").

The group is generated from {H, S} products and deduplicated up to phase,
yielding exactly 24 elements, each carried with a short gate-sequence
decomposition so replacements can be spliced back into circuits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError
from ..linalg import phase_invariant_distance, unitaries_equal_up_to_phase
from .gates import Gate, gate_matrix

__all__ = [
    "SingleQubitClifford",
    "single_qubit_clifford_group",
    "nearest_clifford",
    "is_clifford_matrix",
    "clifford_replacement_gates",
]

_GENERATOR_NAMES = ("h", "s")

# Preferred short spellings, tried in order when labelling group elements.
_CANONICAL_WORDS: Tuple[Tuple[str, ...], ...] = (
    (),
    ("x",),
    ("y",),
    ("z",),
    ("h",),
    ("s",),
    ("sdg",),
    ("s", "x"),
    ("sdg", "x"),
    ("h", "s"),
    ("h", "sdg"),
    ("s", "h"),
    ("sdg", "h"),
    ("h", "x"),
    ("h", "y"),
    ("h", "z"),
    ("x", "h"),
    ("s", "h", "s"),
    ("sdg", "h", "sdg"),
    ("s", "h", "sdg"),
    ("sdg", "h", "s"),
    ("h", "s", "h"),
    ("h", "sdg", "h"),
    ("s", "h", "x"),
    ("sdg", "h", "x"),
    ("x", "h", "s"),
    ("x", "h", "sdg"),
    ("s", "x", "h"),
    ("h", "s", "x"),
    ("h", "sdg", "x"),
    ("z", "h", "s"),
    ("s", "s", "h"),
)


def _word_matrix(word: Sequence[str]) -> np.ndarray:
    """Unitary of a gate word applied left-to-right in circuit order."""
    matrix = np.eye(2, dtype=complex)
    for name in word:
        matrix = gate_matrix(name) @ matrix
    return matrix


@dataclass(frozen=True)
class SingleQubitClifford:
    """One element of the 24-element single-qubit Clifford group.

    Attributes:
        label: Short human-readable name, e.g. ``"s.h"`` for S after H.
        word: Gate names in circuit (application) order that realize the
            element using only {x, y, z, h, s, sdg}.
        matrix: The 2x2 unitary (a canonical phase representative).
        hadamard_like: True if the element maps |0> or |1> to an equal
            superposition — the elements ANGEL excludes as replacements.
    """

    label: str
    word: Tuple[str, ...]
    matrix: np.ndarray
    hadamard_like: bool

    def gates(self, qubit: int) -> List[Gate]:
        """The element as concrete gates on *qubit*, in application order."""
        return [Gate(name, (qubit,)) for name in self.word]

    def __repr__(self) -> str:
        return f"SingleQubitClifford({self.label!r})"


def _is_hadamard_like(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """True if the unitary sends a basis state to an even superposition.

    Checked on both |0> and |1>: if either image has |amplitude|^2 within
    tolerance of 1/2 on each basis state, the element behaves like a
    Hadamard for CopyCat purposes (it raises the output entropy).
    """
    for col in range(2):
        probs = np.abs(matrix[:, col]) ** 2
        if np.allclose(probs, 0.5, atol=1e-6):
            return True
    return False


def _generate_group() -> List[SingleQubitClifford]:
    """Enumerate the group by BFS over {H, S} products, dedup up to phase."""
    elements: List[np.ndarray] = [np.eye(2, dtype=complex)]
    frontier: List[np.ndarray] = [np.eye(2, dtype=complex)]
    while frontier:
        new_frontier: List[np.ndarray] = []
        for matrix in frontier:
            for gen_name in _GENERATOR_NAMES:
                candidate = gate_matrix(gen_name) @ matrix
                if not any(
                    unitaries_equal_up_to_phase(candidate, known)
                    for known in elements
                ):
                    elements.append(candidate)
                    new_frontier.append(candidate)
        frontier = new_frontier
    if len(elements) != 24:  # pragma: no cover - structural invariant
        raise CircuitError(
            f"Clifford group generation produced {len(elements)} elements"
        )

    group: List[SingleQubitClifford] = []
    for matrix in elements:
        word = _shortest_word(matrix)
        group.append(
            SingleQubitClifford(
                label=".".join(word) if word else "id",
                word=word,
                matrix=matrix,
                hadamard_like=_is_hadamard_like(matrix),
            )
        )
    return group


def _shortest_word(matrix: np.ndarray) -> Tuple[str, ...]:
    """Find a shortest gate word realizing *matrix* up to phase.

    Tries the curated canonical spellings first, then falls back to a
    breadth-first search over {x, y, z, h, s, sdg} words of length <= 4
    (sufficient for the whole group).
    """
    for word in _CANONICAL_WORDS:
        if unitaries_equal_up_to_phase(matrix, _word_matrix(word)):
            return tuple(word)
    alphabet = ("x", "y", "z", "h", "s", "sdg")
    frontier: List[Tuple[Tuple[str, ...], np.ndarray]] = [
        ((), np.eye(2, dtype=complex))
    ]
    for _length in range(4):
        next_frontier: List[Tuple[Tuple[str, ...], np.ndarray]] = []
        for word, partial in frontier:
            for name in alphabet:
                new_word = word + (name,)
                new_matrix = gate_matrix(name) @ partial
                if unitaries_equal_up_to_phase(matrix, new_matrix):
                    return new_word
                next_frontier.append((new_word, new_matrix))
        frontier = next_frontier
    raise CircuitError("no word found for Clifford element")  # pragma: no cover


_GROUP: Optional[List[SingleQubitClifford]] = None


def single_qubit_clifford_group() -> List[SingleQubitClifford]:
    """The 24-element single-qubit Clifford group (cached)."""
    global _GROUP
    if _GROUP is None:
        _GROUP = _generate_group()
    return list(_GROUP)


def is_clifford_matrix(matrix: np.ndarray, atol: float = 1e-7) -> bool:
    """True if the 2x2 unitary is a Clifford element up to global phase."""
    return any(
        unitaries_equal_up_to_phase(matrix, element.matrix, atol=atol)
        for element in single_qubit_clifford_group()
    )


def nearest_clifford(
    matrix: np.ndarray,
    exclude_hadamard_like: bool = True,
) -> Tuple[SingleQubitClifford, float]:
    """Closest Clifford to *matrix* under the operator norm (paper Eq. 1).

    Args:
        matrix: A 2x2 unitary to replace.
        exclude_hadamard_like: Drop superposition-creating candidates, as
            ANGEL does ("does not utilize the H"). If every candidate would
            be excluded the full group is used as a fallback, which cannot
            happen for the 24-element group but guards future extensions.

    Returns:
        ``(element, distance)`` — the winning group element and its
        phase-invariant operator-norm distance to *matrix*. Ties are broken
        toward shorter replacement words, then lexicographic label, so the
        result is deterministic.
    """
    candidates = single_qubit_clifford_group()
    if exclude_hadamard_like:
        kept = [c for c in candidates if not c.hadamard_like]
        if kept:
            candidates = kept
    best: Optional[SingleQubitClifford] = None
    best_distance = math.inf
    for element in candidates:
        distance = phase_invariant_distance(matrix, element.matrix)
        better = distance < best_distance - 1e-12
        tie = abs(distance - best_distance) <= 1e-12
        if better or (
            tie
            and best is not None
            and (len(element.word), element.label)
            < (len(best.word), best.label)
        ):
            best = element
            best_distance = distance
    assert best is not None
    return best, float(best_distance)


def clifford_replacement_gates(
    gate: Gate, exclude_hadamard_like: bool = True
) -> Tuple[List[Gate], float]:
    """Nearest-Clifford replacement for a single-qubit *gate*.

    Returns the concrete replacement gates on the same qubit and the
    operator-norm distance. Raises :class:`CircuitError` for multi-qubit
    or non-unitary input.
    """
    if not gate.is_unitary or gate.num_qubits != 1:
        raise CircuitError(
            f"nearest-Clifford replacement needs a 1-qubit unitary, got {gate}"
        )
    element, distance = nearest_clifford(
        gate.matrix(), exclude_hadamard_like=exclude_hadamard_like
    )
    return element.gates(gate.qubits[0]), distance
