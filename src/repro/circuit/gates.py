"""Gate definitions and the gate registry.

A :class:`Gate` is an immutable record ``(name, qubits, params)``. Its
semantics (arity, parameter count, unitary matrix, Clifford membership)
come from a :class:`GateSpec` looked up in the module-level registry, so
the circuit IR stays a plain data structure while all gate knowledge lives
in one table.

Conventions
-----------
* **Big-endian qubit ordering.** Qubit 0 is the most-significant bit of a
  state index and the leftmost character of a measured bitstring. For a
  two-qubit gate matrix, the first listed qubit indexes the most
  significant factor of the Kronecker product.
* **Rotation sign.** ``RX(theta) = exp(-i theta X / 2)`` and likewise for
  RY/RZ, matching the usual physics convention (and Qiskit/pyQuil).
* **XY gate.** ``XY(theta) = exp(i theta (XX + YY) / 4)`` — Rigetti's
  parametric iSWAP family; ``XY(pi)`` is exactly iSWAP.
* **CPHASE gate.** ``CPHASE(theta) = diag(1, 1, 1, e^{i theta})``;
  ``CPHASE(pi)`` is exactly CZ.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_REGISTRY",
    "gate_matrix",
    "register_gate",
    "MEASURE",
    "BARRIER",
    "NON_UNITARY_NAMES",
    "TWO_QUBIT_NATIVE_NAMES",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "u3_matrix",
    "phase_matrix",
    "cphase_matrix",
    "xy_matrix",
]

# Names of instructions that are not unitary gates.
MEASURE = "measure"
BARRIER = "barrier"
NON_UNITARY_NAMES = frozenset({MEASURE, BARRIER})

#: The two-qubit native gates of the Rigetti Aspen family studied in the
#: paper. ``cnot`` itself is *not* native — it must be nativized through one
#: of these.
TWO_QUBIT_NATIVE_NAMES = ("xy", "cz", "cphase")

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array([[cos, -sin], [sin, cos]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    phase = cmath.exp(-1j * theta / 2.0)
    return np.array([[phase, 0.0], [0.0, phase.conjugate()]], dtype=complex)


def phase_matrix(lam: float) -> np.ndarray:
    """Phase gate ``diag(1, e^{i lambda})`` (RZ up to global phase)."""
    return np.array([[1.0, 0.0], [0.0, cmath.exp(1j * lam)]], dtype=complex)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit rotation, Qiskit's U3 convention.

    ``U3(theta, phi, lambda) = [[cos(t/2), -e^{i l} sin(t/2)],
    [e^{i p} sin(t/2), e^{i(p+l)} cos(t/2)]]``. Any single-qubit unitary
    equals some U3 up to global phase.
    """
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def cphase_matrix(theta: float) -> np.ndarray:
    """Controlled-phase ``diag(1, 1, 1, e^{i theta})``; CPHASE(pi) == CZ."""
    return np.diag([1.0, 1.0, 1.0, cmath.exp(1j * theta)]).astype(complex)


def xy_matrix(theta: float) -> np.ndarray:
    """Rigetti's parametric XY gate, ``exp(i theta (XX + YY) / 4)``.

    Acts only on the single-excitation subspace ``{|01>, |10>}``:
    ``XY(pi)`` is iSWAP, ``XY(pi/2)`` is sqrt(iSWAP).
    """
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, cos, 1j * sin, 0.0],
            [0.0, 1j * sin, cos, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
        dtype=complex,
    )


def _fixed(matrix: np.ndarray) -> Callable[..., np.ndarray]:
    matrix = np.asarray(matrix, dtype=complex)
    matrix.setflags(write=False)

    def build() -> np.ndarray:
        return matrix

    return build


_ID = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)

_CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _rz_is_clifford(theta: float) -> bool:
    return _is_multiple_of_half_pi(theta)


def _is_multiple_of_half_pi(theta: float, atol: float = 1e-9) -> bool:
    ratio = theta / (math.pi / 2.0)
    return abs(ratio - round(ratio)) < atol


def _is_multiple_of_pi(theta: float, atol: float = 1e-9) -> bool:
    ratio = theta / math.pi
    return abs(ratio - round(ratio)) < atol


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: Canonical lowercase gate name.
        num_qubits: Arity of the gate.
        num_params: Number of real parameters.
        matrix_builder: Callable producing the unitary from the params, or
            ``None`` for non-unitary instructions (measure, barrier).
        clifford_predicate: Callable deciding Clifford membership from the
            params; fixed gates use a constant.
        self_inverse: True if the gate is always its own inverse.
        inverse_name: Name of the inverse gate type when it is a different
            fixed gate (e.g. ``s`` <-> ``sdg``).
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_builder: Optional[Callable[..., np.ndarray]]
    clifford_predicate: Callable[..., bool]
    self_inverse: bool = False
    inverse_name: Optional[str] = None

    @property
    def is_unitary(self) -> bool:
        return self.matrix_builder is not None


def _always(*_params: float) -> bool:
    return True


def _never(*_params: float) -> bool:
    return False


GATE_REGISTRY: Dict[str, GateSpec] = {}


def register_gate(spec: GateSpec) -> GateSpec:
    """Insert *spec* into the global registry, rejecting duplicates."""
    if spec.name in GATE_REGISTRY:
        raise CircuitError(f"gate {spec.name!r} is already registered")
    GATE_REGISTRY[spec.name] = spec
    return spec


def _register_all() -> None:
    one_qubit_fixed = [
        ("id", _ID, True, None),
        ("x", _X, True, None),
        ("y", _Y, True, None),
        ("z", _Z, True, None),
        ("h", _H, True, None),
        ("s", _S, False, "sdg"),
        ("sdg", _SDG, False, "s"),
    ]
    for name, matrix, self_inv, inv in one_qubit_fixed:
        register_gate(
            GateSpec(name, 1, 0, _fixed(matrix), _always, self_inv, inv)
        )
    register_gate(GateSpec("t", 1, 0, _fixed(_T), _never, False, "tdg"))
    register_gate(GateSpec("tdg", 1, 0, _fixed(_TDG), _never, False, "t"))

    register_gate(GateSpec("rx", 1, 1, rx_matrix, _is_multiple_of_half_pi))
    register_gate(GateSpec("ry", 1, 1, ry_matrix, _is_multiple_of_half_pi))
    register_gate(GateSpec("rz", 1, 1, rz_matrix, _rz_is_clifford))
    register_gate(GateSpec("phase", 1, 1, phase_matrix, _is_multiple_of_half_pi))
    register_gate(
        GateSpec(
            "u3",
            1,
            3,
            u3_matrix,
            lambda t, p, l: all(_is_multiple_of_half_pi(a) for a in (t, p, l)),
        )
    )

    register_gate(GateSpec("cnot", 2, 0, _fixed(_CNOT), _always, True))
    register_gate(GateSpec("cz", 2, 0, _fixed(_CZ), _always, True))
    register_gate(GateSpec("swap", 2, 0, _fixed(_SWAP), _always, True))
    register_gate(GateSpec("iswap", 2, 0, _fixed(_ISWAP), _always))
    register_gate(GateSpec("cphase", 2, 1, cphase_matrix, _is_multiple_of_pi))
    register_gate(GateSpec("xy", 2, 1, xy_matrix, _is_multiple_of_pi))

    # Explicit idle period: identity unitary parameterized by its
    # duration in nanoseconds. Never written by programs — the device
    # executor inserts these per moment when idle-noise modelling is on,
    # so the noise model can charge T1/T2 decay to waiting qubits.
    register_gate(
        GateSpec("idle", 1, 1, lambda duration_ns: _ID, _always)
    )

    register_gate(GateSpec(MEASURE, 1, 0, None, _never))
    register_gate(GateSpec(BARRIER, 0, 0, None, _never))


_register_all()


@dataclass(frozen=True)
class Gate:
    """One instruction in a circuit: a named gate on specific qubits.

    Instances are immutable and hashable, so circuits can be diffed and
    native-gate sequences can key on sites. Matrices are built lazily from
    the registry; non-unitary instructions (measure, barrier) have no
    matrix.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        spec = GATE_REGISTRY.get(self.name)
        if spec is None:
            raise CircuitError(f"unknown gate {self.name!r}")
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if spec.name != BARRIER and len(self.qubits) != spec.num_qubits:
            raise CircuitError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(
                f"gate {self.name!r} applied to duplicate qubits {self.qubits}"
            )
        if len(self.params) != spec.num_params:
            raise CircuitError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"negative qubit index in {self}")

    @property
    def spec(self) -> GateSpec:
        return GATE_REGISTRY[self.name]

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_unitary(self) -> bool:
        return self.spec.is_unitary

    @property
    def is_measurement(self) -> bool:
        return self.name == MEASURE

    @property
    def is_barrier(self) -> bool:
        return self.name == BARRIER

    @property
    def is_two_qubit(self) -> bool:
        return self.is_unitary and len(self.qubits) == 2

    @property
    def is_clifford(self) -> bool:
        """Clifford membership (exact, from per-gate parameter rules)."""
        if not self.is_unitary:
            return False
        return bool(self.spec.clifford_predicate(*self.params))

    def matrix(self) -> np.ndarray:
        """The gate unitary; raises for non-unitary instructions."""
        builder = self.spec.matrix_builder
        if builder is None:
            raise CircuitError(f"instruction {self.name!r} has no matrix")
        return builder(*self.params)

    def inverse(self) -> "Gate":
        """The inverse gate as another :class:`Gate` instance."""
        spec = self.spec
        if not spec.is_unitary:
            raise CircuitError(f"cannot invert non-unitary {self.name!r}")
        if spec.self_inverse:
            return self
        if spec.inverse_name is not None:
            return Gate(spec.inverse_name, self.qubits)
        if spec.num_params >= 1 and self.name in (
            "rx",
            "ry",
            "rz",
            "phase",
            "cphase",
            "xy",
        ):
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", self.qubits, (-theta, -lam, -phi))
        if self.name == "iswap":
            return Gate("xy", self.qubits, (-math.pi,))
        raise CircuitError(f"no inverse rule for gate {self.name!r}")

    def remap(self, mapping: Sequence[int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each qubit *q*."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({args}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Convenience lookup: the unitary of gate *name* with *params*."""
    spec = GATE_REGISTRY.get(name)
    if spec is None:
        raise CircuitError(f"unknown gate {name!r}")
    if spec.matrix_builder is None:
        raise CircuitError(f"instruction {name!r} has no matrix")
    return spec.matrix_builder(*params)
