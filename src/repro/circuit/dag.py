"""Dependency-graph views of a circuit: moments and per-qubit wires.

The compiler's scheduler and the CopyCat builder both need structural
views beyond the flat instruction list:

* :func:`circuit_moments` groups instructions into ASAP layers (moments) —
  the schedule used to report depth and to identify the *initial layer*
  whose non-Clifford gates a CopyCat may retain (paper section IV-E1).
* :class:`CircuitDag` exposes predecessor/successor relations between
  instructions, which routing uses to interleave SWAPs correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["Moment", "circuit_moments", "CircuitDag", "first_layer_indices"]


@dataclass(frozen=True)
class Moment:
    """A set of instructions that can execute simultaneously.

    Attributes:
        index: Zero-based moment number (time step).
        items: ``(instruction_index, gate)`` pairs in circuit order.
    """

    index: int
    items: Tuple[Tuple[int, Gate], ...]

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(gate for _, gate in self.items)

    def qubits(self) -> Tuple[int, ...]:
        touched: List[int] = []
        for _, gate in self.items:
            touched.extend(gate.qubits)
        return tuple(sorted(set(touched)))


def circuit_moments(circuit: QuantumCircuit) -> List[Moment]:
    """ASAP-schedule *circuit* into moments.

    Each instruction lands in the earliest moment after all instructions
    sharing a qubit with it. Barriers advance every wire to a common
    moment boundary and are not emitted themselves.
    """
    frontier = [0] * circuit.num_qubits
    buckets: Dict[int, List[Tuple[int, Gate]]] = {}
    for idx, gate in enumerate(circuit):
        if gate.is_barrier:
            level = max(frontier) if frontier else 0
            frontier = [level] * circuit.num_qubits
            continue
        level = max(frontier[q] for q in gate.qubits)
        buckets.setdefault(level, []).append((idx, gate))
        for qubit in gate.qubits:
            frontier[qubit] = level + 1
    return [
        Moment(index=i, items=tuple(buckets[i]))
        for i in sorted(buckets.keys())
    ]


def first_layer_indices(circuit: QuantumCircuit) -> List[int]:
    """Instruction indices in the circuit's first moment.

    This is the *initial layer* of paper section IV-E1: the CopyCat
    builder is allowed to keep non-Clifford gates here (up to a budget) so
    the probe state is not an all-Clifford, maximum-entropy state.
    """
    moments = circuit_moments(circuit)
    if not moments:
        return []
    return [idx for idx, _ in moments[0].items]


@dataclass
class CircuitDag:
    """Explicit dependency DAG over instruction indices.

    Edges connect each instruction to the next instruction on each of its
    qubits. Construction is linear in circuit size.
    """

    circuit: QuantumCircuit
    predecessors: Dict[int, List[int]] = field(default_factory=dict)
    successors: Dict[int, List[int]] = field(default_factory=dict)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "CircuitDag":
        dag = cls(circuit=circuit)
        last_on_qubit: Dict[int, int] = {}
        for idx, gate in enumerate(circuit):
            dag.predecessors[idx] = []
            dag.successors[idx] = []
            if gate.is_barrier:
                # A barrier depends on every open wire and resets them all.
                for prev in set(last_on_qubit.values()):
                    dag._link(prev, idx)
                for qubit in range(circuit.num_qubits):
                    last_on_qubit[qubit] = idx
                continue
            for qubit in gate.qubits:
                prev = last_on_qubit.get(qubit)
                if prev is not None:
                    dag._link(prev, idx)
                last_on_qubit[qubit] = idx
        return dag

    def _link(self, src: int, dst: int) -> None:
        if dst not in self.successors[src]:
            self.successors[src].append(dst)
        if src not in self.predecessors[dst]:
            self.predecessors[dst].append(src)

    def topological_order(self) -> List[int]:
        """Instruction indices in a valid execution order (Kahn's algo)."""
        in_degree = {i: len(p) for i, p in self.predecessors.items()}
        ready = sorted(i for i, d in in_degree.items() if d == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in self.successors[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        return order

    def longest_path_length(self) -> int:
        """Number of instructions on the critical path."""
        order = self.topological_order()
        depth: Dict[int, int] = {}
        best = 0
        for node in order:
            preds = self.predecessors[node]
            depth[node] = 1 + max((depth[p] for p in preds), default=0)
            best = max(best, depth[node])
        return best
