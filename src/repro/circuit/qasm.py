"""Minimal OpenQASM 2 import/export for the circuit IR.

Programs in the evaluation suite originate from QASM-based benchmark
collections (QASMBench etc.), so the library can round-trip the gate
vocabulary it uses. This is deliberately a subset of OpenQASM 2: one
quantum register, one classical register, no conditionals, no ``gate``
definitions — enough to serialize every circuit the paper's pipeline
produces and to ingest the standard benchmark files.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from ..exceptions import QasmError
from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["to_qasm", "from_qasm"]

# IR gate name -> QASM spelling (and back).
_TO_QASM_NAME = {
    "cnot": "cx",
    "phase": "u1",
    "cphase": "cp",
    "xy": "xy",  # non-standard; emitted for completeness, parsed back
    "iswap": "iswap",
    "id": "id",
}
_FROM_QASM_NAME = {v: k for k, v in _TO_QASM_NAME.items()}
_FROM_QASM_NAME.update({"cx": "cnot", "u1": "phase", "cp": "cphase", "u": "u3"})

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";'


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize *circuit* to OpenQASM 2 text."""
    lines = [_HEADER, f"qreg q[{circuit.num_qubits}];"]
    measured = circuit.measured_qubits()
    if measured:
        lines.append(f"creg c[{len(measured)}];")
    clbit_of = {qubit: i for i, qubit in enumerate(measured)}
    for gate in circuit:
        if gate.is_barrier:
            lines.append("barrier q;")
            continue
        if gate.is_measurement:
            qubit = gate.qubits[0]
            lines.append(f"measure q[{qubit}] -> c[{clbit_of[qubit]}];")
            continue
        name = _TO_QASM_NAME.get(gate.name, gate.name)
        params = ""
        if gate.params:
            params = "(" + ",".join(_format_angle(p) for p in gate.params) + ")"
        qubits = ",".join(f"q[{q}]" for q in gate.qubits)
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"


def _format_angle(value: float) -> str:
    """Render an angle, preferring exact pi fractions for readability."""
    for denom in (1, 2, 3, 4, 6, 8):
        for numer_sign in (1, -1):
            target = numer_sign * math.pi / denom
            if abs(value - target) < 1e-12:
                sign = "-" if numer_sign < 0 else ""
                return f"{sign}pi/{denom}" if denom != 1 else f"{sign}pi"
    if abs(value) < 1e-12:
        return "0"
    return repr(value)


_TOKEN_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][\w]*)\s*(?:\((?P<params>[^)]*)\))?\s*(?P<args>.*)$"
)
_QREG_RE = re.compile(r"^qreg\s+(?P<name>\w+)\s*\[(?P<size>\d+)\]$")
_CREG_RE = re.compile(r"^creg\s+\w+\s*\[\d+\]$")
_MEASURE_RE = re.compile(
    r"^measure\s+\w+\[(?P<q>\d+)\]\s*->\s*\w+\[\d+\]$"
)
_QUBIT_RE = re.compile(r"\w+\[(\d+)\]")


def _parse_angle(text: str) -> float:
    """Evaluate a QASM angle expression (pi fractions and arithmetic)."""
    text = text.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[-+*/.()\d\se]+", text):
        raise QasmError(f"unsupported angle expression {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate angle {text!r}") from exc


def from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2 *text* into a :class:`QuantumCircuit`.

    Supports the single-register subset produced by :func:`to_qasm` plus
    the common aliases (``cx``, ``u1``, ``cp``, ``u``).
    """
    circuit: QuantumCircuit | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        for statement in filter(None, (s.strip() for s in line.split(";"))):
            circuit = _parse_statement(statement, circuit)
    if circuit is None:
        raise QasmError("no qreg declaration found")
    return circuit


def _parse_statement(
    statement: str, circuit: QuantumCircuit | None
) -> QuantumCircuit | None:
    if statement.startswith("OPENQASM") or statement.startswith("include"):
        return circuit

    qreg = _QREG_RE.match(statement)
    if qreg:
        if circuit is not None:
            raise QasmError("multiple qreg declarations are not supported")
        return QuantumCircuit(int(qreg.group("size")))
    if _CREG_RE.match(statement):
        return circuit

    if circuit is None:
        raise QasmError(f"statement before qreg: {statement!r}")

    measure = _MEASURE_RE.match(statement)
    if measure:
        circuit.measure(int(measure.group("q")))
        return circuit

    if statement.startswith("barrier"):
        circuit.barrier()
        return circuit

    token = _TOKEN_RE.match(statement)
    if not token:
        raise QasmError(f"cannot parse statement {statement!r}")
    qasm_name = token.group("name")
    name = _FROM_QASM_NAME.get(qasm_name, qasm_name)
    params: Tuple[float, ...] = ()
    if token.group("params"):
        params = tuple(
            _parse_angle(p) for p in token.group("params").split(",")
        )
    qubits = tuple(int(m) for m in _QUBIT_RE.findall(token.group("args")))
    try:
        circuit.append(Gate(name, qubits, params))
    except Exception as exc:
        raise QasmError(f"invalid statement {statement!r}: {exc}") from exc
    return circuit
