"""Device topology and fidelity report (paper Fig. 17).

The paper's Fig. 17 color-codes Aspen-11's qubits by readout fidelity
and its links by CPHASE fidelity. The text analogue here is a per-link
table of calibrated two-qubit fidelities plus per-qubit readout, and an
octagon-lattice sketch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = ["fig17_device_map"]


def fig17_device_map(
    context: Optional[ExperimentContext] = None,
    max_links: Optional[int] = None,
) -> ExperimentResult:
    """Fig. 17: device topology, two-qubit fidelities, readout map."""
    context = context or ExperimentContext.create()
    device = context.device
    calibration = context.calibration
    rows: List[Tuple] = []
    links = device.topology.links
    if max_links is not None:
        links = links[:max_links]
    for link in links:
        fidelities = {}
        for gate in ("xy", "cz", "cphase"):
            if gate in device.supported_gates(*link):
                fidelities[gate] = calibration.two_qubit_fidelity(link, gate)
        best = calibration.best_native_gate(link)
        rows.append(
            (
                f"{link[0]}-{link[1]}",
                *(
                    f"{fidelities[g]:.4f}" if g in fidelities else "-"
                    for g in ("xy", "cz", "cphase")
                ),
                best.upper(),
            )
        )
    readout = [
        calibration.readout_fidelity(q) for q in device.topology.qubits
    ]
    notes = [
        f"device={device.name}: {device.topology.num_qubits} qubits,"
        f" {device.topology.num_links} links",
        f"readout fidelity min/mean/max: {min(readout):.3f}/"
        f"{sum(readout) / len(readout):.3f}/{max(readout):.3f}",
        "octagon lattice; qubit ids are octagon*10 + ring position",
    ]
    return ExperimentResult(
        experiment_id="fig17",
        title="Device topology and calibrated fidelity map",
        columns=("link", "XY fid", "CZ fid", "CPHASE fid", "best"),
        rows=rows,
        series={"readout_fidelity": readout},
        notes=notes,
        summary=(
            f"{device.topology.num_links} active links; best calibrated"
            " gate varies link to link."
        ),
    )
