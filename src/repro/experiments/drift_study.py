"""Drift studies: Figs. 8, 21, and 22.

Fig. 8 contrasts the device's *true* drifting error rate with the
plateaued values calibration publishes between refreshes. Figs. 21-22
re-run a GHZ_n4 program many times inside one calibration window and
watch the runtime-best sequence wander — the paper's honest accounting
of when ANGEL's learned sequence stops being optimal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..compiler import transpile
from ..core.angel import Angel, AngelConfig
from ..core.policies import noise_adaptive_sequence
from ..core.sequence import enumerate_sequences
from ..device.topology import Link
from ..programs import ghz_n4
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = [
    "fig8_stale_calibration",
    "fig21_repeated_executions",
    "fig22_best_sequence_stability",
]

_HOUR_US = 3_600e6


def fig8_stale_calibration(
    context: Optional[ExperimentContext] = None,
    link_index: int = 0,
    hours: float = 48.0,
    step_hours: float = 1.0,
) -> ExperimentResult:
    """Fig. 8: true vs reported error rate of each gate over time.

    Advances the clock hour by hour; at each step records the true
    per-pulse error (1 - fidelity) and the value calibration currently
    publishes. The reported series moves only at cadence refreshes —
    the paper's plateaus — while the truth drifts continuously.
    """
    context = context or ExperimentContext.create(drift_hours=0.0)
    link = context.pick_link(link_index)
    gates = context.device.supported_gates(*link)
    series: Dict[str, List[float]] = {}
    for gate in gates:
        series[f"true_error_{gate}"] = []
        series[f"reported_error_{gate}"] = []
    steps = int(round(hours / step_hours))
    refreshes = 0
    for _ in range(steps):
        context.device.advance_time(step_hours * _HOUR_US)
        refreshes += len(context.service.maybe_recalibrate())
        for gate in gates:
            series[f"true_error_{gate}"].append(
                1.0 - context.device.true_pulse_fidelity(link, gate)
            )
            series[f"reported_error_{gate}"].append(
                1.0 - context.calibration.two_qubit_fidelity(link, gate)
            )
    rows: List[Tuple] = []
    for gate in gates:
        true = series[f"true_error_{gate}"]
        reported = series[f"reported_error_{gate}"]
        plateaus = sum(
            1
            for i in range(1, len(reported))
            if abs(reported[i] - reported[i - 1]) < 1e-12
        )
        divergence = max(abs(t - r) for t, r in zip(true, reported))
        rows.append(
            (
                gate.upper(),
                f"{min(true):.4f}..{max(true):.4f}",
                plateaus,
                len(reported) - 1,
                divergence,
            )
        )
    return ExperimentResult(
        experiment_id="fig8",
        title=f"True vs calibration-reported error rates over {hours:.0f}h (link {link})",
        columns=(
            "gate",
            "true error range",
            "plateau steps",
            "total steps",
            "max |true - reported|",
        ),
        rows=rows,
        series=series,
        notes=[
            f"device={context.device.name}; cadence refreshes observed: {refreshes}",
            "reported error stays flat between refreshes while the true"
            " error drifts (the paper's plateaus)",
        ],
        summary=(
            "Calibration records plateau between refreshes while the"
            " device drifts underneath them."
        ),
    )


def fig21_repeated_executions(
    context: Optional[ExperimentContext] = None,
    iterations: int = 10,
    gap_hours: float = 1.0,
    shots: int = 1024,
    probe_shots: int = 1024,
) -> ExperimentResult:
    """Fig. 21: GHZ_n4 repeatedly executed inside a calibration window.

    Each iteration measures (a) the fixed noise-adaptive sequence,
    (b) the sequence ANGEL learned at iteration 0, and (c) that
    iteration's runtime-best over the 27 link-uniform sequences; the
    device drifts between iterations. ANGEL usually stays ahead of the
    baseline; under strong drift its edge narrows (the paper's second
    example).
    """
    context = context or ExperimentContext.create()
    compiled = transpile(ghz_n4(), context.device, context.calibration)
    ideal = compiled.ideal_distribution()
    options = compiled.gate_options()
    na_seq = noise_adaptive_sequence(compiled.sites, context.calibration, options)
    angel = Angel(
        context.device,
        context.calibration,
        AngelConfig(probe_shots=probe_shots, seed=int(context.rng.integers(2**31))),
    )
    learned = angel.select(compiled).sequence

    rows: List[Tuple] = []
    series = {"baseline": [], "angel": [], "runtime_best": []}
    best_labels: List[str] = []
    for iteration in range(iterations):
        base_sr = context.measured_success_rate(
            compiled.nativized(na_seq, name_suffix="_f21b"), ideal, shots
        )
        angel_sr = context.measured_success_rate(
            compiled.nativized(learned, name_suffix="_f21a"), ideal, shots
        )
        best_sr, best_label = -1.0, ""
        for sequence in enumerate_sequences(compiled.sites, options, "link"):
            sr = context.measured_success_rate(
                compiled.nativized(sequence, name_suffix="_f21r"),
                ideal,
                shots,
            )
            if sr > best_sr:
                best_sr, best_label = sr, sequence.label()
        series["baseline"].append(base_sr)
        series["angel"].append(angel_sr)
        series["runtime_best"].append(best_sr)
        best_labels.append(best_label)
        rows.append((iteration, base_sr, angel_sr, best_sr, best_label))
        context.device.advance_time(gap_hours * _HOUR_US)
    wins = sum(1 for b, a in zip(series["baseline"], series["angel"]) if a > b)
    return ExperimentResult(
        experiment_id="fig21",
        title="GHZ_n4 repeated executions within a calibration window",
        columns=("iteration", "baseline SR", "ANGEL SR", "runtime-best SR", "best sequence"),
        rows=rows,
        series=series,
        notes=[
            f"device={context.device.name} iterations={iterations}"
            f" gap={gap_hours}h shots={shots}",
            f"learned sequence (iteration 0): {learned.label()}",
            f"distinct runtime-best sequences: {len(set(best_labels))}",
        ],
        summary=(
            f"ANGEL beat the baseline in {wins}/{iterations} iterations;"
            " drift varies the runtime-best sequence across iterations."
        ),
    )


def fig22_best_sequence_stability(
    context: Optional[ExperimentContext] = None,
    iterations: int = 10,
    gap_hours: float = 1.0,
    shots: int = 1024,
) -> ExperimentResult:
    """Fig. 22: histogram of which sequence is runtime-best per iteration.

    A stable winner (one sequence dominating most iterations) is what
    lets ANGEL's one-shot learning stay valid; a flat histogram marks
    the strong-drift regime where any learned sequence decays.
    """
    context = context or ExperimentContext.create()
    compiled = transpile(ghz_n4(), context.device, context.calibration)
    ideal = compiled.ideal_distribution()
    options = compiled.gate_options()
    histogram: Dict[str, int] = {}
    for _ in range(iterations):
        best_sr, best_label = -1.0, ""
        for sequence in enumerate_sequences(compiled.sites, options, "link"):
            sr = context.measured_success_rate(
                compiled.nativized(sequence, name_suffix="_f22"), ideal, shots
            )
            if sr > best_sr:
                best_sr, best_label = sr, sequence.label()
        histogram[best_label] = histogram.get(best_label, 0) + 1
        context.device.advance_time(gap_hours * _HOUR_US)
    ranked = sorted(histogram.items(), key=lambda kv: -kv[1])
    rows = [(label, count, count / iterations) for label, count in ranked]
    stability = ranked[0][1] / iterations
    return ExperimentResult(
        experiment_id="fig22",
        title="Distribution of the runtime-best sequence across iterations",
        columns=("sequence", "wins", "fraction"),
        rows=rows,
        notes=[
            f"device={context.device.name} iterations={iterations}"
            f" gap={gap_hours}h shots={shots}",
        ],
        summary=(
            f"The most stable sequence wins {stability:.0%} of iterations"
            f" ({len(ranked)} distinct winners)."
        ),
    )
