"""Characterization studies: Figs. 5, 6, and 7 (paper Section III).

Micro-benchmark A rotates the control qubit by ``RX(theta)`` before a
CNOT; micro-benchmark B uses ``RY(theta)``. Sweeping theta prepares the
link in different quantum states, exposing the state dependence of each
native gate's effective error — the property randomized benchmarking
averages away.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..device.native_gates import cnot_decomposition, u3_native
from ..device.topology import Link
from ..sim.statevector import ideal_distribution
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = [
    "micro_benchmark_circuit",
    "fig5_state_dependence",
    "fig6_all_links",
    "fig7_calibration_cycles",
]

#: The paper's theta grid: 0, pi/3, pi/2, 2pi/3, pi.
THETA_GRID: Tuple[float, ...] = (
    0.0,
    math.pi / 3,
    math.pi / 2,
    2 * math.pi / 3,
    math.pi,
)

_THETA_LABELS = ("0", "pi/3", "pi/2", "2pi/3", "pi")


def micro_benchmark_circuit(
    link: Link, native: str, theta: float, axis: str = "x"
) -> QuantumCircuit:
    """Micro-benchmark A (axis='x') or B (axis='y') of paper Fig. 4.

    Rotates the control qubit by *theta* about the chosen axis (emitted
    directly in native gates), then applies one CNOT through *native*.
    """
    qubit_a, qubit_b = link
    circuit = QuantumCircuit(
        max(link) + 1, name=f"micro_{axis}{theta:.2f}_{native}"
    )
    if axis == "x":
        rotation = u3_native(theta, -math.pi / 2, math.pi / 2, qubit_a)
    elif axis == "y":
        rotation = u3_native(theta, 0.0, 0.0, qubit_a)
    else:
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
    for gate in rotation:
        circuit.append(gate)
    for gate in cnot_decomposition(native, qubit_a, qubit_b):
        circuit.append(gate)
    circuit.measure(qubit_a)
    circuit.measure(qubit_b)
    return circuit


def _micro_ideal(theta: float) -> Dict[str, float]:
    """Ideal distribution of the micro-benchmark (axis-independent)."""
    p1 = math.sin(theta / 2.0) ** 2
    dist = {}
    if 1 - p1 > 1e-12:
        dist["00"] = 1 - p1
    if p1 > 1e-12:
        dist["11"] = p1
    return dist


def fig5_state_dependence(
    context: Optional[ExperimentContext] = None,
    link_index: int = 0,
    shots: int = 2048,
    axis: str = "y",
) -> ExperimentResult:
    """Fig. 5: SR of the micro-benchmark vs theta, per native gate.

    On one link, which gate wins depends on the prepared state — the
    calibration number (one scalar per gate) cannot express this.
    """
    context = context or ExperimentContext.create()
    link = context.pick_link(link_index)
    gates = context.device.supported_gates(*link)
    rows: List[Tuple] = []
    winners: List[str] = []
    series: Dict[str, List[float]] = {g: [] for g in gates}
    for theta, label in zip(THETA_GRID, _THETA_LABELS):
        ideal = _micro_ideal(theta)
        srs = {}
        for native in gates:
            circuit = micro_benchmark_circuit(link, native, theta, axis)
            srs[native] = context.measured_success_rate(circuit, ideal, shots)
            series[native].append(srs[native])
        winner = max(srs, key=srs.get)
        winners.append(winner)
        rows.append(
            (label, *(srs[g] for g in gates), winner.upper())
        )
    noise_adaptive = context.calibration.best_native_gate(link)
    return ExperimentResult(
        experiment_id="fig5",
        title=f"Micro-benchmark {'A' if axis == 'x' else 'B'} SR vs theta on link {link}",
        columns=("theta", *(g.upper() for g in gates), "winner"),
        rows=rows,
        series=series,
        notes=[
            f"device={context.device.name} link={link} shots={shots}",
            f"noise-adaptive pick for this link: {noise_adaptive.upper()}",
            f"distinct winners across theta: {len(set(winners))}",
        ],
        summary=(
            f"The SR-maximizing gate varies with the prepared state"
            f" ({len(set(winners))} distinct winners across"
            f" {len(THETA_GRID)} theta values)."
        ),
    )


def fig6_all_links(
    context: Optional[ExperimentContext] = None,
    axis: str = "y",
    max_links: Optional[int] = None,
    exact: bool = True,
    shots: int = 1024,
) -> ExperimentResult:
    """Fig. 6: micro-benchmark B across every device link.

    Replicates the paper's extensive characterization (1460 circuits on
    Aspen-M-1: 5 thetas x links x available gates). Per link we record
    which gate wins at each theta; the headline statistics are how many
    links have a single always-winning gate versus state-dependent
    winners.
    """
    context = context or ExperimentContext.create()
    links = context.device.topology.links
    if max_links is not None:
        links = links[:max_links]
    circuits_run = 0
    always_same = 0
    state_dependent = 0
    per_gate_wins: Dict[str, int] = {}
    all_srs: List[float] = []
    for link in links:
        gates = context.device.supported_gates(*link)
        if not gates:
            continue
        winners = []
        for theta in THETA_GRID:
            ideal = _micro_ideal(theta)
            srs = {}
            for native in gates:
                circuit = micro_benchmark_circuit(link, native, theta, axis)
                if exact:
                    srs[native] = context.exact_success_rate(circuit, ideal)
                else:
                    srs[native] = context.measured_success_rate(
                        circuit, ideal, shots
                    )
                circuits_run += 1
                all_srs.append(srs[native])
            winners.append(max(srs, key=srs.get))
        if len(set(winners)) == 1:
            always_same += 1
            per_gate_wins[winners[0]] = per_gate_wins.get(winners[0], 0) + 1
        else:
            state_dependent += 1
    quantiles = np.percentile(all_srs, [0, 25, 50, 75, 100])
    rows = [
        ("links characterized", len(links), ""),
        ("circuits run", circuits_run, "(paper: 1460 on Aspen-M-1)"),
        ("links with one always-best gate", always_same, ""),
        ("links with state-dependent winner", state_dependent, ""),
        ("SR min/median/max", f"{quantiles[0]:.3f}/{quantiles[2]:.3f}/{quantiles[4]:.3f}", ""),
    ]
    for gate, count in sorted(per_gate_wins.items()):
        rows.append((f"always-best links won by {gate.upper()}", count, ""))
    return ExperimentResult(
        experiment_id="fig6",
        title="Micro-benchmark SR distribution across all device links",
        columns=("quantity", "value", "detail"),
        rows=rows,
        series={"all_success_rates": all_srs},
        notes=[
            f"device={context.device.name} axis={axis} "
            + ("exact distributions" if exact else f"shots={shots}"),
        ],
        summary=(
            f"{state_dependent}/{always_same + state_dependent} links have"
            " a state-dependent best gate."
        ),
    )


def fig7_calibration_cycles(
    context: Optional[ExperimentContext] = None,
    link_index: int = 0,
    shots: int = 2048,
    cycle_gap_hours: float = 24.0,
    axis: str = "y",
) -> ExperimentResult:
    """Fig. 7: the same micro-benchmark across two calibration cycles.

    Runs the theta sweep, lets the device drift past a calibration
    cycle (with the cadence refreshing what it refreshes), and repeats.
    The per-theta winners change between cycles, so characterization
    results go obsolete.
    """
    context = context or ExperimentContext.create()
    link = context.pick_link(link_index)
    gates = context.device.supported_gates(*link)

    def sweep() -> Dict[float, Dict[str, float]]:
        data: Dict[float, Dict[str, float]] = {}
        for theta in THETA_GRID:
            ideal = _micro_ideal(theta)
            data[theta] = {
                native: context.measured_success_rate(
                    micro_benchmark_circuit(link, native, theta, axis),
                    ideal,
                    shots,
                )
                for native in gates
            }
        return data

    cycle1 = sweep()
    context.device.advance_time(cycle_gap_hours * 3_600e6)
    context.service.maybe_recalibrate()
    cycle2 = sweep()

    rows: List[Tuple] = []
    changed = 0
    for theta, label in zip(THETA_GRID, _THETA_LABELS):
        winner1 = max(cycle1[theta], key=cycle1[theta].get)
        winner2 = max(cycle2[theta], key=cycle2[theta].get)
        if winner1 != winner2:
            changed += 1
        rows.append(
            (
                label,
                winner1.upper(),
                cycle1[theta][winner1],
                winner2.upper(),
                cycle2[theta][winner2],
                "yes" if winner1 != winner2 else "",
            )
        )
    return ExperimentResult(
        experiment_id="fig7",
        title=f"Micro-benchmark winners across two calibration cycles (link {link})",
        columns=(
            "theta",
            "cycle-1 winner",
            "cycle-1 SR",
            "cycle-2 winner",
            "cycle-2 SR",
            "changed",
        ),
        rows=rows,
        notes=[
            f"device={context.device.name} link={link} shots={shots}",
            f"cycle gap: {cycle_gap_hours}h of drift + cadence refresh",
        ],
        summary=(
            f"The winning gate changed for {changed}/{len(THETA_GRID)}"
            " prepared states between calibration cycles."
        ),
    )
