"""Shared experiment setup: device, calibration, and the staleness clock.

The paper's experiments run on a machine whose last full calibration lies
hours in the past, with per-gate refresh cadences keeping XY/CZ fresher
than CPHASE. :func:`ExperimentContext.create` reproduces that protocol:
build a device, calibrate everything, then advance simulated wall-clock
in steps while the calibration service refreshes only what its cadence
allows. Every experiment in this package accepts a context so studies
compose on the same device state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..device.calibration import CalibrationData, CalibrationService
from ..device.device import RigettiAspenDevice
from ..device.presets import DEFAULT_PROFILE, NoiseProfile, aspen11, aspen_m1
from ..device.topology import Link
from ..exceptions import ReproError
from ..exec import BatchExecutor, Job, LocalBackend, get_executor
from ..metrics import success_rate
from ..obs import JsonlSpanSink, MetricsRegistry, Tracer
from ..obs import runtime as obs
from ..service import (
    CloudQPUService,
    FaultProfile,
    RemoteBackend,
    RetryPolicy,
    fault_profile as resolve_fault_profile,
)

__all__ = ["ExperimentContext"]

_HOUR_US = 3_600e6


@dataclass
class ExperimentContext:
    """A device plus its calibration service, at some point in time.

    Attributes:
        device: The simulated Aspen machine.
        service: The calibration service publishing (possibly stale)
            records for it.
        rng: Experiment-level randomness (seeded).
        backend_name: ``"local"`` (in-process device, the default) or
            ``"remote"`` (through the emulated cloud QPU service).
        fault_profile: Resolved fault profile for the remote backend.
        fault_seed: Seed for the service's fault stream and the remote
            backend's backoff jitter.
        retry_policy: Remote-client resilience tunables (None = default).
        parallel: Run executor batches through the snapshot parallel
            discipline (persistent worker pool) instead of sequentially.
        max_workers: Worker-pool size for parallel batches (``None`` =
            the pool's own default; 1 forces the in-process snapshot
            path).
    """

    device: RigettiAspenDevice
    service: CalibrationService
    rng: np.random.Generator
    backend_name: str = "local"
    fault_profile: Optional[FaultProfile] = None
    fault_seed: int = 0
    retry_policy: Optional[RetryPolicy] = None
    parallel: bool = False
    max_workers: Optional[int] = None
    optimization_level: int = 0
    tracer: Optional[Tracer] = field(
        default=None, repr=False, compare=False
    )
    metrics_registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )
    _remote_executor: Optional[BatchExecutor] = field(
        default=None, repr=False, compare=False
    )
    _parallel_executor: Optional[BatchExecutor] = field(
        default=None, repr=False, compare=False
    )
    _obs_previous: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )
    _closed: bool = field(default=False, repr=False, compare=False)

    @property
    def calibration(self) -> CalibrationData:
        return self.service.data

    @classmethod
    def create(
        cls,
        device_name: str = "aspen-11",
        seed: int = 11,
        calibration_seed: int = 3,
        drift_hours: float = 30.0,
        drift_step_hours: float = 3.0,
        profile: NoiseProfile = DEFAULT_PROFILE,
        idle_noise: bool = False,
        crosstalk_zz: float = 0.0,
        backend: str = "local",
        fault_profile: object = "none",
        fault_seed: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        sim_cache: bool = True,
        batched_sim: bool = True,
        clifford_fast_path: bool = False,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        optimization_level: int = 0,
        trace: Optional[str] = None,
        metrics: bool = False,
    ) -> "ExperimentContext":
        """Build a device and age it under the calibration cadence.

        Args:
            device_name: ``"aspen-11"`` or ``"aspen-m-1"``.
            seed: Device parameter/drift seed (a different seed is a
                different chip day).
            calibration_seed: Estimation-noise seed.
            drift_hours: Total simulated hours since the full
                calibration. XY/CZ refresh every 4h, CPHASE every 24h
                (the paper's Aspen-11 cadence asymmetry), so at the
                default 30h the CPHASE records are up to a day stale.
            drift_step_hours: Clock step between cadence checks.
            idle_noise / crosstalk_zz: Optional extra device physics
                (see :class:`~repro.device.device.RigettiAspenDevice`).
            backend: ``"local"`` or ``"remote"`` — whether jobs go
                straight to the device or through the emulated cloud
                QPU service (:mod:`repro.service`).
            fault_profile: A preset name (``none``/``light``/``heavy``/
                ``flaky``) or a :class:`~repro.service.FaultProfile`;
                only meaningful with ``backend="remote"``.
            fault_seed: Seed for fault injection and backoff jitter.
            retry_policy: Remote-client resilience tunables.
            sim_cache: Enable the device's simulation cache hierarchy
                (prefix-state + distribution memoization); disable for
                A/B runs against the uncached simulation path.
            batched_sim: Stack candidate batches into shared-suffix
                contractions (the batched engine); disable for A/B runs
                against the one-at-a-time path.
            clifford_fast_path: Route pure-Clifford probes through the
                stabilizer simulator with a white-noise perturbative
                treatment where the coherent-error budget allows
                (off by default: its counts are distribution-level
                approximations, differential-test-bounded rather than
                bit-identical).
            parallel: Dispatch executor batches through the persistent
                worker pool (snapshot discipline) instead of running
                them sequentially.
            max_workers: Pool size for parallel batches.
            optimization_level: Pre-routing circuit optimization level
                applied by :meth:`transpile` (0 = off, the
                bit-identical default; see
                :mod:`repro.compiler.optimize`).
            trace: Path to stream a JSONL span trace to; installs a
                :class:`~repro.obs.Tracer` bound to the device clock for
                the lifetime of the context (until :meth:`close`).
            metrics: Install a process-wide
                :class:`~repro.obs.MetricsRegistry` absorbing executor,
                cache, and service counters (implied by ``trace``).
        """
        if device_name == "aspen-11":
            device = aspen11(
                seed=seed,
                profile=profile,
                idle_noise=idle_noise,
                crosstalk_zz=crosstalk_zz,
                sim_cache=sim_cache,
                batched_sim=batched_sim,
                clifford_fast_path=clifford_fast_path,
            )
        elif device_name == "aspen-m-1":
            device = aspen_m1(
                seed=seed,
                profile=profile,
                idle_noise=idle_noise,
                crosstalk_zz=crosstalk_zz,
                sim_cache=sim_cache,
                batched_sim=batched_sim,
                clifford_fast_path=clifford_fast_path,
            )
        else:
            raise ReproError(f"unknown device preset {device_name!r}")
        if backend not in ("local", "remote"):
            raise ReproError(
                f"unknown backend {backend!r}; expected 'local' or 'remote'"
            )
        resolved_profile = (
            fault_profile
            if isinstance(fault_profile, FaultProfile)
            else resolve_fault_profile(str(fault_profile))
        )
        service = CalibrationService(device, seed=calibration_seed)
        service.full_calibration()
        elapsed = 0.0
        while elapsed < drift_hours:
            step = min(drift_step_hours, drift_hours - elapsed)
            device.advance_time(step * _HOUR_US)
            service.maybe_recalibrate()
            elapsed += step
        tracer = None
        registry = None
        previous = None
        if trace is not None or metrics:
            registry = MetricsRegistry()
            if trace is not None:
                tracer = Tracer(
                    clock_us=lambda: device.clock_us,
                    sink=JsonlSpanSink(trace),
                    keep_spans=False,
                    registry=registry,
                )
            previous = obs.install(tracer, registry)
        return cls(
            device=device,
            service=service,
            rng=np.random.default_rng(seed * 7919 + calibration_seed),
            backend_name=backend,
            fault_profile=resolved_profile,
            fault_seed=fault_seed,
            retry_policy=retry_policy,
            parallel=parallel,
            max_workers=max_workers,
            optimization_level=optimization_level,
            tracer=tracer,
            metrics_registry=registry,
            _obs_previous=previous,
        )

    # ------------------------------------------------------------------
    # Common measurement helpers
    # ------------------------------------------------------------------
    def transpile(self, circuit, layout=None):
        """Compile *circuit* for this context's device and calibration.

        Applies the context's ``optimization_level``, so experiments and
        the CLI pick up ``--opt-level`` without threading the knob
        through every call site.
        """
        from ..compiler import transpile as _transpile

        return _transpile(
            circuit,
            self.device,
            self.calibration,
            layout=layout,
            optimization_level=self.optimization_level,
        )

    def exact_success_rate(self, circuit, ideal) -> float:
        """Shot-noise-free SR of a native circuit (oracle view)."""
        return success_rate(ideal, self.device.noisy_distribution(circuit))

    @property
    def executor(self) -> BatchExecutor:
        """The execution service shared by everything using this device.

        With ``backend_name="remote"`` this is a dedicated executor over
        a :class:`~repro.service.RemoteBackend` (one cloud service per
        context); otherwise the device's shared local executor. With
        ``parallel`` the executor runs batches in ``"parallel"`` mode —
        local contexts get a dedicated executor owning its backend (and
        its persistent worker pool), so the shared sequential ledger is
        untouched; remote contexts forward the mode through the cloud
        service to its local fallback.
        """
        if self.backend_name == "local":
            if not self.parallel:
                return get_executor(self.device)
            if self._parallel_executor is None:
                self._parallel_executor = BatchExecutor(
                    LocalBackend(self.device),
                    mode="parallel",
                    max_workers=self.max_workers,
                )
            return self._parallel_executor
        if self._remote_executor is None:
            qpu_service = CloudQPUService(
                self.device,
                self.fault_profile if self.fault_profile is not None
                else resolve_fault_profile("none"),
                seed=self.fault_seed,
            )
            self._remote_executor = BatchExecutor(
                RemoteBackend(
                    qpu_service, self.retry_policy, seed=self.fault_seed
                ),
                mode="parallel" if self.parallel else "sequential",
                max_workers=self.max_workers,
            )
        return self._remote_executor

    def close(self) -> None:
        """Release worker pools and finalize observability.

        When the context was created with ``trace``/``metrics``, the
        final executor/cache/service ledgers are absorbed into the
        registry, the trace sink is flushed and closed, and the
        previously installed tracer/registry pair (usually none) is
        restored.

        Idempotent: every CLI/runner path closes through ``try/finally``
        (or the context-manager protocol), and error paths may have
        closed already by the time the happy-path cleanup runs.
        """
        if self._closed:
            return
        self._closed = True
        if self.metrics_registry is not None:
            self._ingest_final_stats()
        if self._parallel_executor is not None:
            backend = self._parallel_executor.backend
            close = getattr(backend, "close", None)
            if close is not None:
                close()
        if self._remote_executor is not None:
            backend = self._remote_executor.backend
            service = getattr(backend, "service", None)
            if service is not None:
                service.close()
        if self.tracer is not None:
            self.tracer.close()
        if self._obs_previous is not None:
            obs.uninstall(self._obs_previous)
            self._obs_previous = None

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ingest_final_stats(self) -> None:
        """Absorb every live executor/backend ledger into the registry."""
        registry = self.metrics_registry
        executors = []
        if self.backend_name == "local" and not self.parallel:
            executors.append(get_executor(self.device))
        if self._parallel_executor is not None:
            executors.append(self._parallel_executor)
        if self._remote_executor is not None:
            executors.append(self._remote_executor)
        for executor in executors:
            registry.ingest_executor(executor.stats)
            registry.ingest_cache(executor.backend.cache_stats())
            service = getattr(executor.backend, "service", None)
            stats = getattr(service, "stats", None)
            if stats is not None:
                registry.ingest_service(stats)

    def measured_success_rate(self, circuit, ideal, shots: int) -> float:
        """Shot-based SR of a native circuit (what a user measures)."""
        result = self.executor.submit(
            Job(
                circuit,
                shots,
                seed=int(self.rng.integers(2**31)),
                tag="measure",
            )
        )
        return success_rate(ideal, result.distribution())

    def full_gate_links(self) -> List[Link]:
        """Links supporting all three native gates (for micro-studies)."""
        return [
            link
            for link in self.device.topology.links
            if len(self.device.supported_gates(*link)) == 3
        ]

    def pick_link(self, index: int = 0) -> Link:
        """A deterministic link with full gate support."""
        links = self.full_gate_links()
        if not links:
            raise ReproError("device has no link supporting all gates")
        return links[index % len(links)]
