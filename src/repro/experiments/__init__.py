"""Paper experiment reproductions, one callable per figure/table.

See DESIGN.md's experiment index for the paper-artifact -> module map.
All experiments take an :class:`~repro.experiments.context.ExperimentContext`
(or build the default aged Aspen-11) and return an
:class:`~repro.experiments.reporting.ExperimentResult`.
"""

from .ablation import (
    ablation_link_order,
    ablation_non_clifford_budget,
    ablation_probe_shots,
    fig20_reference_ablation,
)
from .characterization import (
    THETA_GRID,
    fig5_state_dependence,
    fig6_all_links,
    fig7_calibration_cycles,
    micro_benchmark_circuit,
)
from .context import ExperimentContext
from .copycat_quality import fig12_replacement_choice, fig19_copycat_correlation
from .device_report import fig17_device_map
from .extensions import extension_cdr_composition, extension_multi_pass
from .drift_study import (
    fig8_stale_calibration,
    fig21_repeated_executions,
    fig22_best_sequence_stability,
)
from .fleet_transfer import fleet_transfer_study
from .main_eval import (
    fig18_main_evaluation,
    fig18_multi_seed,
    table1_suite,
    table2_copycat_counts,
)
from .motivation import (
    fig1c_microbenchmark,
    fig3_ghz5_sweep,
    fig9_program_specific_optimum,
)
from .reporting import ExperimentResult, ascii_bars, format_table
from .runner import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "format_table",
    "ascii_bars",
    "EXPERIMENTS",
    "run_experiment",
    "micro_benchmark_circuit",
    "THETA_GRID",
    "fig1c_microbenchmark",
    "fig3_ghz5_sweep",
    "fig5_state_dependence",
    "fig6_all_links",
    "fig7_calibration_cycles",
    "fig8_stale_calibration",
    "fig9_program_specific_optimum",
    "fig12_replacement_choice",
    "fig17_device_map",
    "fig18_main_evaluation",
    "fig18_multi_seed",
    "fig19_copycat_correlation",
    "fig20_reference_ablation",
    "fig21_repeated_executions",
    "fig22_best_sequence_stability",
    "table1_suite",
    "table2_copycat_counts",
    "ablation_non_clifford_budget",
    "ablation_probe_shots",
    "ablation_link_order",
    "extension_cdr_composition",
    "extension_multi_pass",
    "fleet_transfer_study",
]
