"""Extensions beyond the paper's evaluation.

* :func:`extension_cdr_composition` — the paper's stated future work
  (Section VII-B): compose ANGEL with Clifford Data Regression and
  measure whether better nativization improves the post-processor.
* :func:`extension_multi_pass` — address Section VI-E limitation (1)
  (ANGEL's restricted search space) with repeated link sweeps, and
  measure what the extra probes buy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..compiler import transpile
from ..core.angel import Angel, AngelConfig
from ..core.cdr import CliffordDataRegression, parity_expectation
from ..core.policies import noise_adaptive_sequence
from ..programs import get_benchmark
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = ["extension_cdr_composition", "extension_multi_pass"]


def extension_cdr_composition(
    context: Optional[ExperimentContext] = None,
    benchmark: str = "VQE_n4",
    num_training: int = 12,
    training_shots: int = 1024,
    target_shots: int = 4096,
    probe_shots: int = 1024,
) -> ExperimentResult:
    """ANGEL x CDR: does better nativization improve error mitigation?

    Measures the absolute error of the Z...Z parity expectation under
    four configurations: {baseline, ANGEL nativization} x {raw, CDR
    mitigated}. The paper conjectures ANGEL "can further improve the
    effectiveness of CDR" because both the training circuits and the
    target run through better native gates.
    """
    context = context or ExperimentContext.create()
    spec = get_benchmark(benchmark)
    compiled = transpile(spec.build(), context.device, context.calibration)
    ideal_value = parity_expectation(compiled.ideal_distribution())

    angel = Angel(
        context.device,
        context.calibration,
        AngelConfig(
            probe_shots=probe_shots, seed=int(context.rng.integers(2**31))
        ),
    )
    result = angel.select(compiled)
    sequences = (
        ("baseline", result.reference_sequence),
        ("ANGEL", result.sequence),
    )
    rows: List[Tuple] = []
    errors = {}
    for label, sequence in sequences:
        cdr = CliffordDataRegression(
            context.device,
            num_training=num_training,
            shots=training_shots,
            seed=int(context.rng.integers(2**31)),
        )
        raw, mitigated, fit = cdr.mitigated_expectation(
            compiled, sequence, target_shots=target_shots
        )
        raw_error = abs(raw - ideal_value)
        mitigated_error = abs(mitigated - ideal_value)
        errors[label] = (raw_error, mitigated_error)
        rows.append(
            (
                label,
                sequence.label(),
                raw,
                mitigated,
                raw_error,
                mitigated_error,
                fit.slope,
            )
        )
    return ExperimentResult(
        experiment_id="extension_cdr",
        title=f"ANGEL x CDR composition on {benchmark} (parity observable)",
        columns=(
            "nativization",
            "sequence",
            "raw <Z..Z>",
            "CDR <Z..Z>",
            "raw |err|",
            "CDR |err|",
            "fit slope",
        ),
        rows=rows,
        notes=[
            f"ideal parity: {ideal_value:.4f};"
            f" training circuits: {num_training} x {training_shots} shots",
            "paper Section VII-B proposes this composition as future work",
        ],
        summary=(
            f"CDR error with ANGEL nativization: "
            f"{errors['ANGEL'][1]:.4f} vs {errors['baseline'][1]:.4f} with"
            " baseline nativization."
        ),
    )


def extension_multi_pass(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("GHZ_n4", "QEC_n4", "toff_n3"),
    passes: Sequence[int] = (1, 2, 3),
    probe_shots: int = 1024,
    final_shots: int = 2048,
) -> ExperimentResult:
    """Multi-pass localized search: SR and probe cost per pass budget.

    Pass 1 is the paper's ANGEL. Extra passes revisit links in the
    context of all earlier replacements; the search self-terminates on a
    quiet pass, so probe counts grow sublinearly.
    """
    context = context or ExperimentContext.create()
    rows: List[Tuple] = []
    for name in benchmarks:
        spec = get_benchmark(name)
        compiled = transpile(spec.build(), context.device, context.calibration)
        ideal = compiled.ideal_distribution()
        seed = int(context.rng.integers(2**31))
        for max_passes in passes:
            angel = Angel(
                context.device,
                context.calibration,
                AngelConfig(
                    probe_shots=probe_shots,
                    max_passes=max_passes,
                    seed=seed,
                ),
            )
            result = angel.select(compiled)
            sr = context.measured_success_rate(
                angel.nativize(compiled, result), ideal, final_shots
            )
            rows.append(
                (
                    name,
                    max_passes,
                    result.copycats_executed,
                    result.trace.num_updates,
                    result.sequence.label(),
                    sr,
                )
            )
    return ExperimentResult(
        experiment_id="extension_passes",
        title="Multi-pass localized search (extension of Section VI-E)",
        columns=(
            "benchmark",
            "max passes",
            "probes",
            "updates",
            "learned sequence",
            "final SR",
        ),
        rows=rows,
        notes=[
            f"device={context.device.name} probe_shots={probe_shots}",
            "pass 1 == the paper's ANGEL; extra passes stop early once a"
            " sweep produces no replacement",
        ],
        summary="Additional passes expand the explored space at linear probe cost.",
    )
