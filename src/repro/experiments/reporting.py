"""Experiment result containers and plain-text rendering.

Every experiment returns an :class:`ExperimentResult`: an id tying it to
the paper artifact it reproduces (``fig18``, ``table2``, ...), tabular
rows, optional named series (the y-values a figure would plot), and
free-form notes. Rendering is plain text so results diff cleanly and the
benchmark harness can print the same rows the paper reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["ExperimentResult", "format_table", "ascii_bars"]


def format_table(
    columns: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(str(c)) for c in columns]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = " | ".join(
        str(c).ljust(widths[i]) for i, c in enumerate(columns)
    )
    rule = "-+-".join("-" * w for w in widths)
    lines = [header, rule]
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """A horizontal bar chart in text, for figure-style series."""
    if not values:
        return "(empty)"
    peak = max_value if max_value is not None else max(values)
    peak = max(peak, 1e-12)
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.4f}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes:
        experiment_id: Paper artifact id (``fig18``, ``table2``, ...).
        title: Human-readable description.
        columns: Table header.
        rows: Table body (tuples aligned with *columns*).
        series: Optional named numeric series (a figure's plotted data).
        notes: Context lines (device, seeds, shots, caveats).
        summary: One-line headline finding.
    """

    experiment_id: str
    title: str
    columns: Tuple[str, ...]
    rows: List[Tuple]
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    summary: str = ""

    def to_text(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.summary:
            lines.append(self.summary)
        lines.append("")
        if self.rows:
            lines.append(format_table(self.columns, self.rows))
        for name, values in self.series.items():
            lines.append("")
            lines.append(f"-- series: {name} ({len(values)} points) --")
            preview = ", ".join(f"{v:.4f}" for v in values[:12])
            suffix = ", ..." if len(values) > 12 else ""
            lines.append(f"[{preview}{suffix}]")
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to JSON (rows become lists; floats stay floats)."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "columns": list(self.columns),
                "rows": [list(row) for row in self.rows],
                "series": self.series,
                "notes": self.notes,
                "summary": self.summary,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json` (rows come back as tuples)."""
        data = json.loads(text)
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            columns=tuple(data["columns"]),
            rows=[tuple(row) for row in data["rows"]],
            series={k: list(v) for k, v in data.get("series", {}).items()},
            notes=list(data.get("notes", [])),
            summary=data.get("summary", ""),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the JSON form to *path*; returns the resolved path."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentResult":
        return cls.from_json(Path(path).read_text())
