"""Cross-device transfer study: does the winning sequence survive a fleet?

The paper's Figs. 21/22 ask whether ANGEL's runtime-best sequence
survives *drift on one device*. A device fleet poses the multi-device
version: compile on replica A, then carry the winning native-gate
sequence to replicas B..N — same Aspen preset, independent seeded
drift, staggered calibration cadences — and ask two questions per
replica:

* **survival** — does a replica-local ANGEL search (same probe budget,
  same search seed, the replica's own transpile) pick the *same*
  per-site native-gate choices? A survived sequence means replica A's
  compile decision ships as-is; a dead one means the replica's drift
  has moved the optimum.
* **transfer cost** — how much exact success rate is lost by running
  replica A's gate choices instead of the replica-local winner
  (``sr_local - sr_transfer``; zero when the sequence survived).

Both are reported against **drift divergence**: the mean absolute
difference between the replica's raw drift-process parameter state and
replica A's, sampled at context creation (the same
``parameter_state`` vector that feeds ``parameter_fingerprint``).

Replicas are independently sampled chips, so a gate replica A chose
may simply not exist on replica B's link (seeded missing-gate
fractions — the real cross-device hazard). Transferred choices fall
back to the replica's own calibration-reference gate at such sites;
the substitution count is reported per replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..compiler import transpile
from ..core.angel import Angel, AngelConfig
from ..core.sequence import NativeGateSequence
from ..fleet import FleetSpec
from ..programs import get_benchmark
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = ["fleet_transfer_study"]


@dataclass(frozen=True)
class _Recipe:
    """The device-build fields a replica adjustment applies to.

    A minimal stand-in for the service layer's ``RequestSpec`` (not
    imported here — experiments must stay importable without the
    service tier) with exactly the fields
    :meth:`~repro.fleet.ReplicaSpec.adjust` rewrites.
    """

    seed: int
    calibration_seed: int
    drift_hours: float
    fault_profile: str = "none"
    fault_seed: int = 0


def _divergence(
    base: Dict[Tuple, float], other: Dict[Tuple, float]
) -> float:
    """Mean |Δ| of the drift-process state over shared parameter keys."""
    shared = [key for key in base if key in other]
    if not shared:
        return 0.0
    return sum(abs(base[key] - other[key]) for key in shared) / len(shared)


def fleet_transfer_study(
    context: Optional[ExperimentContext] = None,
    replicas: int = 3,
    program: str = "GHZ_n4",
    probe_shots: int = 256,
    seed: int = 11,
    calibration_seed: int = 3,
    drift_hours: float = 2.0,
    stagger_hours: float = 6.0,
    angel_seed: int = 0,
    device_name: str = "aspen-11",
) -> ExperimentResult:
    """Compile on replica 0, re-score and re-learn on replicas 1..N-1.

    ``context`` is accepted for registry uniformity but unused — the
    study builds one private context per replica (each replica is its
    own chip-day).
    """
    del context  # each replica builds its own context
    fleet = FleetSpec.create(replicas, stagger_hours=stagger_hours)
    base = _Recipe(
        seed=seed,
        calibration_seed=calibration_seed,
        drift_hours=drift_hours,
    )
    contexts: List[ExperimentContext] = []
    try:
        states: List[Dict[Tuple, float]] = []
        for replica_spec in fleet.replicas:
            recipe = replica_spec.adjust(base)
            ctx = ExperimentContext.create(
                device_name=device_name,
                seed=recipe.seed,
                calibration_seed=recipe.calibration_seed,
                drift_hours=recipe.drift_hours,
            )
            contexts.append(ctx)
            # Snapshot the pristine drift state (before any probe
            # advances the clock) so divergence is a property of the
            # fleet, not of the search traffic.
            states.append(dict(ctx.device.parameter_state()))

        config = AngelConfig(probe_shots=probe_shots, seed=angel_seed)
        circuit = get_benchmark(program).build()

        rows: List[Tuple] = []
        series: Dict[str, List[float]] = {
            "divergence": [],
            "sr_transfer": [],
            "sr_local": [],
        }
        winner_gates: Optional[Tuple[str, ...]] = None
        winner_label = ""
        survived_count = 0
        for index, ctx in enumerate(contexts):
            compiled = transpile(circuit, ctx.device, ctx.calibration)
            ideal = compiled.ideal_distribution()
            angel = Angel(
                ctx.device, ctx.calibration, config, executor=ctx.executor
            )
            result = angel.select(compiled)
            local = result.sequence
            if index == 0:
                winner_gates = local.gates
                winner_label = local.label()
            assert winner_gates is not None
            # Carry replica 0's per-site gate choices onto this
            # replica's compile; sites whose link lacks the gate fall
            # back to the replica's calibration-reference choice.
            options = compiled.gate_options()
            transfer_gates = []
            substituted = 0
            for position, site in enumerate(local.sites):
                desired = (
                    winner_gates[position]
                    if position < len(winner_gates)
                    else None
                )
                if desired is not None and desired in options[site.link]:
                    transfer_gates.append(desired)
                else:
                    transfer_gates.append(
                        result.reference_sequence.gates[position]
                    )
                    substituted += 1
            transfer = NativeGateSequence(
                local.sites, tuple(transfer_gates)
            )
            sr_transfer = ctx.exact_success_rate(
                compiled.nativized(transfer, name_suffix="_transfer"),
                ideal,
            )
            sr_local = ctx.exact_success_rate(
                compiled.nativized(local, name_suffix="_local"), ideal
            )
            divergence = _divergence(states[0], states[index])
            survived = substituted == 0 and local.gates == winner_gates
            if index > 0 and survived:
                survived_count += 1
            rows.append(
                (
                    fleet.replicas[index].name,
                    drift_hours
                    + fleet.replicas[index].drift_offset_hours,
                    divergence,
                    "yes" if survived else "no",
                    substituted,
                    sr_transfer,
                    sr_local,
                    sr_local - sr_transfer,
                )
            )
            series["divergence"].append(divergence)
            series["sr_transfer"].append(sr_transfer)
            series["sr_local"].append(sr_local)
        others = replicas - 1
        survival_rate = survived_count / others if others else 1.0
        return ExperimentResult(
            experiment_id="fleet_transfer",
            title=(
                f"Cross-device transfer of {program}'s winning sequence "
                f"across {replicas} drifting replicas"
            ),
            columns=(
                "replica",
                "drift_h",
                "divergence",
                "survived",
                "substituted",
                "sr_transfer",
                "sr_local",
                "delta",
            ),
            rows=rows,
            series=series,
            notes=[
                f"compile replica: replica-0 (seed {seed}), winner "
                f"{winner_label}",
                f"stagger {stagger_hours:.1f}h between consecutive "
                f"replicas; probe_shots={probe_shots}, "
                f"angel_seed={angel_seed}",
                "each replica transpiles locally; replica-0's per-site "
                "gate choices transfer where the link supports them, "
                "else the replica's reference gate substitutes",
            ],
            summary=(
                f"winning sequence survived on {survived_count}/{others} "
                f"other replicas ({survival_rate:.0%}); max transfer "
                f"cost {max(r[7] for r in rows):.4f} SR"
            ),
        )
    finally:
        for ctx in contexts:
            ctx.close()
