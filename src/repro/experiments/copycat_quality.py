"""CopyCat fidelity-imitation studies: Figs. 12 and 19.

A CopyCat is useful exactly insofar as the SR *ordering* it induces over
native gate sequences matches the program's. Both studies quantify that
with Spearman's rank correlation across the full sequence space.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..circuit.circuit import QuantumCircuit
from ..compiler import transpile
from ..compiler.nativization import nativize
from ..core.copycat import build_copycat
from ..core.sequence import enumerate_sequences
from ..metrics import spearman_correlation
from ..programs import linear_solver_n3
from ..sim.statevector import StatevectorSimulator
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = ["fig12_replacement_choice", "fig19_copycat_correlation"]


def _fig12_program() -> QuantumCircuit:
    """Paper Fig. 12(a): a U3-prepared qubit driving a CNOT sequence."""
    circuit = QuantumCircuit(4, name="fig12_program")
    # Fixed "random" U3 angles (mostly-diagonal rotation, so Z/S are
    # good Clifford imitations and X is a poor one — the paper's case).
    circuit.u3(0.55, 1.15, 0.75, 0)
    circuit.cnot(0, 1)
    circuit.cnot(1, 2)
    circuit.cnot(2, 3)
    circuit.cnot(1, 2)
    return circuit.measure_all()


def _sequence_srs(
    context: ExperimentContext,
    compiled,
    circuit: QuantumCircuit,
    shots: int,
    exact: bool,
) -> Tuple[List[str], List[float]]:
    """SR of *circuit* (sharing compiled's sites) per sequence."""
    compact, _ = circuit.compacted()
    ideal = StatevectorSimulator().distribution(compact)
    labels: List[str] = []
    values: List[float] = []
    for sequence in enumerate_sequences(
        compiled.sites, compiled.gate_options(), "site"
    ):
        native = nativize(
            circuit,
            sequence.as_site_map(),
            native_gates=context.device.native_gates,
            name_suffix="_ccq",
        )
        if exact:
            sr = context.exact_success_rate(native, ideal)
        else:
            sr = context.measured_success_rate(native, ideal, shots)
        labels.append(sequence.label())
        values.append(sr)
    return labels, values


def fig12_replacement_choice(
    context: Optional[ExperimentContext] = None,
    shots: int = 1024,
    exact: bool = True,
) -> ExperimentResult:
    """Fig. 12: Clifford replacement quality decides CopyCat usefulness.

    Builds three fixed-replacement CopyCats (X, Z, S) plus ANGEL's
    operator-norm nearest-Clifford CopyCat of the Fig. 12(a) program,
    sweeps all 81 sequences, and reports each CopyCat's Spearman
    correlation with the input program. The paper measures SCC ~0.87-0.89
    for Z/S and ~0.13 for X.
    """
    context = context or ExperimentContext.create()
    program = _fig12_program()
    compiled = transpile(program, context.device, context.calibration)
    routed = compiled.scheduled

    _, program_srs = _sequence_srs(context, compiled, routed, shots, exact)

    rows: List[Tuple] = []
    series: Dict[str, List[float]] = {"program": program_srs}
    variants: List[Tuple[str, dict]] = [
        ("X CopyCat", {"fixed_replacement": "x"}),
        ("Z CopyCat", {"fixed_replacement": "z"}),
        ("S CopyCat", {"fixed_replacement": "s"}),
        ("nearest-Clifford CopyCat", {"max_non_clifford": 0}),
    ]
    for name, kwargs in variants:
        copycat = build_copycat(routed, **kwargs)
        _, copycat_srs = _sequence_srs(
            context, compiled, copycat.circuit, shots, exact
        )
        scc = spearman_correlation(program_srs, copycat_srs)
        rows.append(
            (name, scc, copycat.total_replacement_distance)
        )
        series[name] = copycat_srs
    return ExperimentResult(
        experiment_id="fig12",
        title="CopyCat Clifford-replacement choice vs imitation quality",
        columns=("copycat variant", "SCC vs program", "replacement distance"),
        rows=rows,
        series=series,
        notes=[
            f"device={context.device.name}; 81 sequences per variant; "
            + ("exact distributions" if exact else f"shots={shots}"),
            "a replacement far from the original unitary (X here) yields"
            " a CopyCat whose SR ordering no longer tracks the program",
        ],
        summary=(
            "Accurate Clifford replacements (Z/S/nearest) imitate the"
            " program's SR ordering; inaccurate ones (X) do not."
        ),
    )


def fig19_copycat_correlation(
    context: Optional[ExperimentContext] = None,
    shots: int = 1024,
    exact: bool = False,
) -> ExperimentResult:
    """Fig. 19: program vs CopyCat SR across all sequences (lin_sol_n3).

    The linear-solver benchmark has 4 CNOTs -> 81 sequences. Its
    default (budgeted nearest-Clifford) CopyCat is swept over the same
    space; a high Spearman correlation is what licenses learning on the
    CopyCat and transferring to the program (paper Step 5).
    """
    context = context or ExperimentContext.create()
    program = linear_solver_n3()
    compiled = transpile(program, context.device, context.calibration)
    routed = compiled.scheduled

    _, program_srs = _sequence_srs(context, compiled, routed, shots, exact)
    copycat = build_copycat(routed)
    _, copycat_srs = _sequence_srs(
        context, compiled, copycat.circuit, shots, exact
    )
    scc = spearman_correlation(program_srs, copycat_srs)

    best_program = max(range(len(program_srs)), key=program_srs.__getitem__)
    best_copycat = max(range(len(copycat_srs)), key=copycat_srs.__getitem__)
    program_rank_of_copycat_best = (
        sorted(program_srs, reverse=True).index(program_srs[best_copycat]) + 1
    )
    rows = [
        ("sequences evaluated", len(program_srs), ""),
        ("Spearman correlation", scc, "(paper: strong, ~0.9)"),
        ("program-best index", best_program, ""),
        ("copycat-best index", best_copycat, ""),
        (
            "program rank of copycat-best",
            program_rank_of_copycat_best,
            f"of {len(program_srs)}",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig19",
        title="Program vs CopyCat success rate across all 81 sequences",
        columns=("quantity", "value", "detail"),
        rows=rows,
        series={"program": program_srs, "copycat": copycat_srs},
        notes=[
            f"benchmark=lin_sol_n3 device={context.device.name} "
            + ("exact distributions" if exact else f"shots={shots}"),
            f"retained non-Cliffords in CopyCat: "
            f"{len(copycat.retained_non_clifford)}",
        ],
        summary=(
            f"CopyCat SR ordering correlates with the program's"
            f" (SCC {scc:.2f}); the copycat-best sequence ranks"
            f" {program_rank_of_copycat_best}/{len(program_srs)} on the"
            " program."
        ),
    )
