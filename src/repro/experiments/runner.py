"""Experiment registry and command-line entry point.

Every paper artifact maps to a callable; ``python -m
repro.experiments.runner fig18`` regenerates it from scratch. The
benchmark harness (``benchmarks/``) drives the same registry with
reduced budgets.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional

from ..exceptions import ReproError
from .ablation import (
    ablation_link_order,
    ablation_non_clifford_budget,
    ablation_probe_shots,
    fig20_reference_ablation,
)
from .characterization import (
    fig5_state_dependence,
    fig6_all_links,
    fig7_calibration_cycles,
)
from .context import ExperimentContext
from .copycat_quality import fig12_replacement_choice, fig19_copycat_correlation
from .device_report import fig17_device_map
from .extensions import extension_cdr_composition, extension_multi_pass
from .drift_study import (
    fig8_stale_calibration,
    fig21_repeated_executions,
    fig22_best_sequence_stability,
)
from .fleet_transfer import fleet_transfer_study
from .main_eval import (
    fig18_main_evaluation,
    fig18_multi_seed,
    table1_suite,
    table2_copycat_counts,
)
from .motivation import (
    fig1c_microbenchmark,
    fig3_ghz5_sweep,
    fig9_program_specific_optimum,
)
from .reporting import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1c": fig1c_microbenchmark,
    "fig3": fig3_ghz5_sweep,
    "fig5": fig5_state_dependence,
    "fig6": fig6_all_links,
    "fig7": fig7_calibration_cycles,
    "fig8": fig8_stale_calibration,
    "fig9": fig9_program_specific_optimum,
    "fig12": fig12_replacement_choice,
    "fig17": fig17_device_map,
    "fig18": fig18_main_evaluation,
    "fig19": fig19_copycat_correlation,
    "fig20": fig20_reference_ablation,
    "fig21": fig21_repeated_executions,
    "fig22": fig22_best_sequence_stability,
    "table1": table1_suite,
    "table2": table2_copycat_counts,
    "ablation_budget": ablation_non_clifford_budget,
    "ablation_shots": ablation_probe_shots,
    "ablation_order": ablation_link_order,
    "extension_cdr": extension_cdr_composition,
    "extension_passes": extension_multi_pass,
    "fig18_multi": fig18_multi_seed,
    "fleet_transfer": fleet_transfer_study,
}


def run_experiment(
    experiment_id: str,
    context: Optional[ExperimentContext] = None,
    **kwargs,
) -> ExperimentResult:
    """Run one registered experiment by its paper-artifact id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from exc
    return runner(context=context, **kwargs)


def _pop_option(argv: list, name: str, default: str) -> str:
    """Extract ``--name value`` / ``--name=value`` from argv, in place."""
    value = default
    remaining = []
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == name and index + 1 < len(argv):
            value = argv[index + 1]
            index += 2
            continue
        if arg.startswith(name + "="):
            value = arg.split("=", 1)[1]
            index += 1
            continue
        remaining.append(arg)
        index += 1
    argv[:] = remaining
    return value


def _replay_tenants(
    tenants: int,
    backend: str,
    fault_profile: str,
    fault_seed: int,
    fleet: int = 0,
) -> int:
    """``--tenants N`` mode: replay the Table I mix through the compile
    service, N synthetic tenants each compiling the standard programs.
    ``--fleet M`` routes the same workload across M drifting replicas."""
    from ..service import RequestSpec, TenantConfig, replay_workload

    if tenants < 1:
        raise ReproError("--tenants must be >= 1")
    if fleet < 0:
        raise ReproError("--fleet must be >= 0")
    programs = ("GHZ_n4", "BV_n4", "QAOA_n5")
    workload = {
        f"tenant-{index}": [
            RequestSpec(
                program=program,
                shots=1024,
                probe_shots=256,
                drift_hours=2.0,
                backend=backend,
                fault_profile=fault_profile,
                fault_seed=fault_seed,
            )
            for program in programs
        ]
        for index in range(tenants)
    }
    from ..service import AngelService

    service = AngelService(
        num_workers=min(4, max(tenants, fleet or 1)),
        tenants=tuple(TenantConfig(name) for name in sorted(workload)),
        fleet=fleet or None,
    )
    try:
        outcomes = replay_workload(workload, service=service)
    finally:
        service.close()
    total = failed = probes = dedup_hits = 0
    for name in sorted(outcomes):
        slots = outcomes[name]
        done = [o for o in slots if not isinstance(o, BaseException)]
        probes += sum(o.probes_run for o in done)
        dedup_hits += sum(o.dedup_hits for o in done)
        total += len(slots)
        failed += len(slots) - len(done)
        print(
            f"{name}: {len(done)}/{len(slots)} requests, "
            f"{sum(o.probes_run for o in done)} probes, "
            f"{sum(o.dedup_hits for o in done)} dedup hits"
        )
    ratio = dedup_hits / probes if probes else 0.0
    print(
        f"total: {total} requests ({failed} failed), {probes} probes, "
        f"{dedup_hits} dedup hits ({ratio:.1%})"
    )
    report = service.fleet_report()
    if report is not None:
        for replica in report["replicas"]:
            print(
                f"{replica['name']}: {replica['placements']} requests, "
                f"{replica['jobs']} jobs, peak queue "
                f"{replica['peak_queue_depth']}"
            )
        router = report["router"]
        print(
            f"router: {router['migrations']} migrations, affinity-hit "
            f"ratio {router['affinity_hit_ratio']:.1%}"
        )
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI: ``python -m repro.experiments.runner [--stats]
    [--backend local|remote] [--fault-profile NAME] [--parallel]
    [--max-workers N] [--tenants N] <id>...``."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    show_stats = "--stats" in argv
    argv = [arg for arg in argv if arg != "--stats"]
    no_sim_cache = "--no-sim-cache" in argv
    argv = [arg for arg in argv if arg != "--no-sim-cache"]
    no_batched_sim = "--no-batched-sim" in argv
    argv = [arg for arg in argv if arg != "--no-batched-sim"]
    clifford_fast_path = "--clifford-fast-path" in argv
    argv = [arg for arg in argv if arg != "--clifford-fast-path"]
    if "--no-clifford-fast-path" in argv:
        clifford_fast_path = False
        argv = [arg for arg in argv if arg != "--no-clifford-fast-path"]
    parallel = "--parallel" in argv
    argv = [arg for arg in argv if arg != "--parallel"]
    show_metrics = "--metrics" in argv
    argv = [arg for arg in argv if arg != "--metrics"]
    trace_raw = _pop_option(argv, "--trace", "")
    trace = trace_raw or None
    backend = _pop_option(argv, "--backend", "local")
    fault_profile = _pop_option(argv, "--fault-profile", "none")
    fault_seed = int(_pop_option(argv, "--fault-seed", "0"))
    max_workers_raw = _pop_option(argv, "--max-workers", "")
    max_workers = int(max_workers_raw) if max_workers_raw else None
    opt_level = int(_pop_option(argv, "--opt-level", "0"))
    if "--no-opt-passes" in argv:
        opt_level = 0
        argv = [arg for arg in argv if arg != "--no-opt-passes"]
    fleet_raw = _pop_option(argv, "--fleet", "")
    tenants_raw = _pop_option(argv, "--tenants", "")
    if tenants_raw:
        return _replay_tenants(
            int(tenants_raw),
            backend,
            fault_profile,
            fault_seed,
            fleet=int(fleet_raw) if fleet_raw else 0,
        )
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: python -m repro.experiments.runner [--stats] "
            "[--backend local|remote] [--fault-profile NAME] "
            "[--fault-seed N] [--no-sim-cache] [--no-batched-sim] "
            "[--clifford-fast-path] [--no-clifford-fast-path] "
            "[--parallel] [--max-workers N] [--opt-level {0,1,2}] "
            "[--no-opt-passes] [--trace FILE] [--metrics] "
            "[--tenants N [--fleet M]] <experiment-id>..."
        )
        print("known experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    for experiment_id in argv:
        # Each experiment gets a fresh context (a fresh chip-day) so the
        # per-experiment executor ledger is attributable to it alone.
        needs_context = (
            show_stats
            or backend != "local"
            or no_sim_cache
            or no_batched_sim
            or clifford_fast_path
            or parallel
            or show_metrics
            or trace is not None
            or opt_level != 0
        )
        context = (
            ExperimentContext.create(
                backend=backend,
                fault_profile=fault_profile,
                fault_seed=fault_seed,
                sim_cache=not no_sim_cache,
                batched_sim=not no_batched_sim,
                clifford_fast_path=clifford_fast_path,
                parallel=parallel,
                max_workers=max_workers,
                trace=trace,
                metrics=show_metrics,
                optimization_level=opt_level,
            )
            if needs_context
            else None
        )
        try:
            result = run_experiment(experiment_id, context=context)
            print(result.to_text())
            if context is not None and show_stats:
                print("--- execution-service stats ---")
                print(context.executor.stats.to_text())
        finally:
            if context is not None:
                context.close()
        if context is not None:
            if show_metrics and context.metrics_registry is not None:
                print("--- metrics ---")
                print(context.metrics_registry.to_text())
            if trace is not None:
                print(f"trace written to {trace}")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
