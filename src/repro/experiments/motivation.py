"""Motivation experiments: Figs. 1(c), 3, and 9.

These establish the paper's problem statement on the simulated device:
the calibration-best native gate is frequently not the gate (or gate
combination) that maximizes application success rate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..compiler import transpile
from ..compiler.mapping import Layout
from ..core.policies import noise_adaptive_sequence
from ..core.sequence import NativeGateSequence, enumerate_sequences
from ..device.native_gates import cnot_decomposition
from ..device.topology import Link
from ..circuit.circuit import QuantumCircuit
from ..metrics import spearman_correlation
from ..programs import ghz_n4, ghz_n5, vqe_n4
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = [
    "fig1c_microbenchmark",
    "fig3_ghz5_sweep",
    "fig9_program_specific_optimum",
]


def _rx_pi_cnot_circuit(link: Link, native: str) -> QuantumCircuit:
    """The Fig. 1(b) micro-benchmark: RX(pi) on the control, one CNOT."""
    qubit_a, qubit_b = link
    circuit = QuantumCircuit(
        max(link) + 1, name=f"micro_rxpi_{native}"
    )
    circuit.rx(math.pi, qubit_a)
    for gate in cnot_decomposition(native, qubit_a, qubit_b):
        circuit.append(gate)
    circuit.measure(qubit_a)
    circuit.measure(qubit_b)
    return circuit


def fig1c_microbenchmark(
    context: Optional[ExperimentContext] = None,
    shots: int = 2048,
    link_index: int = 0,
) -> ExperimentResult:
    """Fig. 1(c): per-native-gate SR of the RX(pi)+CNOT micro-benchmark.

    The correct output is ``11`` with probability 1. The row marked
    ``noise-adaptive`` is the gate calibration would pick; the paper's
    point is that it often is not the SR-maximizing row.
    """
    context = context or ExperimentContext.create()
    link = context.pick_link(link_index)
    ideal = {"11": 1.0}
    noise_adaptive = context.calibration.best_native_gate(link)
    rows: List[Tuple] = []
    best_gate, best_sr = None, -1.0
    for native in context.device.supported_gates(*link):
        circuit = _rx_pi_cnot_circuit(link, native)
        sr = context.measured_success_rate(circuit, ideal, shots)
        rows.append(
            (
                native.upper(),
                sr,
                context.calibration.two_qubit_fidelity(link, native),
                "yes" if native == noise_adaptive else "",
            )
        )
        if sr > best_sr:
            best_gate, best_sr = native, sr
    gap = "closed" if best_gate == noise_adaptive else "OPEN"
    return ExperimentResult(
        experiment_id="fig1c",
        title="RX(pi)+CNOT micro-benchmark: SR per native gate",
        columns=("native gate", "success rate", "calibrated fid", "noise-adaptive"),
        rows=rows,
        notes=[
            f"device={context.device.name} link={link} shots={shots}",
            f"noise-adaptive pick: {noise_adaptive.upper()};"
            f" runtime best: {best_gate.upper()} (gap {gap})",
        ],
        summary=(
            f"Best gate at runtime is {best_gate.upper()} (SR {best_sr:.3f});"
            f" calibration would pick {noise_adaptive.upper()}."
        ),
    )


def fig3_ghz5_sweep(
    context: Optional[ExperimentContext] = None,
    shots: int = 1024,
) -> ExperimentResult:
    """Fig. 3: GHZ_n5 under all 81 native gate combinations.

    Reports every combination's SR, the noise-adaptive combination's
    rank, and the ratio of the runtime-best SR to the noise-adaptive SR
    (the paper measures 3x on Aspen-11).
    """
    context = context or ExperimentContext.create()
    compiled = transpile(ghz_n5(), context.device, context.calibration)
    ideal = compiled.ideal_distribution()
    options = compiled.gate_options()
    na_seq = noise_adaptive_sequence(compiled.sites, context.calibration, options)

    labels: List[str] = []
    values: List[float] = []
    na_sr = None
    for sequence in enumerate_sequences(compiled.sites, options, "site"):
        circuit = compiled.nativized(sequence, name_suffix="_f3")
        sr = context.measured_success_rate(circuit, ideal, shots)
        labels.append(sequence.label())
        values.append(sr)
        if sequence.gates == na_seq.gates:
            na_sr = sr
    assert na_sr is not None
    best_index = max(range(len(values)), key=values.__getitem__)
    ratio = values[best_index] / max(na_sr, 1e-9)
    ranked = sorted(values, reverse=True)
    rows = [
        ("combinations evaluated", len(values), ""),
        ("noise-adaptive SR", na_sr, na_seq.label()),
        ("runtime-best SR", values[best_index], labels[best_index]),
        ("best / noise-adaptive", ratio, ""),
        ("noise-adaptive rank", ranked.index(na_sr) + 1, f"of {len(values)}"),
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="GHZ_n5 success rate across all 81 native gate combinations",
        columns=("quantity", "value", "detail"),
        rows=rows,
        series={"success_rates_in_enumeration_order": values},
        notes=[
            f"device={context.device.name} shots={shots}",
            f"links={compiled.links_used()}",
        ],
        summary=(
            f"Runtime-best combination achieves {ratio:.2f}x the"
            " noise-adaptive SR."
        ),
    )


def fig9_program_specific_optimum(
    context: Optional[ExperimentContext] = None,
    shots: int = 1024,
) -> ExperimentResult:
    """Fig. 9: GHZ_n4 vs VQE_n4 on the same qubits, same window.

    Both programs have three CNOTs on the same three links, yet their
    best native gate combinations differ, and the SR orderings of the 27
    combinations correlate only weakly across programs.
    """
    context = context or ExperimentContext.create()
    ghz_compiled = transpile(ghz_n4(), context.device, context.calibration)
    layout = ghz_compiled.routed.initial_layout
    vqe_compiled = transpile(
        vqe_n4(), context.device, context.calibration, layout=layout
    )

    per_program: Dict[str, Dict[str, float]] = {}
    for name, compiled in (("GHZ_n4", ghz_compiled), ("VQE_n4", vqe_compiled)):
        ideal = compiled.ideal_distribution()
        srs: Dict[str, float] = {}
        for sequence in enumerate_sequences(
            compiled.sites, compiled.gate_options(), "link"
        ):
            circuit = compiled.nativized(sequence, name_suffix="_f9")
            srs[sequence.label()] = context.measured_success_rate(
                circuit, ideal, shots
            )
        per_program[name] = srs

    common = sorted(set(per_program["GHZ_n4"]) & set(per_program["VQE_n4"]))
    scc = spearman_correlation(
        [per_program["GHZ_n4"][k] for k in common],
        [per_program["VQE_n4"][k] for k in common],
    )
    rows: List[Tuple] = []
    winners = {}
    for name, srs in per_program.items():
        best = max(srs, key=srs.get)
        winners[name] = best
        rows.append((name, best, srs[best], len(srs)))
    return ExperimentResult(
        experiment_id="fig9",
        title="Optimal native gate combination is program-specific",
        columns=("program", "best combination", "best SR", "combinations"),
        rows=rows,
        series={
            "ghz_srs": [per_program["GHZ_n4"][k] for k in common],
            "vqe_srs": [per_program["VQE_n4"][k] for k in common],
        },
        notes=[
            f"same physical qubits {layout.physical}, same calibration window",
            f"cross-program Spearman correlation of SR orderings: {scc:.3f}",
        ],
        summary=(
            "Best combinations "
            + ("differ" if winners["GHZ_n4"] != winners["VQE_n4"] else "agree")
            + f" across programs (SCC {scc:.2f})."
        ),
    )
