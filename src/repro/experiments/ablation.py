"""Ablations: Fig. 20 plus design-choice studies beyond the paper.

* :func:`fig20_reference_ablation` — noise-adaptive vs random reference
  initialization (paper Fig. 20).
* :func:`ablation_non_clifford_budget` — CopyCat imitation quality vs
  the retained non-Clifford budget (the paper motivates >0 budget
  qualitatively; we quantify it).
* :func:`ablation_probe_shots` — learned-sequence quality vs CopyCat
  probe shot budget.
* :func:`ablation_link_order` — program-order vs random link visit
  order in the localized search.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler import transpile
from ..compiler.nativization import nativize
from ..core.angel import Angel, AngelConfig
from ..core.copycat import build_copycat
from ..core.sequence import enumerate_sequences
from ..metrics import geometric_mean, spearman_correlation
from ..programs import benchmark_suite, get_benchmark, vqe_n4
from ..sim.statevector import StatevectorSimulator
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = [
    "fig20_reference_ablation",
    "ablation_non_clifford_budget",
    "ablation_probe_shots",
    "ablation_link_order",
]


def fig20_reference_ablation(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("GHZ_n4", "VQE_n4", "QEC_n4", "BV_n4"),
    trials: int = 3,
    probe_shots: int = 1024,
    final_shots: int = 2048,
) -> ExperimentResult:
    """Fig. 20: ANGEL with noise-adaptive vs random reference.

    For each benchmark, runs ANGEL once from the noise-adaptive
    reference and *trials* times from random references (averaging),
    then executes both learned sequences on the device. The paper finds
    the noise-adaptive reference consistently stronger — the search is
    local, so where it starts matters.
    """
    context = context or ExperimentContext.create()
    rows: List[Tuple] = []
    na_srs: List[float] = []
    random_srs: List[float] = []
    for name in benchmarks:
        spec = get_benchmark(name)
        compiled = transpile(spec.build(), context.device, context.calibration)
        ideal = compiled.ideal_distribution()
        angel_na = Angel(
            context.device,
            context.calibration,
            AngelConfig(
                probe_shots=probe_shots,
                reference="noise_adaptive",
                seed=int(context.rng.integers(2**31)),
            ),
        )
        result_na = angel_na.select(compiled)
        sr_na = context.measured_success_rate(
            angel_na.nativize(compiled, result_na), ideal, final_shots
        )
        sr_random_trials: List[float] = []
        for trial in range(trials):
            angel_rand = Angel(
                context.device,
                context.calibration,
                AngelConfig(
                    probe_shots=probe_shots,
                    reference="random",
                    seed=int(context.rng.integers(2**31)),
                ),
            )
            result_rand = angel_rand.select(compiled)
            sr_random_trials.append(
                context.measured_success_rate(
                    angel_rand.nativize(compiled, result_rand),
                    ideal,
                    final_shots,
                )
            )
        sr_random = float(np.mean(sr_random_trials))
        na_srs.append(sr_na)
        random_srs.append(sr_random)
        rows.append((name, sr_na, sr_random, sr_na / max(sr_random, 1e-9)))
    wins = sum(1 for a, b in zip(na_srs, random_srs) if a >= b)
    return ExperimentResult(
        experiment_id="fig20",
        title="ANGEL with noise-adaptive vs random reference sequence",
        columns=("benchmark", "noise-adaptive ref SR", "random ref SR", "ratio"),
        rows=rows,
        notes=[
            f"device={context.device.name} trials_per_random={trials}"
            f" probe_shots={probe_shots}",
        ],
        summary=(
            f"Noise-adaptive reference matches or beats random on"
            f" {wins}/{len(rows)} benchmarks."
        ),
    )


def ablation_non_clifford_budget(
    context: Optional[ExperimentContext] = None,
    budgets: Sequence[int] = (0, 1, 2, 4),
    exact: bool = True,
    shots: int = 1024,
) -> ExperimentResult:
    """CopyCat imitation quality vs retained non-Clifford budget.

    Sweeps VQE_n4's 27 link-uniform sequences on the program and on
    CopyCats built with increasing initial-layer budgets, reporting each
    budget's Spearman correlation with the program and the CopyCat's
    ideal-output entropy. The paper motivates a non-zero budget by the
    probe-state structure argument (Section IV-E1); the correlation
    trend quantifies that design choice on this device. Note the
    entropy can move either way: with H-like replacements excluded, a
    Clifford-only CopyCat of a rotation-heavy program collapses to a
    deterministic output rather than a uniform one.
    """
    context = context or ExperimentContext.create()
    compiled = transpile(vqe_n4(), context.device, context.calibration)
    routed = compiled.scheduled

    def sweep(circuit) -> List[float]:
        compact, _ = circuit.compacted()
        ideal = StatevectorSimulator().distribution(compact)
        values = []
        for sequence in enumerate_sequences(
            compiled.sites, compiled.gate_options(), "link"
        ):
            native = nativize(
                circuit,
                sequence.as_site_map(),
                native_gates=context.device.native_gates,
                name_suffix="_bud",
            )
            if exact:
                values.append(context.exact_success_rate(native, ideal))
            else:
                values.append(
                    context.measured_success_rate(native, ideal, shots)
                )
        return values

    program_srs = sweep(routed)
    rows: List[Tuple] = []
    for budget in budgets:
        copycat = build_copycat(routed, max_non_clifford=budget)
        copycat_srs = sweep(copycat.circuit)
        scc = spearman_correlation(program_srs, copycat_srs)
        ideal = copycat.ideal_distribution()
        entropy = -sum(p * math.log2(p) for p in ideal.values() if p > 0)
        rows.append(
            (budget, len(copycat.retained_non_clifford), scc, entropy)
        )
    return ExperimentResult(
        experiment_id="ablation_budget",
        title="CopyCat quality vs retained non-Clifford budget (VQE_n4)",
        columns=(
            "budget",
            "retained",
            "SCC vs program",
            "ideal-output entropy (bits)",
        ),
        rows=rows,
        notes=[
            f"device={context.device.name}; 27 link-uniform sequences; "
            + ("exact distributions" if exact else f"shots={shots}"),
        ],
        summary=(
            "The retention budget reshapes the probe's ideal output and"
            " materially moves its rank correlation with the program —"
            " a real tuning knob, not a monotone one."
        ),
    )


def ablation_probe_shots(
    context: Optional[ExperimentContext] = None,
    shot_budgets: Sequence[int] = (64, 256, 1024, 4096),
    benchmark: str = "GHZ_n4",
    final_shots: int = 4096,
) -> ExperimentResult:
    """Learned-sequence quality vs CopyCat probe shot budget.

    Fewer probe shots mean noisier SR estimates and a higher chance the
    localized search accepts a spurious replacement. Reports the final
    program SR achieved by ANGEL per probe budget.
    """
    context = context or ExperimentContext.create()
    spec = get_benchmark(benchmark)
    compiled = transpile(spec.build(), context.device, context.calibration)
    ideal = compiled.ideal_distribution()
    rows: List[Tuple] = []
    for shots in shot_budgets:
        angel = Angel(
            context.device,
            context.calibration,
            AngelConfig(
                probe_shots=shots, seed=int(context.rng.integers(2**31))
            ),
        )
        result = angel.select(compiled)
        sr = context.measured_success_rate(
            angel.nativize(compiled, result), ideal, final_shots
        )
        rows.append((shots, result.sequence.label(), sr))
    return ExperimentResult(
        experiment_id="ablation_shots",
        title=f"ANGEL final SR vs probe shot budget ({benchmark})",
        columns=("probe shots", "learned sequence", "final SR"),
        rows=rows,
        notes=[f"device={context.device.name} final_shots={final_shots}"],
        summary="Probe shot noise bounds the quality of the learned sequence.",
    )


def ablation_link_order(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("GHZ_n4", "QEC_n4", "lin_sol_n3"),
    trials: int = 3,
    probe_shots: int = 1024,
    final_shots: int = 2048,
) -> ExperimentResult:
    """Program-order vs random link visit order in the localized search.

    The paper uses program order "to keep the design simple"; this
    quantifies how much the choice matters on our device.
    """
    context = context or ExperimentContext.create()
    rows: List[Tuple] = []
    for name in benchmarks:
        spec = get_benchmark(name)
        compiled = transpile(spec.build(), context.device, context.calibration)
        ideal = compiled.ideal_distribution()
        per_order: Dict[str, float] = {}
        for order in ("program", "random"):
            srs = []
            for _ in range(trials if order == "random" else 1):
                angel = Angel(
                    context.device,
                    context.calibration,
                    AngelConfig(
                        probe_shots=probe_shots,
                        link_order=order,
                        seed=int(context.rng.integers(2**31)),
                    ),
                )
                result = angel.select(compiled)
                srs.append(
                    context.measured_success_rate(
                        angel.nativize(compiled, result), ideal, final_shots
                    )
                )
            per_order[order] = float(np.mean(srs))
        rows.append((name, per_order["program"], per_order["random"]))
    return ExperimentResult(
        experiment_id="ablation_order",
        title="Localized search link visit order: program vs random",
        columns=("benchmark", "program-order SR", "random-order SR"),
        rows=rows,
        notes=[
            f"device={context.device.name} trials_per_random={trials}",
            "continuous update makes the search order-dependent in"
            " principle; in practice both orders land close",
        ],
        summary="Link visit order has a second-order effect on ANGEL.",
    )
