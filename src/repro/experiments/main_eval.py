"""The headline evaluation: Fig. 18, Table I, and Table II.

Fig. 18 compares three nativization policies per benchmark:

* **Baseline** — noise-adaptive selection from (stale) calibration;
* **ANGEL** — the CopyCat-learned sequence;
* **Runtime Best** — exhaustive on-device enumeration (link-granular,
  the same reduction the paper applies to keep toff_n3 feasible).

The paper reports ANGEL at 1.40x the baseline SR on average (up to 2x),
with Runtime Best marginally higher. Absolute SRs depend on the chip
day (our device seed); the reproduction target is the ordering and the
rough magnitudes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler import transpile
from ..core.angel import Angel, AngelConfig
from ..core.policies import runtime_best
from ..metrics import geometric_mean
from ..programs import benchmark_suite, get_benchmark
from .context import ExperimentContext
from .reporting import ExperimentResult

__all__ = ["fig18_main_evaluation", "table1_suite", "table2_copycat_counts"]


def fig18_main_evaluation(
    context: Optional[ExperimentContext] = None,
    benchmarks: Optional[Sequence[str]] = None,
    final_shots: int = 4096,
    probe_shots: int = 1024,
    runtime_best_shots: int = 1024,
    include_runtime_best: bool = True,
) -> ExperimentResult:
    """Fig. 18: relative SR of Baseline / ANGEL / Runtime Best.

    Args:
        context: Device context (default: aged Aspen-11).
        benchmarks: Benchmark names (default: the full Table I suite).
        final_shots: Shots for each policy's final program execution.
        probe_shots: Shots per ANGEL CopyCat probe.
        runtime_best_shots: Shots per exhaustive-enumeration probe.
        include_runtime_best: Disable to keep quick runs cheap.
    """
    context = context or ExperimentContext.create()
    specs = (
        [get_benchmark(name) for name in benchmarks]
        if benchmarks is not None
        else benchmark_suite()
    )
    rows: List[Tuple] = []
    angel_ratios: List[float] = []
    best_ratios: List[float] = []
    for spec in specs:
        compiled = transpile(spec.build(), context.device, context.calibration)
        ideal = compiled.ideal_distribution()
        angel = Angel(
            context.device,
            context.calibration,
            AngelConfig(
                probe_shots=probe_shots,
                seed=int(context.rng.integers(2**31)),
            ),
        )
        result = angel.select(compiled)
        baseline_sr = context.measured_success_rate(
            compiled.nativized(result.reference_sequence, name_suffix="_base"),
            ideal,
            final_shots,
        )
        angel_sr = context.measured_success_rate(
            angel.nativize(compiled, result), ideal, final_shots
        )
        baseline_sr = max(baseline_sr, 1e-3)
        angel_ratio = angel_sr / baseline_sr
        angel_ratios.append(angel_ratio)
        if include_runtime_best:
            best, _ = runtime_best(
                compiled,
                shots=runtime_best_shots,
                granularity="link",
                ideal=ideal,
            )
            best_sr = context.measured_success_rate(
                compiled.nativized(best.sequence, name_suffix="_rbest"),
                ideal,
                final_shots,
            )
            best_ratio = best_sr / baseline_sr
            best_ratios.append(best_ratio)
        else:
            best_sr, best_ratio = float("nan"), float("nan")
        rows.append(
            (
                spec.name,
                baseline_sr,
                angel_sr,
                angel_ratio,
                best_sr,
                best_ratio,
                result.copycats_executed,
            )
        )
    angel_gm = geometric_mean(angel_ratios)
    summary = (
        f"ANGEL improves SR by {angel_gm:.2f}x on average"
        f" (max {max(angel_ratios):.2f}x)"
    )
    notes = [
        f"device={context.device.name}, staleness protocol applied before"
        " the evaluation (CPHASE records up to a day old)",
        f"final_shots={final_shots} probe_shots={probe_shots}",
        "paper: 1.40x average, up to 2x; runtime best marginally higher",
    ]
    if best_ratios:
        best_gm = geometric_mean(best_ratios)
        summary += f"; runtime-best achieves {best_gm:.2f}x"
    return ExperimentResult(
        experiment_id="fig18",
        title="Program success rate relative to noise-adaptive selection",
        columns=(
            "benchmark",
            "baseline SR",
            "ANGEL SR",
            "ANGEL rel",
            "runtime-best SR",
            "runtime-best rel",
            "copycats",
        ),
        rows=rows,
        notes=notes,
        summary=summary + ".",
    )


def fig18_multi_seed(
    seeds: Sequence[int] = (11, 23, 47),
    benchmarks: Optional[Sequence[str]] = None,
    drift_hours: float = 30.0,
    final_shots: int = 4096,
    probe_shots: int = 1024,
    runtime_best_shots: int = 1024,
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    """Fig. 18 across several simulated chip days (robustness check).

    The paper evaluates on whatever state Aspen-11 was in during their
    window; our simulator lets us repeat the whole protocol on multiple
    independent device realizations. Reports per-seed geomeans and the
    pooled aggregate. *context* is accepted for registry uniformity but
    ignored — each seed builds its own context.
    """
    del context  # each seed is its own chip day
    rows: List[Tuple] = []
    all_angel: List[float] = []
    all_best: List[float] = []
    for seed in seeds:
        ctx = ExperimentContext.create(seed=seed, drift_hours=drift_hours)
        result = fig18_main_evaluation(
            context=ctx,
            benchmarks=benchmarks,
            final_shots=final_shots,
            probe_shots=probe_shots,
            runtime_best_shots=runtime_best_shots,
        )
        angel_ratios = [row[3] for row in result.rows]
        best_ratios = [row[5] for row in result.rows]
        all_angel.extend(angel_ratios)
        all_best.extend(best_ratios)
        rows.append(
            (
                seed,
                len(result.rows),
                geometric_mean(angel_ratios),
                max(angel_ratios),
                geometric_mean(best_ratios),
            )
        )
    pooled_angel = geometric_mean(all_angel)
    pooled_best = geometric_mean(all_best)
    rows.append(
        ("pooled", len(all_angel), pooled_angel, max(all_angel), pooled_best)
    )
    return ExperimentResult(
        experiment_id="fig18_multi",
        title="Fig. 18 protocol across independent chip days",
        columns=(
            "seed",
            "benchmarks",
            "ANGEL geomean",
            "ANGEL max",
            "runtime-best geomean",
        ),
        rows=rows,
        notes=[
            f"seeds={tuple(seeds)} drift_hours={drift_hours}",
            "paper: 1.40x average, up to 2x, single machine/window",
        ],
        summary=(
            f"Pooled over {len(seeds)} chip days: ANGEL {pooled_angel:.2f}x"
            f" (max {max(all_angel):.2f}x), runtime-best {pooled_best:.2f}x."
        ),
    )


def table1_suite(
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    """Table I: the benchmark suite, plus routed CNOT-site counts.

    The paper's table lists logical qubit and CNOT counts; we add the
    post-routing site count on the actual device (this is the ``N`` of
    the ``3^N`` search space, e.g. toff_n3 grows from 6 to 9).
    """
    context = context or ExperimentContext.create()
    rows: List[Tuple] = []
    for spec in benchmark_suite():
        compiled = transpile(spec.build(), context.device, context.calibration)
        rows.append(
            (
                spec.name,
                spec.description,
                spec.qubits,
                spec.logical_cnots,
                compiled.num_cnot_sites,
                len(compiled.links_used()),
            )
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Benchmark suite (paper Table I + routed counts)",
        columns=(
            "name",
            "description",
            "qubits",
            "logical CNOTs",
            "routed CNOT sites",
            "links used",
        ),
        rows=rows,
        notes=[f"routed on {context.device.name} with noise-adaptive layout"],
        summary=f"{len(rows)} benchmarks spanning 2-5 qubits.",
    )


def table2_copycat_counts(
    context: Optional[ExperimentContext] = None,
) -> ExperimentResult:
    """Table II: CopyCats required — exhaustive ``3^N`` vs ANGEL ``1+2L``.

    Counts use the routed circuit on the actual device; links that do
    not support all three gates shrink both columns accordingly. The
    ANGEL column is verified against an actual search run.
    """
    context = context or ExperimentContext.create()
    rows: List[Tuple] = []
    for spec in benchmark_suite():
        compiled = transpile(spec.build(), context.device, context.calibration)
        options = compiled.gate_options()
        exhaustive = 1
        for site in compiled.sites:
            exhaustive *= len(options[site.link])
        link_tied = 1
        for link in compiled.links_used():
            link_tied *= len(options[link])
        angel = Angel(context.device, context.calibration)
        angel_count = angel.expected_probe_count(compiled)
        rows.append(
            (
                spec.name,
                compiled.num_cnot_sites,
                len(compiled.links_used()),
                _human(exhaustive),
                _human(link_tied),
                angel_count,
            )
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Number of CopyCats required (paper Table II)",
        columns=(
            "benchmark",
            "CNOT sites",
            "links",
            "exhaustive 3^N",
            "link-tied 3^L",
            "ANGEL 1+2L",
        ),
        rows=rows,
        notes=[
            "exhaustive counts use per-site gate availability; the paper"
            " ties SWAP CNOTs on one link the same way mass replacement"
            " does (its toff_n3 19.7K -> 729 note)",
        ],
        summary="ANGEL's probe budget is linear in links used.",
    )


def _human(count: int) -> str:
    if count >= 10_000:
        return f"{count / 1000.0:.1f}K"
    return str(count)
