"""FleetService: N drifting Aspen replicas behind one Backend seam.

:class:`FleetService` is the fleet's front door for the compile tier:
it owns the :class:`~repro.fleet.replica.FleetReplica` ledgers, the
:class:`~repro.fleet.router.FleetRouter`, and one probe-distribution
partition per replica. The :class:`~repro.service.angel_service.
AngelService` asks it to **bind** each incoming request; the binding
carries everything the request stack needs:

* the replica-adjusted :class:`RequestSpec` (independent seeded drift,
  staggered calibration, per-replica fault profile);
* the replica's private dedup store (partitioned per replica
  ``parameter_fingerprint`` — cross-replica fingerprints never match,
  so partitioning makes the isolation explicit and measurable);
* a :class:`FleetBackend` wrapper that accounts every submitted batch
  to the replica's queue-depth / device-time ledger and emits
  ``fleet.*`` observability.

:class:`FleetBackend` is Backend-compatible: it forwards ``submit`` /
``submit_batch`` (and, when the inner backend supports it,
``submit_batch_tolerant``) unchanged, so everything above the
execution seam — ANGEL, the coalescing executor, retries — runs
bit-identically with or without the fleet in front. Attributes the
facade does not define (``cache_stats``, ``reliability_stats``,
``align_windows``, …) resolve on the wrapped backend, which keeps the
executor's diff-based stats absorption working untouched.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import ServiceError
from ..obs import runtime as obs
from ..programs import get_benchmark
from ..sim.circuit_compiler import instruction_hash_chain
from .replica import FleetReplica, FleetSpec
from .router import FleetRouter, PlacementDecision

__all__ = ["FleetBackend", "ReplicaBinding", "FleetService"]

#: How many leading instruction hashes form a request's routing
#: signature. Prefix overlap is what warms per-replica caches, so only
#: the head of the chain matters for placement.
_SIGNATURE_PREFIX = 16


class FleetBackend:
    """Backend facade accounting one request's traffic to its replica."""

    def __init__(self, inner, replica: FleetReplica) -> None:
        self.inner = inner
        self.replica = replica

    @property
    def name(self) -> str:
        return f"fleet[{self.replica.name}]/{self.inner.name}"

    # ------------------------------------------------------------------
    def _dispatch(self, jobs, call, *args, **kwargs):
        replica = self.replica
        depth = replica.begin_batch(len(jobs))
        self._set_queue_gauge()
        tracer = obs.active_tracer()
        span = (
            tracer.span(
                "fleet.dispatch",
                replica=replica.name,
                jobs=len(jobs),
                queue_depth=depth,
            )
            if tracer
            else obs.NULL_SPAN
        )
        device_time_us = 0.0
        try:
            with span:
                results = call(*args, **kwargs)
                completed = [r for r in results if r is not None]
                device_time_us = sum(r.duration_us for r in completed)
                if tracer:
                    span.set(
                        device_time_us=device_time_us,
                        failed=len(results) - len(completed),
                    )
            return results
        finally:
            replica.finish_batch(len(jobs), device_time_us)
            self._set_queue_gauge()
            registry = obs.active_registry()
            if registry is not None:
                registry.counter(
                    f"fleet.replica.{replica.index}.jobs"
                ).add(len(jobs))

    def _set_queue_gauge(self) -> None:
        registry = obs.active_registry()
        if registry is not None:
            registry.gauge(
                f"fleet.replica.{self.replica.index}.queue_depth"
            ).set(self.replica.queue_depth)

    def submit(self, job):
        return self._dispatch([job], lambda: [self.inner.submit(job)])[0]

    def submit_batch(self, jobs, parallel: bool = False, max_workers=None):
        return self._dispatch(
            jobs,
            self.inner.submit_batch,
            jobs,
            parallel=parallel,
            max_workers=max_workers,
        )

    def __getattr__(self, name):
        # Only expose the tolerant path when the wrapped backend has it:
        # the executor probes with getattr(), and pretending to support
        # per-job failure reporting would change failure semantics.
        if name == "submit_batch_tolerant":
            inner_tolerant = getattr(self.inner, name)

            def tolerant(jobs, parallel=False, max_workers=None):
                return self._dispatch(
                    jobs,
                    inner_tolerant,
                    jobs,
                    parallel=parallel,
                    max_workers=max_workers,
                )

            return tolerant
        return getattr(self.inner, name)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()


@dataclass(frozen=True)
class ReplicaBinding:
    """A request's sticky attachment to one replica."""

    request_key: str
    decision: PlacementDecision
    replica: FleetReplica

    @property
    def index(self) -> int:
        return self.replica.index

    def adjusted(self, spec):
        """The request spec as seen on this replica."""
        return self.replica.spec.adjust(spec)

    def wrap_backend(self, inner) -> FleetBackend:
        return FleetBackend(inner, self.replica)


class FleetService:
    """Owns the replicas, the router, and the per-replica dedup stores.

    Args:
        spec: A :class:`FleetSpec`, or an ``int`` shorthand for
            ``FleetSpec.create(n)``.
        dedup: Give each replica a private
            :class:`~repro.service.dedup.ProbeDistributionStore`.
        router: Custom router (weights); default
            :class:`FleetRouter()`.
        replay: Recorded ``{request_key: replica_index}`` placements to
            replay verbatim (ignored when ``router`` is supplied).
    """

    def __init__(
        self,
        spec: Union[FleetSpec, int],
        dedup: bool = True,
        router: Optional[FleetRouter] = None,
        replay: Optional[Dict[str, int]] = None,
    ) -> None:
        if isinstance(spec, int):
            spec = FleetSpec.create(spec)
        self.spec = spec
        if dedup:
            # Imported lazily: repro.service imports the fleet package
            # from its (last-imported) angel_service module, so a
            # module-level import here would cycle.
            from ..service.dedup import ProbeDistributionStore

            stores: List[Optional[object]] = [
                ProbeDistributionStore() for _ in spec.replicas
            ]
        else:
            stores = [None for _ in spec.replicas]
        self.replicas: List[FleetReplica] = [
            FleetReplica(replica_spec, store=store)
            for replica_spec, store in zip(spec.replicas, stores)
        ]
        self.router = (
            router if router is not None else FleetRouter(replay=replay)
        )
        self._lock = threading.Lock()
        self._signatures: Dict[str, Tuple[bytes, ...]] = {}

    @property
    def size(self) -> int:
        return self.spec.size

    # ------------------------------------------------------------------
    def signature_for(self, program: str) -> Tuple[bytes, ...]:
        """The routing signature of a benchmark program (memoized).

        The head of ``instruction_hash_chain`` over the *logical*
        circuit: device-independent, so every replica computes the same
        signature for the same program and affinity is well-defined
        across the fleet.
        """
        with self._lock:
            cached = self._signatures.get(program)
        if cached is not None:
            return cached
        circuit = get_benchmark(program).build()
        signature = instruction_hash_chain(circuit)[:_SIGNATURE_PREFIX]
        with self._lock:
            return self._signatures.setdefault(program, signature)

    def bind(
        self,
        request_key: str,
        tenant: Optional[str],
        spec,
    ) -> ReplicaBinding:
        """Route one request; sticky for the request's lifetime."""
        signature = self.signature_for(spec.program)
        pinned = getattr(spec, "replica", None)
        decision = self.router.place(
            self.replicas,
            request_key,
            tenant=tenant,
            signature=signature,
            pinned=pinned,
        )
        replica = self.replicas[decision.replica]
        replica.note_signature(signature)
        with replica._lock:
            replica.bindings += 1
            replica.placements += 1
        return ReplicaBinding(request_key, decision, replica)

    def release(self, binding: ReplicaBinding) -> None:
        self.router.release(binding.request_key)
        with binding.replica._lock:
            binding.replica.bindings = max(0, binding.replica.bindings - 1)

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Fleet-wide snapshot: per-replica ledgers + router counters."""
        return {
            "size": self.size,
            "replicas": [replica.snapshot() for replica in self.replicas],
            "router": self.router.counters(),
        }

    def placement_map(self) -> Dict[str, int]:
        return self.router.placement_map()
