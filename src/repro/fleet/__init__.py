"""Device fleet: sharded probe execution across drifting Aspen replicas.

The multi-device capacity tier above the compile service. A *fleet* is
N emulated Aspen chips — same topology preset, independent seeded
drift processes, staggered calibration cadences, optional per-replica
cloud fault profiles — behind one Backend-compatible facade. The
:class:`FleetRouter` places whole probe-batch groups by queue depth,
calibration-window freshness, and ``instruction_hash_chain`` prefix
affinity, with sticky request→replica bindings so each request's
device-clock trajectory stays coherent; the cross-tenant probe
deduplication store is partitioned per replica (fingerprints never
match across replicas).

A 1-replica fleet is bit-identical to running without one — replica 0
is always the identity adjustment — and a pinned request's outcome is
independent of how other tenants' batches are routed. See
``docs/architecture.md`` ("Device fleet") and the cross-device
transfer study (``repro.experiments.fleet_transfer``).
"""

from .replica import FleetReplica, FleetSpec, ReplicaSpec
from .router import FleetRouter, PlacementDecision
from .service import FleetBackend, FleetService, ReplicaBinding

__all__ = [
    "ReplicaSpec",
    "FleetSpec",
    "FleetReplica",
    "FleetRouter",
    "PlacementDecision",
    "FleetBackend",
    "FleetService",
    "ReplicaBinding",
]
