"""Fleet replicas: frozen device recipes plus live operational ledgers.

A *replica* is one emulated Aspen chip in a device fleet — the same
topology preset as every other replica, but an **independent seeded
drift process**, its own calibration cadence phase, and (optionally)
its own cloud fault profile. The paper studies whether ANGEL's winning
native-gate sequence survives *drift on one device* (Fig. 21/22); a
fleet of replicas is the cross-device extension of that question.

Two layers live here:

* :class:`ReplicaSpec` — the frozen recipe. It does **not** hold a
  device; it holds the *adjustments* applied to a request's
  :class:`~repro.service.angel_service.RequestSpec` when the request is
  bound to this replica (seed offset, calibration-seed offset, drift
  stagger, fault profile). Replica 0 is always the identity adjustment,
  which is what makes a 1-replica fleet bit-identical to
  :func:`~repro.service.angel_service.run_standalone`.
* :class:`FleetReplica` — the live ledger the router reads: queue
  depth in probe jobs, cumulative simulated device time, a bounded set
  of recently-seen circuit prefix signatures (for prefix-cache
  affinity), and the replica's private
  :class:`~repro.service.dedup.ProbeDistributionStore` partition.

Requests stay **isolated**: binding to a replica never shares mutable
physics — each request still builds its own device from the adjusted
spec. The replica is the *routing identity* (which chip-day recipe,
which dedup partition, which operational queue), so two requests bound
to the same replica see the same ``parameter_fingerprint`` trajectory
and can share probe distributions, while requests on different
replicas cannot (different seeds ⇒ different fingerprints).
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..exceptions import ServiceError

__all__ = ["ReplicaSpec", "FleetSpec", "FleetReplica"]

_HOUR_US = 3_600e6

#: Default strides between consecutive replicas' seeds. Any nonzero
#: stride gives an independent drift process; primes keep accidental
#: collisions with user-chosen request seeds unlikely.
DEFAULT_SEED_STRIDE = 1009
DEFAULT_CALIBRATION_STRIDE = 7
DEFAULT_FAULT_SEED_STRIDE = 101


@dataclass(frozen=True)
class ReplicaSpec:
    """Frozen recipe for one fleet replica.

    Attributes:
        index: Position in the fleet (0-based); also the tie-break key
            for the router.
        name: Display / metrics label (``fleet.replica.<index>.*``).
        seed_offset: Added to a bound request's device seed — a
            different seed is a different chip-day with an independent
            drift trajectory. Zero on replica 0.
        calibration_seed_offset: Added to the calibration seed (each
            replica's characterization has its own estimation noise).
        drift_offset_hours: Calibration-cadence stagger — how much
            further this replica has drifted past its last full
            calibration than replica 0. Added to the request's
            ``drift_hours``.
        calibration_window_hours: Length of this replica's calibration
            window, used by the router's freshness score.
        fault_profile: Per-replica cloud fault profile override
            (``None`` keeps the request's own profile).
        fault_seed_offset: Added to the request's fault seed when a
            profile override is active.
    """

    index: int
    name: str
    seed_offset: int = 0
    calibration_seed_offset: int = 0
    drift_offset_hours: float = 0.0
    calibration_window_hours: float = 4.0
    fault_profile: Optional[str] = None
    fault_seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ServiceError("replica index must be >= 0")
        if self.calibration_window_hours <= 0:
            raise ServiceError("calibration window must be positive")

    @property
    def is_identity(self) -> bool:
        """Whether binding here leaves a request spec unchanged."""
        return (
            self.seed_offset == 0
            and self.calibration_seed_offset == 0
            and self.drift_offset_hours == 0.0
            and self.fault_profile is None
        )

    def adjust(self, spec):
        """The replica-local view of a request spec.

        Works on any frozen dataclass exposing ``seed``,
        ``calibration_seed``, ``drift_hours``, ``fault_profile`` and
        ``fault_seed`` fields (in practice :class:`RequestSpec`), so
        this module never imports the service layer.
        """
        changes = {
            "seed": spec.seed + self.seed_offset,
            "calibration_seed": (
                spec.calibration_seed + self.calibration_seed_offset
            ),
            "drift_hours": spec.drift_hours + self.drift_offset_hours,
        }
        if self.fault_profile is not None:
            changes["fault_profile"] = self.fault_profile
            changes["fault_seed"] = spec.fault_seed + self.fault_seed_offset
        return dataclasses.replace(spec, **changes)


@dataclass(frozen=True)
class FleetSpec:
    """An ordered, frozen set of replica recipes."""

    replicas: Tuple[ReplicaSpec, ...]

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ServiceError("a fleet needs at least one replica")
        for position, replica in enumerate(self.replicas):
            if replica.index != position:
                raise ServiceError(
                    f"replica at position {position} has index "
                    f"{replica.index}; fleet indices must be 0..N-1"
                )
        if not self.replicas[0].is_identity:
            raise ServiceError(
                "replica 0 must be the identity adjustment so a "
                "1-replica fleet matches run_standalone bit-for-bit"
            )

    @property
    def size(self) -> int:
        return len(self.replicas)

    @classmethod
    def create(
        cls,
        size: int,
        seed_stride: int = DEFAULT_SEED_STRIDE,
        calibration_stride: int = DEFAULT_CALIBRATION_STRIDE,
        stagger_hours: float = 0.0,
        window_hours: float = 4.0,
        fault_profiles: Sequence[Optional[str]] = (),
        fault_seed_stride: int = DEFAULT_FAULT_SEED_STRIDE,
    ) -> "FleetSpec":
        """Derive ``size`` replicas from strides.

        Replica ``i`` drifts on seed offset ``i * seed_stride`` and sits
        ``i * stagger_hours`` deeper into its calibration window
        (staggered cadences). ``fault_profiles`` cycles across replicas
        1..N-1; replica 0 always stays the identity.
        """
        if size < 1:
            raise ServiceError("fleet size must be >= 1")
        if seed_stride == 0 and size > 1:
            raise ServiceError(
                "seed_stride must be nonzero: replicas need "
                "independent drift processes"
            )
        replicas = []
        for index in range(size):
            profile: Optional[str] = None
            if index > 0 and fault_profiles:
                profile = fault_profiles[(index - 1) % len(fault_profiles)]
            replicas.append(
                ReplicaSpec(
                    index=index,
                    name=f"replica-{index}",
                    seed_offset=index * seed_stride,
                    calibration_seed_offset=index * calibration_stride,
                    drift_offset_hours=index * stagger_hours,
                    calibration_window_hours=window_hours,
                    fault_profile=profile,
                    fault_seed_offset=(
                        index * fault_seed_stride if profile else 0
                    ),
                )
            )
        return cls(replicas=tuple(replicas))


class FleetReplica:
    """One replica's live operational state (thread-safe).

    The router reads this ledger to place requests; the
    :class:`~repro.fleet.service.FleetBackend` facade writes it as
    batches flow through. ``store`` is the replica's private
    probe-distribution partition — dedup never crosses replicas
    because their ``parameter_fingerprint`` trajectories differ.
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        store=None,
        affinity_capacity: int = 256,
    ) -> None:
        self.spec = spec
        self.store = store
        self._lock = threading.Lock()
        self._signatures: "OrderedDict[bytes, None]" = OrderedDict()
        self._affinity_capacity = int(affinity_capacity)
        # Ledger ------------------------------------------------------
        self.queue_depth = 0
        self.peak_queue_depth = 0
        self.bindings = 0
        self.placements = 0
        self.jobs = 0
        self.batches = 0
        self.device_time_us = 0.0

    @property
    def index(self) -> int:
        return self.spec.index

    @property
    def name(self) -> str:
        return self.spec.name

    # ------------------------------------------------------------------
    # Accounting (written by FleetBackend / FleetService)
    # ------------------------------------------------------------------
    def begin_batch(self, num_jobs: int) -> int:
        """Jobs entered the replica's queue; returns the new depth."""
        with self._lock:
            self.queue_depth += num_jobs
            self.peak_queue_depth = max(
                self.peak_queue_depth, self.queue_depth
            )
            return self.queue_depth

    def finish_batch(self, num_jobs: int, device_time_us: float) -> None:
        """Jobs left the queue after consuming simulated device time."""
        with self._lock:
            self.queue_depth = max(0, self.queue_depth - num_jobs)
            self.jobs += num_jobs
            self.batches += 1
            self.device_time_us += float(device_time_us)

    def note_signature(self, signature: Sequence[bytes]) -> None:
        """Remember a request's circuit prefix chain (bounded LRU)."""
        with self._lock:
            for digest in signature:
                if digest in self._signatures:
                    self._signatures.move_to_end(digest)
                else:
                    self._signatures[digest] = None
            while len(self._signatures) > self._affinity_capacity:
                self._signatures.popitem(last=False)

    # ------------------------------------------------------------------
    # Router signals
    # ------------------------------------------------------------------
    def affinity(self, signature: Sequence[bytes]) -> float:
        """Fraction of the prefix chain this replica has seen recently.

        1.0 means a request with this instruction prefix already ran
        here — its probe lowerings and prefix-state snapshots are warm
        in the replica's caches and its distributions may sit in the
        replica's dedup partition.
        """
        if not signature:
            return 0.0
        with self._lock:
            seen = sum(
                1 for digest in signature if digest in self._signatures
            )
        return seen / len(signature)

    def freshness(self) -> float:
        """Remaining fraction of the current calibration window.

        The replica's clock is its cumulative simulated device time
        plus its cadence stagger; freshness decays linearly to 0 as the
        window ages, then snaps back at the (emulated) recalibration.
        """
        window_us = self.spec.calibration_window_hours * _HOUR_US
        with self._lock:
            clock = self.device_time_us
        phase = (clock + self.spec.drift_offset_hours * _HOUR_US) % window_us
        return 1.0 - phase / window_us

    def snapshot(self) -> Dict[str, object]:
        """JSON-able ledger for reports and the bench."""
        with self._lock:
            data: Dict[str, object] = {
                "index": self.spec.index,
                "name": self.spec.name,
                "queue_depth": self.queue_depth,
                "peak_queue_depth": self.peak_queue_depth,
                "bindings": self.bindings,
                "placements": self.placements,
                "jobs": self.jobs,
                "batches": self.batches,
                "device_time_us": self.device_time_us,
                "signatures": len(self._signatures),
            }
        data["freshness"] = self.freshness()
        if self.store is not None:
            data["store"] = self.store.stats()
        return data
