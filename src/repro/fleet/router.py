"""The fleet router: sticky, affinity-aware placement of probe work.

Placement happens once per request, at bind time, and covers *whole*
probe-batch groups: a request's CopyCat batches never split across
replicas, because the winning sequence is only meaningful against one
coherent device-clock trajectory. Three signals score a candidate
replica (all read from the :class:`~repro.fleet.replica.FleetReplica`
ledger):

* **queue depth** — in-flight probe jobs (load balancing, negative);
* **calibration-window freshness** — how recently the replica's
  staggered calibration cadence last fired (fresher calibration means
  the noise-adaptive reference sequence is better informed);
* **prefix-cache affinity** — overlap between the request's
  ``instruction_hash_chain`` prefix and the chains recently routed to
  the replica, the fleet-level analogue of the worker pool's
  prefix-affinity scheduling: co-locating same-prefix requests keeps
  lowering/prefix-state caches warm and makes the replica's dedup
  partition actually hit.

Two forms of stickiness sit above the score: a request already bound
stays bound (its device-clock trajectory must stay coherent), and a
tenant's next request prefers the tenant's previous replica (same
specs ⇒ same fingerprints ⇒ dedup). Routing a tenant away from its
previous replica is counted — and observable — as a **migration**.

The router records every :class:`PlacementDecision`; a recorded
``placement_map`` can be replayed verbatim (``replay=``) so a whole
serve run can be re-executed with identical routing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ServiceError
from ..obs import runtime as obs
from .replica import FleetReplica

__all__ = ["PlacementDecision", "FleetRouter"]


@dataclass(frozen=True)
class PlacementDecision:
    """One routing outcome: which replica, and why.

    ``reason`` is one of ``pinned`` (the request spec named a replica),
    ``replay`` (a recorded placement map supplied it), ``sticky`` (the
    request was already bound), ``affinity`` (prefix/tenant affinity
    dominated the score) or ``balance`` (queue depth / freshness did).
    """

    request_key: str
    tenant: Optional[str]
    replica: int
    reason: str
    migrated: bool = False
    scores: Tuple[float, ...] = field(default=())


class FleetRouter:
    """Scores replicas and keeps the sticky request/tenant bindings.

    Args:
        affinity_weight: Weight of the prefix-chain overlap score.
        queue_weight: Penalty per queued probe job.
        binding_weight: Penalty per request currently bound to the
            replica — the load signal that is already visible at bind
            time, before the request's first batch hits the queue.
        freshness_weight: Weight of calibration-window freshness.
        tenant_affinity_bonus: Additive bonus for the tenant's previous
            replica (keeps a tenant's identical specs co-located so the
            dedup partition hits).
        replay: Optional recorded ``{request_key: replica_index}`` map;
            listed requests are placed verbatim, unlisted requests fall
            back to scoring.
    """

    def __init__(
        self,
        affinity_weight: float = 2.0,
        queue_weight: float = 0.25,
        binding_weight: float = 0.5,
        freshness_weight: float = 0.25,
        tenant_affinity_bonus: float = 1.0,
        replay: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.affinity_weight = float(affinity_weight)
        self.queue_weight = float(queue_weight)
        self.binding_weight = float(binding_weight)
        self.freshness_weight = float(freshness_weight)
        self.tenant_affinity_bonus = float(tenant_affinity_bonus)
        self._replay = dict(replay) if replay is not None else None
        self._lock = threading.Lock()
        self._bindings: Dict[str, int] = {}
        self._tenant_last: Dict[str, int] = {}
        self.decisions: List[PlacementDecision] = []
        # Counters ----------------------------------------------------
        self.placements = 0
        self.sticky_hits = 0
        self.migrations = 0
        self.by_reason: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _score(
        self,
        replica: FleetReplica,
        signature: Sequence[bytes],
        tenant_last: Optional[int],
    ) -> Tuple[float, float]:
        """(total, affinity component) for one candidate replica."""
        affinity = self.affinity_weight * replica.affinity(signature)
        if tenant_last is not None and tenant_last == replica.index:
            affinity += self.tenant_affinity_bonus
        total = (
            affinity
            + self.freshness_weight * replica.freshness()
            - self.queue_weight * replica.queue_depth
            - self.binding_weight * replica.bindings
        )
        return total, affinity

    def place(
        self,
        replicas: Sequence[FleetReplica],
        request_key: str,
        tenant: Optional[str] = None,
        signature: Sequence[bytes] = (),
        pinned: Optional[int] = None,
    ) -> PlacementDecision:
        """Choose a replica for ``request_key`` (idempotent per key)."""
        if not replicas:
            raise ServiceError("cannot place on an empty fleet")
        with self._lock:
            bound = self._bindings.get(request_key)
            if bound is not None:
                self.sticky_hits += 1
                decision = PlacementDecision(
                    request_key, tenant, bound, "sticky"
                )
                self._note_locked(decision)
                self._emit(decision, len(replicas))
                return decision
            scores = tuple(
                self._score(
                    replica, signature, self._tenant_last.get(tenant or "")
                )
                for replica in replicas
            )
            if pinned is not None:
                if not 0 <= pinned < len(replicas):
                    raise ServiceError(
                        f"request {request_key!r} pinned to replica "
                        f"{pinned}, but the fleet has {len(replicas)} "
                        "replicas"
                    )
                index, reason = pinned, "pinned"
            elif self._replay is not None and request_key in self._replay:
                index = int(self._replay[request_key])
                if not 0 <= index < len(replicas):
                    raise ServiceError(
                        f"replayed placement {index} for "
                        f"{request_key!r} is out of range"
                    )
                reason = "replay"
            else:
                best = max(
                    range(len(replicas)),
                    # Deterministic tie-break: lowest index wins.
                    key=lambda i: (scores[i][0], -i),
                )
                index = best
                reason = "affinity" if scores[best][1] > 0.0 else "balance"
            migrated = (
                tenant is not None
                and tenant in self._tenant_last
                and self._tenant_last[tenant] != index
            )
            if migrated:
                self.migrations += 1
            self._bindings[request_key] = index
            if tenant is not None:
                self._tenant_last[tenant] = index
            decision = PlacementDecision(
                request_key,
                tenant,
                index,
                reason,
                migrated=migrated,
                scores=tuple(total for total, _ in scores),
            )
            self._note_locked(decision)
            self._emit(decision, len(replicas))
            return decision

    def _note_locked(self, decision: PlacementDecision) -> None:
        self.placements += 1
        self.by_reason[decision.reason] = (
            self.by_reason.get(decision.reason, 0) + 1
        )
        self.decisions.append(decision)

    def _emit(self, decision: PlacementDecision, fleet_size: int) -> None:
        obs.event(
            "fleet.place",
            request=decision.request_key,
            tenant=decision.tenant or "",
            replica=decision.replica,
            reason=decision.reason,
            migrated=decision.migrated,
        )
        registry = obs.active_registry()
        if registry is not None:
            registry.counter("fleet.placements").add(1)
            registry.counter(f"fleet.placements.{decision.reason}").add(1)
            registry.counter(
                f"fleet.replica.{decision.replica}.placements"
            ).add(1)
            if decision.migrated:
                registry.counter("fleet.migrations").add(1)
        if decision.migrated:
            obs.event(
                "fleet.migrate",
                tenant=decision.tenant or "",
                replica=decision.replica,
            )

    # ------------------------------------------------------------------
    def release(self, request_key: str) -> None:
        """Drop a finished request's sticky binding (tenant memory stays)."""
        with self._lock:
            self._bindings.pop(request_key, None)

    def binding(self, request_key: str) -> Optional[int]:
        with self._lock:
            return self._bindings.get(request_key)

    def placement_map(self) -> Dict[str, int]:
        """First placement per request key — replayable via ``replay=``."""
        with self._lock:
            placements: Dict[str, int] = {}
            for decision in self.decisions:
                placements.setdefault(decision.request_key, decision.replica)
            return placements

    @property
    def affinity_hit_ratio(self) -> float:
        """Fraction of placements served by stickiness or affinity."""
        with self._lock:
            if not self.placements:
                return 0.0
            hits = (
                self.by_reason.get("sticky", 0)
                + self.by_reason.get("affinity", 0)
            )
            return hits / self.placements

    def counters(self) -> Dict[str, object]:
        with self._lock:
            hits = (
                self.by_reason.get("sticky", 0)
                + self.by_reason.get("affinity", 0)
            )
            return {
                "placements": self.placements,
                "sticky_hits": self.sticky_hits,
                "migrations": self.migrations,
                "by_reason": dict(self.by_reason),
                "affinity_hit_ratio": (
                    hits / self.placements if self.placements else 0.0
                ),
            }
