"""Structured tracing: nested spans over the execution stack.

A :class:`Span` is one timed region of work — a search pass, one link's
candidate batch, a single probe job, a worker dispatch — with free-form
attributes and point-in-time events attached. A :class:`Tracer` owns a
stack of open spans, so regions opened inside other regions nest into a
tree without any caller threading parent ids around: ``angel.select``
contains ``search.pass`` contains ``search.link`` contains
``exec.batch`` contains one ``backend.job`` per probe.

Two clocks per span:

* **wall time** — host ``time.perf_counter`` seconds, what the user
  waits for;
* **device time** — the simulated device clock (microseconds), what the
  drift model sees. The tracer samples it through an optional
  ``clock_us`` callable so spans can attribute *simulated* occupancy
  (queue waits, backoffs, job durations) alongside host cost.

The disabled path is a hard ``None``: instrumented call sites fetch the
active tracer from :mod:`repro.obs.runtime` and skip all span
construction when none is installed (see ``runtime.NULL_SPAN`` for the
uniform ``with`` idiom). No tracer object, no attribute dict, no span
allocation — the overhead of a disabled site is one function call and
one identity check, pinned by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, TextIO, Union

__all__ = ["Span", "SpanEvent", "Tracer", "JsonlSpanSink"]


class SpanEvent:
    """A point-in-time annotation inside a span (a retry, a fault...)."""

    __slots__ = ("name", "wall_s", "device_us", "attributes")

    def __init__(
        self,
        name: str,
        wall_s: float,
        device_us: Optional[float],
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.wall_s = wall_s
        self.device_us = device_us
        self.attributes = attributes

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "wall_s": self.wall_s}
        if self.device_us is not None:
            data["device_us"] = self.device_us
        if self.attributes:
            data["attributes"] = self.attributes
        return data


class Span:
    """One timed region of work, produced by :meth:`Tracer.span`.

    Spans are context managers: entering pushes them on the tracer's
    stack (establishing parentage for anything opened inside), exiting
    stamps the end times and hands the finished span to the tracer's
    sink. ``set`` adds attributes at any point before exit; ``event``
    appends a timestamped annotation.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "events",
        "status",
        "start_wall_s",
        "end_wall_s",
        "start_device_us",
        "end_device_us",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.events: List[SpanEvent] = []
        self.status = "ok"
        self.start_wall_s = 0.0
        self.end_wall_s = 0.0
        self.start_device_us: Optional[float] = None
        self.end_device_us: Optional[float] = None

    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append(
            SpanEvent(
                name,
                self._tracer._now_wall(),
                self._tracer._now_device(),
                attributes,
            )
        )

    # ------------------------------------------------------------------
    @property
    def wall_time_s(self) -> float:
        return self.end_wall_s - self.start_wall_s

    @property
    def device_time_us(self) -> Optional[float]:
        if self.start_device_us is None or self.end_device_us is None:
            return None
        return self.end_device_us - self.start_device_us

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able representation (one JSONL trace line)."""
        data: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "status": self.status,
            "start_wall_s": round(self.start_wall_s, 9),
            "wall_time_s": round(self.wall_time_s, 9),
        }
        if self.start_device_us is not None:
            data["start_device_us"] = self.start_device_us
            data["device_time_us"] = self.device_time_us
        if self.attributes:
            data["attributes"] = self.attributes
        if self.events:
            data["events"] = [event.to_dict() for event in self.events]
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, status={self.status!r})"
        )


class JsonlSpanSink:
    """Streams finished spans to a file as JSON lines.

    Accepts a path (opened lazily, closed by :meth:`close`) or an
    already-open text file object (left open — the caller owns it).
    Non-JSON-able attribute values (e.g. :class:`~repro.device.topology.
    Link` tuples) are coerced through ``str``.
    """

    def __init__(self, target: Union[str, "TextIO"]) -> None:
        self._path: Optional[str] = None
        self._file: Optional[TextIO] = None
        self._owns_file = False
        if isinstance(target, str):
            self._path = target
        else:
            self._file = target

    @property
    def path(self) -> Optional[str]:
        return self._path

    def write_span(self, span: Span) -> None:
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
            self._owns_file = True
        json.dump(
            span.to_dict(),
            self._file,
            default=str,
            separators=(",", ":"),
        )
        self._file.write("\n")

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None and self._owns_file:
            self._file.close()
            self._file = None
            self._owns_file = False


class Tracer:
    """Produces nested spans; streams them to a sink and keeps a copy.

    Args:
        clock_us: Optional callable returning the simulated device clock
            in microseconds; when provided, every span and event carries
            device-time stamps alongside wall time.
        sink: Optional :class:`JsonlSpanSink` (or a path string, wrapped
            automatically) that finished spans stream to.
        keep_spans: Retain finished spans in :attr:`spans` (in finish
            order) for in-process inspection; disable for unbounded
            runs that only stream to a file.
        registry: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when set, every finished span feeds a per-name wall-time
            histogram (``span.<name>.wall_s``) and counter.
    """

    def __init__(
        self,
        clock_us: Optional[Callable[[], float]] = None,
        sink: Optional[Union[JsonlSpanSink, str]] = None,
        keep_spans: bool = True,
        registry=None,
    ) -> None:
        self.clock_us = clock_us
        if isinstance(sink, str):
            sink = JsonlSpanSink(sink)
        self.sink = sink
        self.keep_spans = keep_spans
        self.registry = registry
        self.spans: List[Span] = []
        # One open-span stack *per thread*: the multi-tenant service
        # runs instrumented request stacks on pool threads, and spans
        # opened on one thread must never nest under another thread's.
        # Finished spans still funnel into the shared list/sink under
        # ``_lock``, so a trace interleaves threads but never corrupts.
        self._stacks = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        self._origin = time.perf_counter()

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    def _now_wall(self) -> float:
        return time.perf_counter() - self._origin

    def _now_device(self) -> Optional[float]:
        return self.clock_us() if self.clock_us is not None else None

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """Open a new span (enter it with ``with``); nests under the
        innermost currently-open span."""
        stack = self._stack
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id, parent, attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the innermost open span (dropped if no
        span is open — events never create spans)."""
        if self._stack:
            self._stack[-1].event(name, **attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _push(self, span: Span) -> None:
        span.start_wall_s = self._now_wall()
        span.start_device_us = self._now_device()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end_wall_s = self._now_wall()
        span.end_device_us = self._now_device()
        # Tolerate exits out of order (an exception unwinding through
        # several instrumented frames): pop down to this span.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        self._finish(span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            if self.keep_spans:
                self.spans.append(span)
            if self.sink is not None:
                self.sink.write_span(span)
        if self.registry is not None:
            self.registry.counter(f"span.{span.name}").add(1)
            histogram = self.registry.histogram(f"span.{span.name}.wall_s")
            units = span.attributes.get("units")
            if isinstance(units, int) and units > 1:
                # A grouped batch collapses many candidates into one
                # span (batched contraction); record the amortized
                # per-unit wall time once per unit so percentiles stay
                # comparable across engine modes.
                histogram.observe_many(span.wall_time_s / units, units)
            else:
                histogram.observe(span.wall_time_s)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        """Flush and close the sink (open spans stay open — closing the
        tracer mid-trace is the caller's bug, not silently repaired)."""
        if self.sink is not None:
            self.sink.flush()
            self.sink.close()
