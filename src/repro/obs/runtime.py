"""The process-wide observability switchboard.

Instrumented call sites all follow the same three-line pattern::

    tr = runtime.active_tracer()
    span = tr.span("exec.batch", jobs=n) if tr else runtime.NULL_SPAN
    with span:
        ...
        if tr:
            span.set(shots=total)

When nothing is installed, ``active_tracer()`` returns ``None`` and the
site costs one function call plus an identity check — no span object,
no attribute dict, no context-manager allocation (``NULL_SPAN`` is one
shared reusable instance). ``benchmarks/bench_obs_overhead.py`` pins
that cost at < 2% of an uninstrumented GHZ-7 probe sweep.

Installation is explicit and scoped: the CLI / runner /
``ExperimentContext`` install a tracer + registry for one run and
restore the previous pair on close, so a library embedder can nest
observed regions. ``observed(...)`` is the context-manager form tests
and notebooks use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "NULL_SPAN",
    "active_tracer",
    "active_registry",
    "install",
    "uninstall",
    "observed",
    "event",
]


class _NullSpan:
    """Shared do-nothing stand-in so ``with`` sites stay uniform."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attributes) -> "_NullSpan":  # pragma: no cover
        return self

    def event(self, name, **attributes) -> None:  # pragma: no cover
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()

_active_tracer: Optional[Tracer] = None
_active_registry: Optional[MetricsRegistry] = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _active_tracer


def active_registry() -> Optional[MetricsRegistry]:
    """The installed metrics registry, or ``None`` when metrics are off."""
    return _active_registry


def install(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry]]:
    """Make ``tracer``/``registry`` the process-wide active pair.

    Returns the previously active pair so the caller can restore it
    with :func:`uninstall` (LIFO discipline — see :func:`observed`).
    """
    global _active_tracer, _active_registry
    previous = (_active_tracer, _active_registry)
    _active_tracer = tracer
    _active_registry = registry
    return previous


def uninstall(
    previous: Tuple[Optional[Tracer], Optional[MetricsRegistry]] = (
        None,
        None,
    ),
) -> None:
    """Restore a previously active pair (default: fully off)."""
    global _active_tracer, _active_registry
    _active_tracer, _active_registry = previous


@contextmanager
def observed(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Optional[Tracer], Optional[MetricsRegistry]]]:
    """Scope a tracer/registry pair over a block::

        with observed(Tracer(), MetricsRegistry()) as (tr, reg):
            angel.select(compiled)
        print(render_trace(tr.spans))
    """
    previous = install(tracer, registry)
    try:
        yield tracer, registry
    finally:
        uninstall(previous)


def event(name: str, **attributes) -> None:
    """Attach an event to the innermost open span, if tracing is on.

    The one-liner layers with no span of their own (the cloud service's
    fault injection, admission control) use to annotate whoever is
    currently measuring them.
    """
    if _active_tracer is not None:
        _active_tracer.event(name, **attributes)
