"""repro.obs — structured tracing + metrics over the execution stack.

One probe sweep through ANGEL touches six layers (search, executor,
backend, pool/service, device, caches), each with its own ledger. This
package is the unified lens over all of them:

* :class:`Tracer` produces nested spans (search pass -> link ->
  candidate probe -> backend job) carrying wall time, simulated device
  time, shots, and cache-hit deltas;
* :class:`MetricsRegistry` holds named counters/gauges/histograms and
  absorbs the layer ledgers (``ExecutorStats``, ``cache_stats()``,
  ``ServiceStats``) under stable prefixes;
* :mod:`~repro.obs.export` streams spans as JSON lines and renders
  human-readable trace trees;
* :mod:`~repro.obs.runtime` is the switchboard: nothing is traced until
  a tracer is installed, and the disabled path costs one function call
  per site (pinned by ``benchmarks/bench_obs_overhead.py``).

Quickstart::

    from repro.obs import Tracer, MetricsRegistry, observed, render_trace

    with observed(Tracer(), MetricsRegistry()) as (tr, reg):
        result = angel.select(compiled)
    print(render_trace(tr.spans))
    print(reg.to_text())

Or from the CLI: ``python -m repro angel GHZ_n5 --trace trace.jsonl
--metrics``.
"""

from .export import (
    attr_values,
    filter_spans,
    group_by_attr,
    percentile,
    percentiles,
    read_trace,
    render_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    NULL_SPAN,
    active_registry,
    active_tracer,
    event,
    install,
    observed,
    uninstall,
)
from .tracer import JsonlSpanSink, Span, SpanEvent, Tracer

__all__ = [
    "Tracer",
    "Span",
    "SpanEvent",
    "JsonlSpanSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "active_tracer",
    "active_registry",
    "install",
    "uninstall",
    "observed",
    "event",
    "read_trace",
    "render_trace",
    "filter_spans",
    "attr_values",
    "group_by_attr",
    "percentile",
    "percentiles",
]
